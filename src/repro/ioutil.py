"""Crash-safe artifact writes.

Every artifact the toolkit persists -- traces, HTML reports, bench
baselines, sweep cells, checkpoints -- goes through the same atomic
``tmp + os.replace`` pattern: the payload is written to a sibling
temporary file and renamed over the destination in one step.  A process
killed mid-write leaves either the old complete file or no file, never a
truncated one; ``os.replace`` is atomic on POSIX and Windows for paths on
the same filesystem (the temporary always lives next to the target).

The temporary name embeds the pid so concurrent writers (e.g. sweep pool
workers persisting into a shared directory) never collide on it.
"""

from __future__ import annotations

import json
import os
from typing import Any


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Write ``text`` to ``path`` atomically; returns ``path``."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding=encoding) as fh:
            fh.write(text)
        os.replace(tmp, path)
    finally:
        # A failure between open and replace must not leave the temp behind.
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass
    return path


def atomic_write_json(
    path: str,
    payload: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
    trailing_newline: bool = True,
) -> str:
    """Serialise ``payload`` as JSON and write it atomically to ``path``."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text)
