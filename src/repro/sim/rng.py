"""Named, reproducible random streams and the paper's distributions.

Each workload dimension (inter-arrival times, map counts, execution times,
start-time offsets, deadline multipliers...) draws from its *own* stream, so
that varying one experimental factor does not perturb the random numbers of
the others -- the common-random-numbers discipline behind factor-at-a-time
studies like the paper's Section VI.

Streams are derived from a master seed and a *stable* digest of the stream
name (``zlib.crc32``; Python's ``hash`` is salted per process and would break
reproducibility across runs).
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, Sequence

import numpy as np


def _jsonable(value):
    """Recursively convert numpy scalars/arrays in a state dict to JSON types."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` s."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def generator(self, name: str) -> np.random.Generator:
        """The named stream's generator (created and cached on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=(self.seed, digest))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def distributions(self, name: str) -> "Distributions":
        """The distribution toolbox over the named stream."""
        return Distributions(self.generator(name))

    def state_dict(self) -> Dict[str, dict]:
        """Every instantiated stream's bit-generator state, by name.

        The numpy ``bit_generator.state`` dict is JSON-serialisable and
        exact, so two :class:`RandomStreams` with equal state dicts will
        produce identical draw sequences -- the property checkpoint/restore
        validation relies on.  Streams not yet created are simply absent
        (they are a pure function of (seed, name) and need no state).
        """
        return {
            name: _jsonable(gen.bit_generator.state)
            for name, gen in sorted(self._streams.items())
        }

    def spawn(self, label: int | str) -> "RandomStreams":
        """Derive a child registry (e.g. one per replication)."""
        digest = (
            zlib.crc32(str(label).encode("utf-8"))
            if isinstance(label, str)
            else int(label)
        )
        return RandomStreams(seed=self.seed * 1_000_003 + digest + 1)


class Distributions:
    """The distribution toolbox of Table 3 / Table 4 over one generator."""

    def __init__(self, gen: np.random.Generator) -> None:
        self.gen = gen

    # -- discrete uniform DU[lo, hi], inclusive (Table 3 "DU")
    def du(self, lo: int, hi: int) -> int:
        """Discrete uniform DU[lo, hi], inclusive (Table 3)."""
        if hi < lo:
            raise ValueError(f"DU[{lo},{hi}] is empty")
        return int(self.gen.integers(lo, hi + 1))

    # -- continuous uniform U[lo, hi] (Table 3 "U")
    def uniform(self, lo: float, hi: float) -> float:
        """Continuous uniform U[lo, hi] (Table 3)."""
        if hi < lo:
            raise ValueError(f"U[{lo},{hi}] is empty")
        return float(self.gen.uniform(lo, hi))

    # -- Bernoulli(p) (earliest-start-time coin flip, Table 3)
    def bernoulli(self, p: float) -> bool:
        """Coin flip with success probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"Bernoulli parameter {p} outside [0, 1]")
        return bool(self.gen.random() < p)

    # -- exponential inter-arrival times of a Poisson(rate) process
    def exponential_rate(self, rate: float) -> float:
        """Inter-arrival draw of a Poisson(rate) process."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return float(self.gen.exponential(1.0 / rate))

    # -- LogNormal(mu, sigma^2): paper's Facebook task execution times.
    #    Note the paper parameterises by the *variance* of the underlying
    #    normal (LN(9.9511, 1.6764) etc.).
    def lognormal(self, mu: float, sigma_squared: float) -> float:
        """LogNormal(mu, sigma^2) -- note: parameterised by the *variance* of the underlying normal, as the paper writes LN(mu, sigma^2)."""
        if sigma_squared < 0:
            raise ValueError(f"negative variance {sigma_squared}")
        return float(self.gen.lognormal(mean=mu, sigma=math.sqrt(sigma_squared)))

    # -- weighted choice over a finite set (job-type mix of Table 4)
    def choice(self, items: Sequence, weights: Sequence[float]):
        """Weighted draw from ``items`` (the Table 4 job-type mix)."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        probs = np.asarray(weights, dtype=float) / total
        idx = int(self.gen.choice(len(items), p=probs))
        return items[idx]
