"""Replication statistics: confidence intervals and stopping rules.

The paper repeats each simulation experiment "a sufficient number of times
such that the confidence interval for T remains less than ±1% of the average
value, at a confidence level of 95%".  :func:`run_replications` implements
exactly this sequential stopping rule (generalised to several metrics with
per-metric precision targets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from scipy import stats as _scipy_stats


class RunningStats:
    """Welford's online mean/variance accumulator."""

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the running mean/variance."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def mean_ci(data: Sequence[float], confidence: float = 0.95) -> tuple:
    """(mean, half_width) of the Student-t confidence interval."""
    n = len(data)
    if n == 0:
        raise ValueError("mean_ci of empty data")
    mean = sum(data) / n
    if n == 1:
        return mean, float("inf")
    var = sum((x - mean) ** 2 for x in data) / (n - 1)
    se = math.sqrt(var / n)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return mean, t * se


def relative_half_width(data: Sequence[float], confidence: float = 0.95) -> float:
    """CI half-width as a fraction of the mean (inf when the mean is ~0)."""
    mean, hw = mean_ci(data, confidence)
    if hw == 0.0:
        return 0.0
    if abs(mean) < 1e-12:
        return float("inf")
    return hw / abs(mean)


@dataclass
class ReplicationResult:
    """Replication outcomes plus per-metric summary statistics."""

    samples: Dict[str, List[float]] = field(default_factory=dict)
    replications: int = 0
    converged: bool = False
    confidence: float = 0.95

    def mean(self, metric: str) -> float:
        """Sample mean of ``metric`` across replications."""
        return mean_ci(self.samples[metric], self.confidence)[0]

    def half_width(self, metric: str) -> float:
        """CI half-width of ``metric`` at the configured confidence."""
        return mean_ci(self.samples[metric], self.confidence)[1]

    def summary(self) -> Dict[str, tuple]:
        """(mean, half-width) per collected metric."""
        return {
            m: mean_ci(vals, self.confidence) for m, vals in self.samples.items()
        }


def run_replications(
    run_once: Callable[[int], Mapping[str, float]],
    targets: Optional[Mapping[str, float]] = None,
    min_replications: int = 3,
    max_replications: int = 30,
    confidence: float = 0.95,
) -> ReplicationResult:
    """Repeat ``run_once(replication_index)`` until CI targets are met.

    ``run_once`` returns a mapping metric-name -> value for one replication.
    ``targets`` maps metric names to the maximum allowed *relative* CI
    half-width (e.g. ``{"T": 0.01}`` for the paper's ±1% rule on turnaround
    time).  Metrics whose mean is zero are considered converged (an absolute
    zero with zero spread needs no more samples; with spread, the relative
    rule is meaningless and replication continues until max).
    """
    if min_replications < 1:
        raise ValueError("min_replications must be >= 1")
    if max_replications < min_replications:
        raise ValueError("max_replications < min_replications")
    result = ReplicationResult(confidence=confidence)
    targets = dict(targets or {})

    for rep in range(max_replications):
        outcome = run_once(rep)
        for metric, value in outcome.items():
            result.samples.setdefault(metric, []).append(float(value))
        result.replications = rep + 1
        if result.replications < min_replications:
            continue
        if not targets:
            result.converged = True
            break
        done = True
        for metric, tol in targets.items():
            vals = result.samples.get(metric)
            if not vals:
                continue
            mean, hw = mean_ci(vals, confidence)
            if hw == 0.0:
                continue
            if abs(mean) < 1e-12:
                done = False
                continue
            if hw / abs(mean) > tol:
                done = False
        if done:
            result.converged = True
            break
    return result


def trim_warmup(values: Sequence[float], fraction: float = 0.1) -> List[float]:
    """Drop the first ``fraction`` of observations (transient removal)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1)")
    k = int(len(values) * fraction)
    return list(values[k:])


def batch_means(values: Sequence[float], batches: int = 10) -> List[float]:
    """Split a single long run into batch means (steady-state CI helper)."""
    n = len(values)
    if batches < 1:
        raise ValueError("batches must be >= 1")
    if n < batches:
        raise ValueError(f"cannot form {batches} batches from {n} values")
    size = n // batches
    return [
        sum(values[i * size : (i + 1) * size]) / size for i in range(batches)
    ]
