"""Event-calendar simulation kernel.

The kernel is deliberately small: a binary-heap calendar of timestamped
callbacks, plus an optional generator-coroutine layer (:class:`Process`)
for writing drivers such as "draw inter-arrival time, submit job, repeat"
in straight-line style.

Determinism: events at equal times fire in scheduling order (a monotone
sequence number breaks ties), so a seeded run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


#: Priority classes for same-timestamp ordering.  Resource *releases* must
#: be observed before resource *acquisitions* at the same instant, or
#: back-to-back tasks on one slot would appear to overlap.
PRIORITY_RELEASE = 0
PRIORITY_DEFAULT = 5
PRIORITY_ACQUIRE = 9


class EventHandle:
    """A scheduled callback; keep it to :meth:`cancel` before it fires."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (safe after it fired: no-op)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class Simulator:
    """The event calendar."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._now = float(start_time)
        self._stopped = False
        #: Number of events dispatched (for sanity checks / stats).
        self.dispatched = 0
        # Observability gauges (no-ops until attach_observability); synced
        # only at run() exits so the dispatch loop stays untouched.
        self._gauge_dispatched = NULL_REGISTRY.gauge("sim.events_dispatched")
        self._gauge_now = NULL_REGISTRY.gauge("sim.now")
        self._gauge_calendar = NULL_REGISTRY.gauge("sim.calendar_size")

    @property
    def now(self) -> float:
        return self._now

    def attach_observability(self, registry: MetricsRegistry) -> None:
        """Report kernel gauges into ``registry``.

        Registers ``sim.events_dispatched`` / ``sim.now`` /
        ``sim.calendar_size``, updated whenever :meth:`run` returns (never
        inside the dispatch loop, so attaching cannot perturb a run).
        """
        self._gauge_dispatched = registry.gauge("sim.events_dispatched")
        self._gauge_now = registry.gauge("sim.now")
        self._gauge_calendar = registry.gauge("sim.calendar_size")

    def sync_gauges(self) -> None:
        """Push the kernel's current state into the attached gauges.

        Called at every :meth:`run` exit, and by the telemetry sampler at
        each sampling instant -- without the latter, mid-run registry
        scrapes would read the gauges as of the *previous* ``run()`` exit.
        """
        self._gauge_dispatched.set(float(self.dispatched))
        self._gauge_now.set(self._now)
        self._gauge_calendar.set(float(len(self._heap)))

    def telemetry_snapshot(self) -> Dict[str, float]:
        """Authoritative kernel state for a telemetry sample.

        Unlike the gauges (pushed at sync points), these values are read
        straight off the kernel, so a sample can never observe them stale.
        ``calendar_size`` counts live (non-cancelled) events.
        """
        return {
            "sim_time": self._now,
            "events_dispatched": self.dispatched,
            "calendar_size": self.pending,
        }

    # ----------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Run ``callback`` ``delay`` simulated time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time`` (>= now).

        Same-timestamp events fire by (priority, scheduling order).
        """
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        handle = EventHandle(time, priority, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    # -------------------------------------------------------------- running
    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the calendar empties or ``until`` is passed.

        Returns the simulation time at exit.  Events scheduled exactly at
        ``until`` still fire.
        """
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            handle = heap[0]
            if handle.cancelled:
                # Purge before the early-exit check (mirrors peek()): a
                # cancelled head must not decide when the loop pauses.
                heapq.heappop(heap)
                continue
            if until is not None and handle.time > until:
                self._now = until
                self.sync_gauges()
                return self._now
            heapq.heappop(heap)
            self._now = handle.time
            self.dispatched += 1
            handle.callback()
        if until is not None and self._now < until:
            self._now = until
        self.sync_gauges()
        return self._now

    def step(self) -> bool:
        """Dispatch a single event; returns False when the calendar is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self.dispatched += 1
            handle.callback()
            return True
        return False

    def stop(self) -> None:
        """Halt :meth:`run` after the current event completes."""
        self._stopped = True

    def state_digest(self) -> Dict[str, float]:
        """The kernel's position, as comparable JSON-safe data.

        Two same-seed runs at the same number of dispatched events must
        agree on all four values (events fire in a deterministic order);
        checkpoint/restore validation relies on exactly that.
        """
        return {
            "now": self._now,
            "dispatched": self.dispatched,
            "seq": self._seq,
            "pending": self.pending,
        }

    @property
    def pending(self) -> int:
        return sum(1 for h in self._heap if not h.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------ processes
    def process(self, generator: Generator) -> "Process":
        """Start a generator coroutine as a simulation process."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """An event that fires ``delay`` time units from now."""
        ev = Event(self)
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def event(self) -> "Event":
        """A fresh untriggered event bound to this simulator."""
        return Event(self)


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("sim", "callbacks", "triggered", "value")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to waiting callbacks."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb`` when the event triggers (immediately if it already has)."""
        if self.triggered:
            cb(self)
        else:
            self.callbacks.append(cb)


class Process(Event):
    """Drives a generator: each ``yield``ed Event resumes the generator."""

    __slots__ = ("_gen",)

    def __init__(self, sim: Simulator, generator: Generator) -> None:
        super().__init__(sim)
        self._gen = generator
        # Start on a zero-delay event so creation order doesn't matter.
        sim.schedule(0.0, lambda: self._resume(None))

    def _resume(self, event: Optional[Event]) -> None:
        try:
            target = self._gen.send(None if event is None else event.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process must yield Event instances, got {type(target).__name__}"
            )
        target.add_callback(self._resume)
