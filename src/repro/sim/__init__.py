"""Discrete event simulation substrate.

A compact SimPy-style kernel used to drive the open-system experiments of
the paper (Section VI): Poisson job arrivals, event-driven scheduler
invocations, and schedule-driven task execution.

Components
----------
* :class:`~repro.sim.kernel.Simulator` -- the event calendar: schedule
  callbacks at absolute/relative simulated times, run to exhaustion or a
  time bound.
* :class:`~repro.sim.kernel.Event` / :class:`~repro.sim.kernel.Process` --
  generator-coroutine processes for writing workload drivers naturally.
* :class:`~repro.sim.rng.RandomStreams` -- named, independently seeded
  random streams (arrivals, task sizes, deadlines...) so experiments are
  reproducible and factor-at-a-time runs share common random numbers.
* :mod:`repro.sim.stats` -- replication control with Student-t confidence
  intervals, matching the paper's stopping rule (repeat until the CI of T is
  within ±1% of the mean at 95% confidence).
"""

from repro.sim.kernel import Event, EventHandle, Process, Simulator
from repro.sim.rng import Distributions, RandomStreams
from repro.sim.stats import (
    ReplicationResult,
    RunningStats,
    batch_means,
    mean_ci,
    relative_half_width,
    run_replications,
    trim_warmup,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "Event",
    "Process",
    "RandomStreams",
    "Distributions",
    "ReplicationResult",
    "RunningStats",
    "batch_means",
    "mean_ci",
    "relative_half_width",
    "run_replications",
    "trim_warmup",
]
