"""Run-level metric collection.

One :class:`MetricsCollector` instance accompanies one simulation run.  The
resource manager reports its per-invocation wall-clock overhead; the
executor reports job completions; :meth:`MetricsCollector.finalize` computes
the paper's O / N / T / P.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.entities import Job


@dataclass
class RunMetrics:
    """Final metrics of one simulation run."""

    jobs_arrived: int
    jobs_completed: int
    late_jobs: int  # N
    proportion_late: float  # P, in [0, 1]
    avg_turnaround: float  # T, seconds of simulated time
    avg_sched_overhead: float  # O, wall-clock seconds per job
    total_sched_overhead: float
    scheduler_invocations: int
    makespan: int  # last completion time in the run
    late_job_ids: List[int] = field(default_factory=list)
    #: per-job turnaround times (for distribution analysis)
    turnarounds: Dict[int, int] = field(default_factory=dict)
    #: tardiness (completion - deadline, > 0) of each late job -- the
    #: severity behind N/P (how late the late jobs actually were)
    tardiness_by_job: Dict[int, int] = field(default_factory=dict)
    #: aggregated CP search statistics when MRCP-RM produced them
    solver_branches: int = 0
    solver_fails: int = 0
    solver_lns_iterations: int = 0
    #: ---- solver-phase profile (aggregated across invocations; zero
    #: unless the resource manager reported extended solve stats) ----
    #: individual propagator executions inside the CP engine
    solver_propagations: int = 0
    #: wall seconds in root propagation across all solves
    solver_propagate_time: float = 0.0
    #: wall seconds in list-scheduling warm starts (incl. hint replay)
    solver_warm_start_time: float = 0.0
    #: wall seconds in branch-and-bound tree search
    solver_tree_time: float = 0.0
    #: wall seconds in LNS improvement
    solver_lns_time: float = 0.0
    #: per-propagator-class effort: name -> {"runs", "prunes", "fails"}
    solver_propagators: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: which phase produced each invocation's plan: phase name -> count
    #: (phases: hint / warm_start / tree / lns / none)
    solves_by_phase: Dict[str, int] = field(default_factory=dict)
    #: per-invocation scheduling overhead, in invocation order (feeds the
    #: overhead CSV export; sums to ``total_sched_overhead``)
    overhead_series: List[float] = field(default_factory=list)
    #: simulated time of each invocation, parallel to ``overhead_series``
    #: (None for invocations recorded without a timeline, e.g. by older
    #: callers) -- lets overhead be correlated with arrivals and faults
    overhead_sim_times: List[Optional[float]] = field(default_factory=list)
    #: ---- failure attribution (all zero on the fault-free happy path) ----
    #: whether a fault injector was attached to the run
    faults_enabled: bool = False
    #: jobs abandoned after exhausting their retry budget
    jobs_failed: int = 0
    failed_job_ids: List[int] = field(default_factory=list)
    #: task attempts that died to an injected fault
    failures_injected: int = 0
    #: task attempts preempted by a resource outage
    tasks_killed: int = 0
    #: attempts whose realised duration exceeded the plan
    stragglers_injected: int = 0
    #: resource outage windows that opened
    outages: int = 0
    #: failed/killed attempts re-queued for another try
    retries: int = 0
    #: scheduler invocations triggered by fault recovery
    replans_on_failure: int = 0
    #: CP solves that degraded to the EDF warm-start fallback
    fallback_solves: int = 0
    #: ---- degradation ladder (empty unless a ladder mediated solves) ----
    #: which ladder rung produced each invocation's plan: rung -> count
    solves_by_rung: Dict[str, int] = field(default_factory=dict)
    #: circuit-breaker open transitions over the run
    breaker_opens: int = 0

    @property
    def percent_late(self) -> float:
        """P as a percentage, the unit used in the paper's figures."""
        return 100.0 * self.proportion_late

    def tardiness_percentile(self, q: float) -> float:
        """Nearest-rank percentile of late-job tardiness (0 with no lates)."""
        values = sorted(self.tardiness_by_job.values())
        if not values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if q == 0:
            return float(values[0])
        rank = max(1, math.ceil(q / 100.0 * len(values)))
        return float(values[rank - 1])

    @property
    def mean_tardiness(self) -> float:
        """Mean tardiness over late jobs only (0 when every job made it)."""
        if not self.tardiness_by_job:
            return 0.0
        return sum(self.tardiness_by_job.values()) / len(self.tardiness_by_job)

    @property
    def max_tardiness(self) -> int:
        """Largest single deadline miss, in simulated seconds."""
        return max(self.tardiness_by_job.values(), default=0)

    def as_dict(self, verbose: bool = False) -> Dict[str, float]:
        """The paper's four metrics keyed O / N / T / P.

        Runs with fault injection (or a degraded solve) additionally report
        the failure-attribution counters; the fault-free happy path keeps
        exactly the paper's four keys, bit-identical to before.

        ``verbose=True`` appends the CP search-effort counters
        (``solver_branches`` / ``solver_fails`` / ``solver_lns_iterations``),
        the per-phase solver wall times, and the tardiness severity stats
        (mean/p50/p95/max over late jobs); the default stays the compact
        O/N/T/P dict so downstream comparisons and serialised results are
        unchanged.
        """
        d = {
            "O": self.avg_sched_overhead,
            "N": float(self.late_jobs),
            "T": self.avg_turnaround,
            "P": self.percent_late,
        }
        if self.faults_enabled or self.fallback_solves:
            d.update(
                {
                    "failures_injected": float(self.failures_injected),
                    "tasks_killed": float(self.tasks_killed),
                    "stragglers_injected": float(self.stragglers_injected),
                    "outages": float(self.outages),
                    "retries": float(self.retries),
                    "replans_on_failure": float(self.replans_on_failure),
                    "fallback_solves": float(self.fallback_solves),
                    "jobs_failed": float(self.jobs_failed),
                }
            )
        if self.solves_by_rung:
            for rung, count in sorted(self.solves_by_rung.items()):
                d[f"ladder_{rung}"] = float(count)
            d["breaker_opens"] = float(self.breaker_opens)
        if verbose:
            d.update(
                {
                    "solver_branches": float(self.solver_branches),
                    "solver_fails": float(self.solver_fails),
                    "solver_lns_iterations": float(self.solver_lns_iterations),
                    "solver_propagations": float(self.solver_propagations),
                    "solver_propagate_time": self.solver_propagate_time,
                    "solver_warm_start_time": self.solver_warm_start_time,
                    "solver_tree_time": self.solver_tree_time,
                    "solver_lns_time": self.solver_lns_time,
                    "tardiness_mean": self.mean_tardiness,
                    "tardiness_p50": self.tardiness_percentile(50),
                    "tardiness_p95": self.tardiness_percentile(95),
                    "tardiness_max": float(self.max_tardiness),
                }
            )
        return d


class MetricsCollector:
    """Accumulates events during one run."""

    def __init__(self) -> None:
        self._arrived: Dict[int, Job] = {}
        self._completed: Dict[int, int] = {}  # job id -> completion time
        self._failed: Dict[int, int] = {}  # job id -> failure time
        self._overhead_total = 0.0
        self._overhead_series: List[float] = []
        self._overhead_times: List[Optional[float]] = []
        self._invocations = 0
        # Incremental N / T numerators so live_summary() is O(1) and
        # agrees exactly with finalize()'s recomputation.
        self._late_count = 0
        self._turnaround_sum = 0
        self.solver_branches = 0
        self.solver_fails = 0
        self.solver_lns_iterations = 0
        self.solver_propagations = 0
        self.solver_propagate_time = 0.0
        self.solver_warm_start_time = 0.0
        self.solver_tree_time = 0.0
        self.solver_lns_time = 0.0
        self._solver_propagators: Dict[str, Dict[str, int]] = {}
        self._solves_by_phase: Dict[str, int] = {}
        self._solves_by_rung: Dict[str, int] = {}
        self.breaker_opens = 0
        self.faults_enabled = False
        self.failures_injected = 0
        self.tasks_killed = 0
        self.stragglers_injected = 0
        self.outages = 0
        self.retries = 0
        self.replans_on_failure = 0
        self.fallback_solves = 0

    # -------------------------------------------------------------- events
    def job_arrived(self, job: Job) -> None:
        """Record a job submission (the denominator of P)."""
        if job.id in self._arrived:
            raise ValueError(f"job {job.id} arrived twice")
        self._arrived[job.id] = job

    def job_completed(self, job: Job, time: float) -> None:
        """Record a job's completion time (feeds N, T, P)."""
        if job.id in self._completed:
            raise ValueError(f"job {job.id} completed twice")
        if job.id in self._failed:
            raise ValueError(f"job {job.id} completed after failing")
        ct = int(time)
        self._completed[job.id] = ct
        self._turnaround_sum += ct - job.earliest_start
        if ct > job.deadline:
            self._late_count += 1

    def record_overhead(
        self, wall_seconds: float, sim_time: Optional[float] = None
    ) -> None:
        """Add one scheduler invocation's wall-clock cost (feeds O).

        ``sim_time`` stamps the invocation on the simulated timeline so
        the overhead series can be correlated with arrivals and faults.
        """
        self._overhead_total += wall_seconds
        self._overhead_series.append(wall_seconds)
        self._overhead_times.append(sim_time)
        self._invocations += 1

    def record_solver_stats(
        self,
        branches: int,
        fails: int,
        lns: int,
        propagations: int = 0,
        propagate_time: float = 0.0,
        warm_start_time: float = 0.0,
        tree_time: float = 0.0,
        lns_time: float = 0.0,
    ) -> None:
        """Accumulate CP search effort counters across invocations.

        The three positional counters match the original signature; the
        keyword phase timings are reported when the resource manager passes
        extended :class:`~repro.cp.solution.SearchStats` through.
        """
        self.solver_branches += branches
        self.solver_fails += fails
        self.solver_lns_iterations += lns
        self.solver_propagations += propagations
        self.solver_propagate_time += propagate_time
        self.solver_warm_start_time += warm_start_time
        self.solver_tree_time += tree_time
        self.solver_lns_time += lns_time

    def record_solve_profile(self, profile) -> None:
        """Fold one solve's :class:`~repro.cp.solution.SolveProfile` in.

        Accumulates per-propagator-class counters and tallies which phase
        produced the plan (``solved_by``).  Accepts ``None`` so callers can
        pass ``result.profile`` unconditionally.
        """
        if profile is None:
            return
        self._solves_by_phase[profile.solved_by] = (
            self._solves_by_phase.get(profile.solved_by, 0) + 1
        )
        for name, counts in profile.propagators.items():
            mine = self._solver_propagators.setdefault(
                name, {"runs": 0, "prunes": 0, "fails": 0}
            )
            for key in ("runs", "prunes", "fails"):
                mine[key] += counts.get(key, 0)

    # ------------------------------------------------------- fault events
    def enable_fault_tracking(self) -> None:
        """Mark the run as fault-injected (adds counters to ``as_dict``)."""
        self.faults_enabled = True

    def task_failed(self, reason: str) -> None:
        """One running attempt died: ``"failure"`` (hazard) or ``"outage"``."""
        if reason == "outage":
            self.tasks_killed += 1
        else:
            self.failures_injected += 1

    def task_straggled(self) -> None:
        """One attempt's realised duration exceeded its planned duration."""
        self.stragglers_injected += 1

    def task_retry(self) -> None:
        """One failed/killed attempt was re-queued for another try."""
        self.retries += 1

    def outage_started(self) -> None:
        """One resource outage window opened."""
        self.outages += 1

    def replan_on_failure(self) -> None:
        """One scheduler invocation was triggered by fault recovery."""
        self.replans_on_failure += 1

    def fallback_solve(self) -> None:
        """One CP solve degraded to the EDF warm-start fallback."""
        self.fallback_solves += 1

    def ladder_solve(self, rung: str) -> None:
        """One degradation-ladder solve produced its plan on ``rung``."""
        self._solves_by_rung[rung] = self._solves_by_rung.get(rung, 0) + 1

    def breaker_opened(self) -> None:
        """One circuit breaker tripped open."""
        self.breaker_opens += 1

    def job_failed(self, job: Job, time: float) -> None:
        """Record a job abandoned after exhausting its retry budget."""
        if job.id in self._failed:
            raise ValueError(f"job {job.id} failed twice")
        if job.id in self._completed:
            raise ValueError(f"job {job.id} failed after completing")
        self._failed[job.id] = int(time)

    # ------------------------------------------------------------- results
    @property
    def jobs_arrived(self) -> int:
        return len(self._arrived)

    @property
    def jobs_completed(self) -> int:
        return len(self._completed)

    @property
    def jobs_failed(self) -> int:
        return len(self._failed)

    @property
    def invocations(self) -> int:
        return self._invocations

    def completion_time(self, job_id: int) -> Optional[int]:
        """Completion time of ``job_id``, or None while running."""
        return self._completed.get(job_id)

    def live_summary(self) -> Dict[str, float]:
        """The paper's O / N / T / P over the run *so far*, in O(1).

        Maintained incrementally so the telemetry sampler can read it at
        every sampling instant; after the run drains it equals
        ``finalize().as_dict()`` exactly (same numerators, same
        denominators).
        """
        n_arrived = len(self._arrived)
        n_completed = len(self._completed)
        return {
            "O": self._overhead_total / n_arrived if n_arrived else 0.0,
            "N": float(self._late_count),
            "T": (
                self._turnaround_sum / n_completed if n_completed else 0.0
            ),
            "P": (
                100.0 * self._late_count / n_arrived if n_arrived else 0.0
            ),
        }

    def state_snapshot(self, deterministic: bool = True) -> Dict[str, object]:
        """The collector's mid-run state, as comparable JSON-safe data.

        Used by checkpoint/restore to prove a replayed run reconstructed
        the exact accounting.  ``deterministic=False`` drops the parts that
        only replay identically under a pinned clock and a fail-limited
        solver (the overhead series and the CP search-effort counters);
        everything else is a pure function of the seeded event sequence.
        """
        snap: Dict[str, object] = {
            "arrived": sorted(self._arrived),
            "completed": {str(k): v for k, v in sorted(self._completed.items())},
            "failed": {str(k): v for k, v in sorted(self._failed.items())},
            "faults_enabled": self.faults_enabled,
            "failures_injected": self.failures_injected,
            "tasks_killed": self.tasks_killed,
            "stragglers_injected": self.stragglers_injected,
            "outages": self.outages,
            "retries": self.retries,
            "replans_on_failure": self.replans_on_failure,
            "fallback_solves": self.fallback_solves,
            "breaker_opens": self.breaker_opens,
            "solves_by_phase": dict(sorted(self._solves_by_phase.items())),
            "solves_by_rung": dict(sorted(self._solves_by_rung.items())),
            "invocations": self._invocations,
            # Invocation sim-times replay identically under any wall clock
            # (they come off the simulation clock).
            "overhead_sim_times": list(self._overhead_times),
        }
        if deterministic:
            snap["overhead_series"] = list(self._overhead_series)
            snap["solver_effort"] = {
                "branches": self.solver_branches,
                "fails": self.solver_fails,
                "lns_iterations": self.solver_lns_iterations,
                "propagations": self.solver_propagations,
            }
        return snap

    def finalize(self) -> RunMetrics:
        """Compute O / N / T / P over the completed jobs."""
        late_ids: List[int] = []
        turnarounds: Dict[int, int] = {}
        tardiness: Dict[int, int] = {}
        for job_id, ct in self._completed.items():
            job = self._arrived[job_id]
            turnarounds[job_id] = ct - job.earliest_start
            if ct > job.deadline:
                late_ids.append(job_id)
                tardiness[job_id] = ct - job.deadline
        n_arrived = len(self._arrived)
        n_completed = len(self._completed)
        avg_turnaround = (
            sum(turnarounds.values()) / n_completed if n_completed else 0.0
        )
        return RunMetrics(
            jobs_arrived=n_arrived,
            jobs_completed=n_completed,
            late_jobs=len(late_ids),
            proportion_late=(len(late_ids) / n_arrived) if n_arrived else 0.0,
            avg_turnaround=avg_turnaround,
            avg_sched_overhead=(
                self._overhead_total / n_arrived if n_arrived else 0.0
            ),
            total_sched_overhead=self._overhead_total,
            scheduler_invocations=self._invocations,
            makespan=max(self._completed.values(), default=0),
            late_job_ids=sorted(late_ids),
            turnarounds=turnarounds,
            tardiness_by_job=dict(sorted(tardiness.items())),
            solver_branches=self.solver_branches,
            solver_fails=self.solver_fails,
            solver_lns_iterations=self.solver_lns_iterations,
            solver_propagations=self.solver_propagations,
            solver_propagate_time=self.solver_propagate_time,
            solver_warm_start_time=self.solver_warm_start_time,
            solver_tree_time=self.solver_tree_time,
            solver_lns_time=self.solver_lns_time,
            solver_propagators={
                name: dict(counts)
                for name, counts in sorted(self._solver_propagators.items())
            },
            solves_by_phase=dict(sorted(self._solves_by_phase.items())),
            overhead_series=list(self._overhead_series),
            overhead_sim_times=list(self._overhead_times),
            faults_enabled=self.faults_enabled,
            jobs_failed=len(self._failed),
            failed_job_ids=sorted(self._failed),
            failures_injected=self.failures_injected,
            tasks_killed=self.tasks_killed,
            stragglers_injected=self.stragglers_injected,
            outages=self.outages,
            retries=self.retries,
            replans_on_failure=self.replans_on_failure,
            fallback_solves=self.fallback_solves,
            solves_by_rung=dict(sorted(self._solves_by_rung.items())),
            breaker_opens=self.breaker_opens,
        )
