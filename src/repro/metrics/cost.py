"""Monetary cost of resource usage (paper Section VII future work).

"Directions for future research include ... the consideration of monetary
costs for resource usage."  This module prices an executed schedule under a
cloud-style tariff:

* **usage cost** -- each occupied slot-second is billed at a per-kind rate
  (map and reduce slots may be priced differently, e.g. reduce slots sit on
  memory-heavy machines);
* **provisioning cost** -- every provisioned resource is billed for the
  whole span of the run, used or not (the "pay for the leased VM" term);
* **SLA penalties** -- each deadline miss costs a fixed penalty, connecting
  the paper's late-jobs objective to revenue.

The resulting breakdown enables cost-per-on-time-job comparisons between
schedulers on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro.core.schedule import SlotKind, TaskAssignment
from repro.metrics.collector import RunMetrics
from repro.workload.entities import Resource


@dataclass(frozen=True)
class PricingModel:
    """A cloud tariff, in currency units per (slot-)second / per miss."""

    map_slot_price: float = 0.0002  # per occupied map-slot-second
    reduce_slot_price: float = 0.0004  # per occupied reduce-slot-second
    resource_base_price: float = 0.0001  # per provisioned resource-second
    late_penalty: float = 10.0  # per deadline miss

    def validate(self) -> None:
        """Reject negative tariff entries."""
        for name in (
            "map_slot_price",
            "reduce_slot_price",
            "resource_base_price",
            "late_penalty",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class CostBreakdown:
    """Priced components of one run."""

    map_usage_seconds: int = 0
    reduce_usage_seconds: int = 0
    usage_cost: float = 0.0
    provisioning_cost: float = 0.0
    penalty_cost: float = 0.0
    late_jobs: int = 0
    per_job_usage: Dict[int, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.usage_cost + self.provisioning_cost + self.penalty_cost

    def cost_per_on_time_job(self, jobs_completed: int) -> float:
        """Total cost divided by jobs that met their deadline (inf if none)."""
        on_time = jobs_completed - self.late_jobs
        if on_time <= 0:
            return float("inf")
        return self.total / on_time


def execution_cost(
    assignments: Iterable[TaskAssignment],
    resources: Sequence[Resource],
    pricing: Optional[PricingModel] = None,
    span: Optional[int] = None,
    metrics: Optional[RunMetrics] = None,
) -> CostBreakdown:
    """Price an executed set of task assignments.

    ``span`` is the provisioning duration (defaults to the makespan of the
    assignments); ``metrics`` (if given) supplies the late-job count for
    the penalty term.
    """
    pricing = pricing or PricingModel()
    pricing.validate()
    breakdown = CostBreakdown()

    end = 0
    for a in assignments:
        seconds = a.task.duration
        if a.slot_kind is SlotKind.MAP:
            breakdown.map_usage_seconds += seconds
            cost = seconds * pricing.map_slot_price
        else:
            breakdown.reduce_usage_seconds += seconds
            cost = seconds * pricing.reduce_slot_price
        breakdown.usage_cost += cost
        breakdown.per_job_usage[a.task.job_id] = (
            breakdown.per_job_usage.get(a.task.job_id, 0.0) + cost
        )
        end = max(end, a.end)

    if span is None:
        span = end
    breakdown.provisioning_cost = (
        len(list(resources)) * span * pricing.resource_base_price
    )

    if metrics is not None:
        breakdown.late_jobs = metrics.late_jobs
        breakdown.penalty_cost = metrics.late_jobs * pricing.late_penalty
    return breakdown


def track_execution(executor) -> list:
    """Instrument a :class:`~repro.core.executor.ScheduledExecutor` (or any
    object with a ``_start_task`` method) to record every assignment that
    actually starts.  Returns the live list of assignments."""
    executed: list = []
    original = executor._start_task

    def recording(assignment):
        executed.append(assignment)
        original(assignment)

    executor._start_task = recording
    return executed
