"""Performance metrics of the evaluation (Section VI).

* ``O`` -- average matchmaking-and-scheduling time per job (the resource
  manager's processing overhead, measured in wall-clock seconds),
* ``N`` -- number of jobs that missed their deadline,
* ``T`` -- average job turnaround time ``mean(CT_j - s_j)``,
* ``P`` -- percentage of late jobs, ``N / jobs arrived``.
"""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.cost import (
    CostBreakdown,
    PricingModel,
    execution_cost,
    track_execution,
)

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "PricingModel",
    "CostBreakdown",
    "execution_cost",
    "track_execution",
]
