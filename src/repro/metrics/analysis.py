"""Post-run analysis: utilization, offered load, tardiness distributions.

The paper interprets its figures through resource contention ("higher
contention for resources, and thus not all jobs are able to start executing
at their earliest start times"); these helpers quantify that interpretation
for any run:

* :func:`slot_utilization` -- fraction of slot-seconds actually busy,
* :func:`offered_load` -- workload intensity: work arriving per unit time
  relative to the cluster's service capacity (the open-queue ``rho``),
* :func:`tardiness_stats` -- how late the late jobs actually were (the P
  metric counts misses; tardiness measures their severity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.schedule import SlotKind, TaskAssignment
from repro.ioutil import atomic_write_text
from repro.metrics.collector import RunMetrics
from repro.workload.entities import Resource, cluster_capacities


@dataclass
class UtilizationReport:
    """Busy fractions per slot kind over a time span."""

    span: int
    map_busy_seconds: int
    reduce_busy_seconds: int
    map_slots: int
    reduce_slots: int

    @property
    def map_utilization(self) -> float:
        denom = self.map_slots * self.span
        return self.map_busy_seconds / denom if denom else 0.0

    @property
    def reduce_utilization(self) -> float:
        denom = self.reduce_slots * self.span
        return self.reduce_busy_seconds / denom if denom else 0.0

    @property
    def overall_utilization(self) -> float:
        denom = (self.map_slots + self.reduce_slots) * self.span
        busy = self.map_busy_seconds + self.reduce_busy_seconds
        return busy / denom if denom else 0.0


def slot_utilization(
    assignments: Iterable[TaskAssignment],
    resources: Sequence[Resource],
    span: Optional[int] = None,
) -> UtilizationReport:
    """Busy slot-seconds / available slot-seconds over the run."""
    map_busy = reduce_busy = 0
    end = 0
    for a in assignments:
        if a.slot_kind is SlotKind.MAP:
            map_busy += a.task.duration
        else:
            reduce_busy += a.task.duration
        end = max(end, a.end)
    if span is None:
        span = end
    map_slots, reduce_slots = cluster_capacities(resources)
    return UtilizationReport(
        span=span,
        map_busy_seconds=map_busy,
        reduce_busy_seconds=reduce_busy,
        map_slots=map_slots,
        reduce_slots=reduce_slots,
    )


def offered_load(jobs: Sequence, resources: Sequence[Resource]) -> float:
    """Workload intensity rho = arriving work per second / service capacity.

    Above ~1.0 the open system is unstable (queues grow without bound);
    the paper's parameter choices keep it well below.
    """
    if not jobs:
        return 0.0
    total_work = sum(job.total_work for job in jobs)
    horizon = max(job.arrival_time for job in jobs) - min(
        job.arrival_time for job in jobs
    )
    if horizon <= 0:
        return float("inf")
    map_slots, reduce_slots = cluster_capacities(resources)
    capacity = map_slots + reduce_slots
    if capacity == 0:
        return float("inf")
    return (total_work / horizon) / capacity


@dataclass
class TardinessStats:
    """Severity of deadline misses."""

    late_jobs: int
    mean_tardiness: float  # over late jobs only; 0 if none
    max_tardiness: int
    total_tardiness: int
    tardiness_by_job: Dict[int, int]


def tardiness_stats(metrics: RunMetrics, jobs: Sequence) -> TardinessStats:
    """How late were the late jobs?  ``jobs`` supplies the deadlines."""
    deadline_of = {job.id: job.deadline for job in jobs}
    by_job: Dict[int, int] = {}
    for job_id, turnaround in metrics.turnarounds.items():
        if job_id not in deadline_of:
            continue
        job = next(j for j in jobs if j.id == job_id)
        completion = job.earliest_start + turnaround
        tardiness = completion - deadline_of[job_id]
        if tardiness > 0:
            by_job[job_id] = tardiness
    total = sum(by_job.values())
    return TardinessStats(
        late_jobs=len(by_job),
        mean_tardiness=total / len(by_job) if by_job else 0.0,
        max_tardiness=max(by_job.values(), default=0),
        total_tardiness=total,
        tardiness_by_job=by_job,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) without numpy ceremony."""
    if not values:
        raise ValueError("percentile of empty data")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if q == 0:
        return float(ordered[0])
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def turnaround_percentiles(
    metrics: RunMetrics, qs: Sequence[float] = (50, 90, 99)
) -> Dict[float, float]:
    """Distributional view of T (the paper reports only the mean)."""
    values: List[float] = list(metrics.turnarounds.values())
    if not values:
        return {q: 0.0 for q in qs}
    return {q: percentile(values, q) for q in qs}


# --------------------------------------------------------------- CSV export
def turnarounds_csv(metrics: RunMetrics) -> str:
    """CSV of per-job turnarounds: ``job_id,turnaround,late``.

    Rows are sorted by job id; ``late`` is 1 when the job missed its
    deadline (membership in :attr:`RunMetrics.late_job_ids`).
    """
    late = set(metrics.late_job_ids)
    lines = ["job_id,turnaround,late"]
    for job_id in sorted(metrics.turnarounds):
        lines.append(
            f"{job_id},{metrics.turnarounds[job_id]},{int(job_id in late)}"
        )
    return "\n".join(lines) + "\n"


def overhead_csv(metrics: RunMetrics) -> str:
    """CSV of the overhead series: ``invocation,sim_time,overhead_seconds``.

    One row per scheduler invocation, in invocation order.  ``sim_time``
    is the simulated instant the invocation ran at (empty for invocations
    recorded without a timeline), so overhead spikes can be correlated
    with arrivals and faults.  The last column sums to
    :attr:`RunMetrics.total_sched_overhead`; dividing by jobs arrived
    gives the paper's O.
    """
    times = metrics.overhead_sim_times
    lines = ["invocation,sim_time,overhead_seconds"]
    for i, seconds in enumerate(metrics.overhead_series):
        sim_time = times[i] if i < len(times) else None
        cell = "" if sim_time is None else repr(sim_time)
        lines.append(f"{i},{cell},{seconds!r}")
    return "\n".join(lines) + "\n"


def write_turnarounds_csv(metrics: RunMetrics, path: str) -> str:
    """Atomically write :func:`turnarounds_csv` to ``path``; returns ``path``."""
    atomic_write_text(path, turnarounds_csv(metrics))
    return path


def write_overhead_csv(metrics: RunMetrics, path: str) -> str:
    """Atomically write :func:`overhead_csv` to ``path``; returns ``path``."""
    atomic_write_text(path, overhead_csv(metrics))
    return path
