"""MRCP-RM reproduction: CP-based resource management for MapReduce with SLAs.

A from-scratch Python implementation of

    N. Lim, S. Majumdar, P. Ashwood-Smith,
    "A Constraint Programming-Based Resource Management Technique for
    Processing MapReduce Jobs with SLAs on Clouds", ICPP 2014.

Package map
-----------
* :mod:`repro.cp` -- constraint-programming scheduling solver (the CP
  Optimizer substitute): interval variables, cumulative / alternative /
  barrier constraints, branch-and-bound + LNS search.
* :mod:`repro.sim` -- discrete event simulation kernel, seeded random
  streams, replication statistics.
* :mod:`repro.workload` -- MapReduce job/SLA entities; Table 3 synthetic and
  Table 4 Facebook workload generators.
* :mod:`repro.core` -- MRCP-RM itself: the Table 1 formulation, the Table 2
  incremental algorithm, the V.D matchmaking decomposition, the V.E
  deferral optimisation, and the plan-driven executor.
* :mod:`repro.baselines` -- MinEDF-WC (Verma et al.), EDF, FCFS on a
  slot-based cluster.
* :mod:`repro.metrics` -- the O / N / T / P metrics of Section VI.
* :mod:`repro.experiments` -- per-figure experiment configurations and the
  replication runner.

Quickstart
----------
>>> from repro import quick_demo
>>> metrics = quick_demo(seed=1)          # a small open-system run
>>> metrics.jobs_completed == metrics.jobs_arrived
True
"""

from typing import Optional

from repro.core import MrcpRm, MrcpRmConfig
from repro.faults import FaultModel, OutageWindow
from repro.metrics import MetricsCollector, RunMetrics
from repro.sim import Simulator
from repro.workload import (
    FacebookWorkloadParams,
    SyntheticWorkloadParams,
    generate_facebook_workload,
    generate_synthetic_workload,
    make_uniform_cluster,
)

try:  # installed: single source of truth is the package metadata
    from importlib.metadata import version as _pkg_version

    __version__ = _pkg_version("repro")
except Exception:  # pragma: no cover - running from a source tree
    __version__ = "1.0.0"

__all__ = [
    "MrcpRm",
    "MrcpRmConfig",
    "FaultModel",
    "OutageWindow",
    "MetricsCollector",
    "RunMetrics",
    "Simulator",
    "SyntheticWorkloadParams",
    "FacebookWorkloadParams",
    "generate_synthetic_workload",
    "generate_facebook_workload",
    "make_uniform_cluster",
    "quick_demo",
]


def quick_demo(
    seed: int = 0,
    num_jobs: int = 10,
    faults: Optional[FaultModel] = None,
    tracer=None,
) -> RunMetrics:
    """Run a small MRCP-RM open system end to end; returns its metrics.

    Pass a :class:`FaultModel` to subject the run to task failures,
    stragglers, and resource outages; the default (``None``) is the
    fault-free happy path.  Pass a :class:`repro.obs.Tracer` to capture a
    trace of the run (the caller writes it out afterwards).
    """
    params = SyntheticWorkloadParams(
        num_jobs=num_jobs,
        map_tasks_range=(1, 8),
        reduce_tasks_range=(1, 4),
        e_max=10,
        ar_probability=0.3,
        s_max=200,
        deadline_multiplier_max=3.0,
        arrival_rate=0.05,
        total_map_slots=8,
        total_reduce_slots=8,
    )
    jobs = generate_synthetic_workload(params, seed=seed)
    resources = make_uniform_cluster(4, 2, 2)
    sim = Simulator()
    metrics = MetricsCollector()
    if tracer is not None:
        from repro.obs.trace import NULL_TRACER

        if tracer is not NULL_TRACER:  # never mutate the shared null tracer
            tracer.bind_sim_clock(lambda: sim.now)
        sim.attach_observability(tracer.registry)
    manager = MrcpRm(
        sim, resources, MrcpRmConfig(faults=faults), metrics, tracer=tracer
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    sim.run()
    manager.executor.assert_quiescent()
    return metrics.finalize()
