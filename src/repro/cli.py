"""Command-line interface: ``mrcp-rm`` / ``python -m repro``.

Subcommands
-----------
* ``list``  -- available figures and ablations.
* ``run``   -- regenerate one figure's data series, e.g.::

      mrcp-rm run fig2 --profile scaled --replications 3

* ``demo``   -- a ten-second end-to-end open-system demonstration.
* ``faults`` -- the demo run under fault injection (failures, stragglers,
  resource outages), printing the failure-attribution counters.
* ``trace``  -- generate a workload trace file (JSON) for offline use.
* ``report`` -- run a seeded scenario and write a self-contained HTML run
  report (Gantt, utilization, lateness attribution, solver tables).
* ``sweep``  -- run a figure's (configuration x replication) grid over a
  process pool with deterministic fan-out, e.g.::

      mrcp-rm sweep fig7 --workers 4 --replications 3 --out-dir out/

* ``bench``  -- run the pinned benchmark suite and compare against the
  committed ``BENCH_core.json`` baseline (nonzero exit on regression).
* ``checkpoint`` -- run a seeded scenario with crash-safe checkpoints,
  optionally killing it at a boundary, or restore from a snapshot file::

      mrcp-rm checkpoint --out-dir ckpts --kill-after 2
      mrcp-rm checkpoint --restore ckpts/ckpt-00000040.json

* ``chaos``  -- run the resilience chaos scenarios (kill/restore cycle,
  overload burst through the degradation ladder, pool worker death) and
  exit nonzero if any contract is violated.
* ``telemetry`` -- run a seeded scenario with live telemetry sampling and
  SLO burn-rate alerting, writing an OpenMetrics snapshot, the sampled
  series JSONL and the alert log::

      mrcp-rm telemetry --scenario overload --out-dir out/

* ``diff``   -- capture diffable run directories and explain how two runs
  (or two merged sweeps) diverge: first divergent event, first divergent
  scheduler invocation, per-job delta waterfalls.  Exit 0 = identical,
  1 = divergent, 2 = unreadable input::

      mrcp-rm diff --capture out/a --seed 3
      mrcp-rm diff --capture out/b --seed 3 --fail-limit 1
      mrcp-rm diff out/a out/b --json diff.json --html diff.html
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments import (
    PAPER,
    SCALED,
    figure_series,
    format_series,
    list_figures,
)
from repro.experiments.reporting import run_series


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available figures/ablations:")
    for name in list_figures():
        series = figure_series(name, SCALED)
        print(f"  {name:22s} {series.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    series = figure_series(args.figure, args.profile)
    print(f"running {series.figure} [{args.profile} profile] "
          f"({len(series.configs)} configurations x up to "
          f"{args.replications} replications)")
    results = run_series(
        series, replications=args.replications, verbose=not args.quiet
    )
    print()
    print(format_series(series, results))
    return 0


def _make_tracer(args: argparse.Namespace):
    """Build a tracer from a subcommand's ``--trace-out`` (None when unset)."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None:
        return None
    from repro.obs import ObsConfig

    return ObsConfig(trace_out=trace_out).make_tracer()


def _write_trace(tracer, args: argparse.Namespace) -> None:
    """Write the captured trace and report the output paths."""
    if tracer is None:
        return
    chrome, jsonl = tracer.write(args.trace_out)
    print(f"  trace written          : {chrome} (+ {jsonl})")


def _print_tardiness(metrics, indent: str = "  ") -> None:
    """Print tardiness severity (mean/p95/max) when any job was late."""
    if not metrics.late_jobs:
        return
    print(
        f"{indent}tardiness mean/p95/max : "
        f"{metrics.mean_tardiness:.1f}/"
        f"{metrics.tardiness_percentile(95):.1f}/"
        f"{metrics.max_tardiness:.1f} s"
    )


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import quick_demo

    tracer = _make_tracer(args)
    metrics = quick_demo(seed=args.seed, tracer=tracer)
    print("quick demo (MRCP-RM on a 4-resource cluster):")
    print(f"  jobs arrived/completed : {metrics.jobs_arrived}/{metrics.jobs_completed}")
    print(f"  late jobs (N)          : {metrics.late_jobs}")
    print(f"  percent late (P)       : {metrics.percent_late:.2f}%")
    print(f"  avg turnaround (T)     : {metrics.avg_turnaround:.1f} s")
    print(f"  avg overhead (O)       : {metrics.avg_sched_overhead * 1000:.2f} ms/job")
    _print_tardiness(metrics)
    _write_trace(tracer, args)
    return 0


def _parse_outage(spec: str):
    """Parse an ``--outage RES:START:DUR`` specification."""
    from repro.faults import OutageWindow

    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"outage spec {spec!r} must be RESOURCE:START:DURATION"
        )
    try:
        return OutageWindow(int(parts[0]), float(parts[1]), float(parts[2]))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad outage spec {spec!r}: {exc}")


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro import quick_demo
    from repro.faults import FaultModel

    model = FaultModel(
        task_failure_prob=args.failure_prob,
        straggler_prob=args.straggler_prob,
        straggler_factor=args.straggler_factor,
        outages=tuple(args.outage or ()),
        seed=args.seed,
    )
    tracer = _make_tracer(args)
    metrics = quick_demo(
        seed=args.seed, num_jobs=args.jobs, faults=model, tracer=tracer
    )
    print("fault-injected demo (MRCP-RM on a 4-resource cluster):")
    print(f"  jobs arrived/completed/failed : "
          f"{metrics.jobs_arrived}/{metrics.jobs_completed}/{metrics.jobs_failed}")
    print(f"  late jobs (N)                 : {metrics.late_jobs}")
    print(f"  percent late (P)              : {metrics.percent_late:.2f}%")
    print(f"  avg turnaround (T)            : {metrics.avg_turnaround:.1f} s")
    print(f"  task failures injected        : {metrics.failures_injected}")
    print(f"  tasks killed by outages       : {metrics.tasks_killed}")
    print(f"  stragglers injected           : {metrics.stragglers_injected}")
    print(f"  outages                       : {metrics.outages}")
    print(f"  retries                       : {metrics.retries}")
    print(f"  replans on failure            : {metrics.replans_on_failure}")
    print(f"  fallback solves               : {metrics.fallback_solves}")
    _print_tardiness(metrics)
    _write_trace(tracer, args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.configs import (
        default_facebook_params,
        default_synthetic_params,
        default_workflow_params,
    )
    from repro.sim import RandomStreams
    from repro.workload import (
        generate_facebook_workload,
        generate_synthetic_workload,
        generate_workflow_workload,
        save_trace,
    )
    from repro.workload.traces import save_workflow_trace

    streams = RandomStreams(args.seed)
    if args.workload == "facebook":
        jobs = generate_facebook_workload(
            default_facebook_params(args.profile), streams=streams
        )
        save_trace(jobs, args.output)
    elif args.workload == "workflow":
        jobs = generate_workflow_workload(
            default_workflow_params(args.profile), streams=streams
        )
        save_workflow_trace(jobs, args.output)
    else:
        jobs = generate_synthetic_workload(
            default_synthetic_params(args.profile), streams=streams
        )
        save_trace(jobs, args.output)
    total_tasks = sum(len(j.tasks) for j in jobs)
    print(f"wrote {len(jobs)} jobs / {total_tasks} tasks to {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core import MrcpRm, MrcpRmConfig
    from repro.cp.solver import SolverParams
    from repro.metrics import MetricsCollector
    from repro.obs import ObsConfig
    from repro.obs.forensics import attribute_lateness, format_attributions
    from repro.obs.report import write_report
    from repro.obs.slo import SloMonitor, default_slos
    from repro.obs.timeseries import TelemetryConfig, TimeSeriesSampler
    from repro.sim import RandomStreams, Simulator
    from repro.workload import (
        SyntheticWorkloadParams,
        generate_synthetic_workload,
        make_uniform_cluster,
    )

    params = SyntheticWorkloadParams(
        num_jobs=args.jobs,
        total_map_slots=8,
        total_reduce_slots=8,
        deadline_multiplier_max=1.4,
        scale=0.1,
    )
    jobs = generate_synthetic_workload(params, streams=RandomStreams(args.seed))
    resources = make_uniform_cluster(4, 2, 2)
    sim = Simulator()
    metrics = MetricsCollector()
    tracer = ObsConfig(trace=True, plan_history=True).make_tracer()
    tracer.bind_sim_clock(lambda: sim.now)
    sim.attach_observability(tracer.registry)
    faults = None
    if args.faults:
        from repro.faults import FaultModel

        faults = FaultModel(
            task_failure_prob=0.15,
            straggler_prob=0.2,
            straggler_factor=2.0,
            outage_rate=0.002,
            outage_duration_range=(30.0, 90.0),
            outage_horizon=2000.0,
            seed=args.seed,
        )
    config = MrcpRmConfig(
        faults=faults,
        record_plan_history=True,
        solver=SolverParams(time_limit=0.5, tree_fail_limit=200, use_lns=False),
    )
    manager = MrcpRm(sim, resources, config, metrics, tracer=tracer)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: manager.submit(j))
    # Live telemetry rides along so the report gets its timeline strips.
    sampler = TimeSeriesSampler(TelemetryConfig(enabled=True, interval=5.0))
    sampler.attach(sim, collector=metrics, registry=tracer.registry)
    manager.attach_telemetry(sampler)
    monitor = SloMonitor(default_slos(), tracer=tracer)
    monitor.subscribe(sampler)
    sampler.start()
    sim.run()
    manager.executor.assert_quiescent()
    sampler.finalize()
    result = metrics.finalize()
    events = tracer.recorder.events
    attributions = attribute_lateness(
        result, jobs, events, plan_history=manager.plan_history
    )
    title = (
        f"MRCP-RM run report (seed {args.seed}, {args.jobs} jobs"
        f"{', fault-injected' if args.faults else ''})"
    )
    write_report(
        args.out,
        result,
        resources=resources,
        events=events,
        attributions=attributions,
        plan_history=manager.plan_history,
        series=sampler.store.samples,
        alerts=[alert.as_dict() for alert in monitor.alerts],
        title=title,
    )
    print(f"run: {result.jobs_completed}/{result.jobs_arrived} jobs completed, "
          f"{result.late_jobs} late ({result.percent_late:.1f}%)")
    _print_tardiness(metrics=result)
    if attributions:
        print(format_attributions(attributions))
    print(f"report written: {args.out}")
    if args.trace_out is not None:
        chrome, jsonl = tracer.write(args.trace_out)
        print(f"trace written : {chrome} (+ {jsonl})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench_command

    return run_bench_command(args)


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import default_chaos_config
    from repro.resilience.checkpoint import (
        CheckpointConfig,
        restore_run,
        run_with_checkpoints,
    )

    config = default_chaos_config(seed=args.seed, faults=not args.no_faults)
    if args.restore is not None:
        metrics = restore_run(config, args.restore, replication=args.replication)
        print(f"restored from {args.restore} and ran to completion:")
        print(f"  jobs arrived/completed : "
              f"{metrics.jobs_arrived}/{metrics.jobs_completed}")
        print(f"  O/N/T/P                : {metrics.avg_sched_overhead:.4g} / "
              f"{metrics.late_jobs} / {metrics.avg_turnaround:.1f} / "
              f"{metrics.percent_late:.2f}")
        return 0

    ckpt = CheckpointConfig(
        every_events=args.every_events,
        out_dir=args.out_dir,
        keep=args.keep,
    )
    run = run_with_checkpoints(
        config,
        ckpt,
        replication=args.replication,
        kill_after_checkpoints=args.kill_after,
    )
    print(f"checkpoints written    : {len(run.snapshots)}")
    for path in run.paths:
        print(f"  {path}")
    if run.killed:
        print("run killed at the last checkpoint boundary (restore with "
              "`mrcp-rm checkpoint --restore <snapshot>`)")
    else:
        metrics = run.metrics
        print(f"run drained normally   : "
              f"{metrics.jobs_arrived}/{metrics.jobs_completed} jobs, "
              f"{metrics.late_jobs} late")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from repro.resilience import chaos

    scenarios = {
        "kill-restore": lambda d: chaos.kill_restore_cycle(
            out_dir=os.path.join(d, "checkpoints")
        ),
        "overload": lambda d: chaos.overload_burst(),
        "worker-death": lambda d: chaos.pool_worker_death(
            os.path.join(d, "sweeps")
        ),
    }
    selected = (
        list(scenarios) if args.scenario == "all" else [args.scenario]
    )

    def run_selected(out_dir: str) -> int:
        failures = 0
        for name in selected:
            report = scenarios[name](out_dir)
            print(report.summary())
            print()
            failures += 0 if report.passed else 1
        if failures:
            print(f"{failures} chaos scenario(s) FAILED", file=sys.stderr)
            return 1
        print(f"all {len(selected)} chaos scenario(s) passed")
        return 0

    if args.out_dir is not None:
        os.makedirs(args.out_dir, exist_ok=True)
        return run_selected(args.out_dir)
    with tempfile.TemporaryDirectory(prefix="mrcp-chaos-") as tmp:
        return run_selected(tmp)


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.runner import build_live_run
    from repro.obs.export import (
        render_openmetrics,
        render_series_openmetrics,
        write_openmetrics,
    )
    from repro.obs.timeseries import TelemetryConfig
    from repro.resilience.chaos import (
        default_chaos_config,
        escalation_ladder,
        fresh_run_config,
    )

    os.makedirs(args.out_dir, exist_ok=True)
    series_path = os.path.join(args.out_dir, "series.jsonl")
    alerts_path = os.path.join(args.out_dir, "alerts.jsonl")
    prom_path = os.path.join(args.out_dir, "telemetry.prom")

    if args.scenario == "overload":
        # The overload-burst chaos scenario: a 10x arrival spike with the
        # CP rungs injected to fail, so early plans land on the greedy
        # rung and the degraded-solves SLO deterministically fires.
        config = default_chaos_config(
            seed=args.seed, faults=False, ladder=escalation_ladder()
        )
        config = replace(
            config,
            synthetic=replace(
                config.synthetic,
                arrival_rate=config.synthetic.arrival_rate * 10.0,
            ),
        )
    else:
        config = default_chaos_config(seed=args.seed, faults=False)
    telemetry = TelemetryConfig(
        enabled=True,
        interval=args.interval,
        series_out=series_path,
        alerts_out=alerts_path,
    )
    config = fresh_run_config(config)
    config = replace(config, obs=replace(config.obs, telemetry=telemetry))

    run = build_live_run(config)
    metrics = run.finish()

    registry_text = render_openmetrics(run.tracer.registry)
    series_text = render_series_openmetrics(run.sampler.store.samples)
    combined = registry_text[: -len("# EOF\n")] + series_text
    try:
        write_openmetrics(prom_path, combined)
    except ValueError as exc:
        print(f"OpenMetrics validation FAILED: {exc}", file=sys.stderr)
        return 1

    alerts = run.slo_monitor.fired if run.slo_monitor is not None else []
    print(f"telemetry run ({args.scenario}, seed {args.seed}):")
    print(f"  jobs arrived/completed : "
          f"{metrics.jobs_arrived}/{metrics.jobs_completed}")
    print(f"  O/N/T/P                : {metrics.avg_sched_overhead:.4g} / "
          f"{metrics.late_jobs} / {metrics.avg_turnaround:.1f} / "
          f"{metrics.percent_late:.2f}")
    print(f"  samples                : {len(run.sampler.store)} "
          f"(every {args.interval:g}s of sim time)")
    print(f"  SLO alerts fired       : {len(alerts)}")
    for alert in alerts:
        print(f"  SLO ALERT fired name={alert.name} kind={alert.kind} "
              f"t={alert.sim_time:g} burn_long={alert.burn_long:.2f} "
              f"burn_short={alert.burn_short:.2f}")
    print(f"  openmetrics            : {prom_path} (validated)")
    print(f"  series                 : {series_path}")
    print(f"  alerts                 : {alerts_path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import (
        DiffError,
        capture_run_dir,
        default_diff_config,
        diff_run_dirs,
        diff_sweeps,
        format_run_diff,
        format_sweep_diff,
        write_diff_json,
    )

    if args.capture is not None:
        config = default_diff_config(
            seed=args.seed, fail_limit=args.fail_limit
        )
        artifacts = capture_run_dir(
            config,
            args.capture,
            label=args.label or os.path.basename(args.capture.rstrip("/")),
        )
        print(f"captured run directory : {artifacts.path}")
        print(f"  label                : {artifacts.label}")
        print(f"  seed                 : {config.seed}")
        print(f"  events               : {len(artifacts.events)}")
        print(f"  scheduler invocations: {len(artifacts.plans)}")
        return 0

    if args.a is None or args.b is None:
        print("diff needs two inputs (or --capture DIR)", file=sys.stderr)
        return 2
    try:
        if args.a.endswith(".json") or args.b.endswith(".json"):
            doc = diff_sweeps(args.a, args.b)
            if not args.quiet:
                print(format_sweep_diff(doc))
            if args.html is not None:
                print(
                    "--html applies to run-directory diffs only; ignoring",
                    file=sys.stderr,
                )
        else:
            diff = diff_run_dirs(args.a, args.b)
            doc = diff.to_json_dict()
            if not args.quiet:
                print(format_run_diff(diff))
            if args.html is not None:
                from repro.obs.diffreport import write_diff_report

                write_diff_report(args.html, diff)
                print(f"diff report written: {args.html}")
    except DiffError as exc:
        print(f"diff failed: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        write_diff_json(args.json, doc)
        print(f"diff.json written  : {args.json}")
    return 0 if doc["verdict"] == "identical" else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.timeseries import WallSeriesSampler
    from repro.service.admission import AdmissionConfig
    from repro.service.batching import BatchingConfig
    from repro.service.server import SchedulerService, ServiceConfig
    from repro.workload import make_uniform_cluster

    config = ServiceConfig(
        batching=BatchingConfig(
            max_batch_size=args.max_batch_size,
            max_hold_seconds=args.max_hold,
            max_pending=args.max_pending,
            overload_queue_depth=args.overload_depth,
        ),
        admission=AdmissionConfig(),
        host=args.host,
        port=args.port,
    )
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    sampler = None
    if args.series_out is not None:
        sampler = WallSeriesSampler(
            interval=args.series_interval, registry=registry
        )
    service = SchedulerService(
        resources=make_uniform_cluster(args.resources),
        config=config,
        registry=registry,
        sampler=sampler,
    )
    try:
        asyncio.run(service.serve())
    except KeyboardInterrupt:
        pass
    if sampler is not None and args.series_out is not None:
        sampler.sample(service.clock.now(), final=True)
        print(f"series written: {sampler.write_series(args.series_out)}")
    print("service shut down cleanly")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.batching import BatchingConfig
    from repro.service.loadgen import (
        LoadProfile,
        run_against_url,
        run_inprocess,
    )
    from repro.service.server import ServiceConfig

    profile = LoadProfile(
        requests=args.requests,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
    )
    if args.url is not None:
        import asyncio

        report = asyncio.run(
            run_against_url(args.url, profile, time_scale=args.time_scale)
        )
        mode = f"against {args.url}"
    else:
        config = ServiceConfig(
            batching=BatchingConfig(
                max_batch_size=args.max_batch_size,
                max_hold_seconds=args.max_hold,
            )
        )
        report = run_inprocess(profile, config=config)
        mode = "in-process (deterministic)"
    print(f"loadtest {mode}: {report.requests} requests, seed {args.seed}")
    print(f"  admitted / rejected / shed : "
          f"{report.admitted} / {report.rejected} / {report.shed}")
    print(f"  verdict digest             : {report.digest}")
    print(f"  admission latency p50/p99  : "
          f"{report.latency_p50 * 1000:.2f} / {report.latency_p99 * 1000:.2f} ms"
          f" (max {report.latency_max * 1000:.2f} ms)")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(
                report.as_dict(include_quotes=args.quotes), fh,
                indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"  report written             : {args.json}")
    if report.requests == 0:
        print("loadtest FAILED: no responses collected", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.pool import (
        SweepSpec,
        build_sweep_report,
        run_sweep,
    )

    series = figure_series(args.figure, args.profile)
    spec = SweepSpec.from_series(
        series,
        replications=args.replications,
        root_seed=args.seed,
        deterministic=not args.wall_clock,
        capture=args.capture,
        telemetry=args.telemetry,
    )
    cells = spec.cells()
    print(
        f"sweeping {series.figure} [{args.profile} profile]: "
        f"{len(series.configs)} configurations x {args.replications} "
        f"replications = {len(cells)} cells over {args.workers} worker(s)"
    )

    def progress(outcome) -> None:
        if args.quiet:
            return
        mark = "ok" if outcome.status == "ok" else "FAILED"
        detail = f" ({outcome.error})" if outcome.error else ""
        print(
            f"  [{outcome.index + 1:3d}/{len(cells)}] {outcome.label} "
            f"rep {outcome.replication}: {mark}{detail}"
        )

    result = run_sweep(
        spec,
        workers=args.workers,
        retries=args.retries,
        out_dir=args.out_dir,
        resume=args.resume,
        progress=progress,
    )

    print()
    print(f"sweep {result.name} ({series.factor}):")
    width = max(len(label) for label in result.summary())
    for label, stats in result.summary().items():
        line = f"  {label:{width}s}  ok {int(stats['ok'])}/{int(stats['cells'])}"
        if "O" in stats:
            line += (
                f"  O={stats['O'] * 1000:.2f}ms N={stats['N']:.2f} "
                f"T={stats['T']:.1f}s P={stats['P']:.2f}%"
            )
        print(line)
    print(f"  wall {result.wall:.2f}s over {result.workers} worker(s)")
    if args.out_dir is not None:
        print(f"  artifacts: {args.out_dir}/sweep.json, sweep.csv")
        if args.telemetry:
            print(f"  telemetry: {args.out_dir}/sweep.series.jsonl")
        if args.report:
            path = build_sweep_report(result, spec, args.out_dir)
            print(f"  report   : {path}")
    if result.failed_cells:
        print(f"  {len(result.failed_cells)} cell(s) FAILED", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="mrcp-rm",
        description="MRCP-RM (ICPP 2014) reproduction toolkit",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="install the structured repro.* log handler at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figures").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="regenerate one figure's data")
    run_p.add_argument("figure", choices=list_figures())
    run_p.add_argument(
        "--profile", choices=(SCALED, PAPER), default=SCALED,
        help="scaled = laptop-sized (default); paper = original Table 3/4",
    )
    run_p.add_argument("--replications", type=int, default=3)
    run_p.add_argument("--quiet", action="store_true")
    run_p.set_defaults(func=_cmd_run)

    demo_p = sub.add_parser("demo", help="ten-second end-to-end demo")
    demo_p.add_argument("--seed", type=int, default=0)
    demo_p.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON (+ .jsonl log) of the run",
    )
    demo_p.set_defaults(func=_cmd_demo)

    faults_p = sub.add_parser(
        "faults", help="end-to-end demo under fault injection"
    )
    faults_p.add_argument("--seed", type=int, default=0)
    faults_p.add_argument("--jobs", type=int, default=10)
    faults_p.add_argument(
        "--failure-prob", type=float, default=0.15,
        help="per-attempt probability of a mid-execution task failure",
    )
    faults_p.add_argument(
        "--straggler-prob", type=float, default=0.1,
        help="per-attempt probability of a straggler slowdown",
    )
    faults_p.add_argument(
        "--straggler-factor", type=float, default=2.5,
        help="duration multiplier applied to straggler attempts",
    )
    faults_p.add_argument(
        "--outage", type=_parse_outage, action="append", metavar="RES:START:DUR",
        help="deterministic resource outage window (repeatable)",
    )
    faults_p.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON (+ .jsonl log) of the run",
    )
    faults_p.set_defaults(func=_cmd_faults)

    trace_p = sub.add_parser("trace", help="write a workload trace (JSON)")
    trace_p.add_argument("output")
    trace_p.add_argument(
        "--workload",
        choices=("synthetic", "facebook", "workflow"),
        default="synthetic",
    )
    trace_p.add_argument("--profile", choices=(SCALED, PAPER), default=SCALED)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.set_defaults(func=_cmd_trace)

    report_p = sub.add_parser(
        "report", help="write a self-contained HTML run report"
    )
    report_p.add_argument(
        "--out", default="report.html", help="output HTML path"
    )
    report_p.add_argument("--seed", type=int, default=42)
    report_p.add_argument("--jobs", type=int, default=14)
    report_p.add_argument(
        "--faults", action="store_true",
        help="inject failures/stragglers/outages into the reported run",
    )
    report_p.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="also write the run's Chrome trace-event JSON",
    )
    report_p.set_defaults(func=_cmd_report)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a figure's (configuration x replication) grid in parallel",
    )
    sweep_p.add_argument("figure", choices=list_figures())
    sweep_p.add_argument(
        "--profile", choices=(SCALED, PAPER), default=SCALED,
        help="scaled = laptop-sized (default); paper = original Table 3/4",
    )
    sweep_p.add_argument("--replications", type=int, default=3)
    sweep_p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = sequential reference run)",
    )
    sweep_p.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failed cell before it is marked failed",
    )
    sweep_p.add_argument("--seed", type=int, default=0, help="root seed")
    sweep_p.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write per-cell files and merged sweep.json/sweep.csv here",
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help="reuse finished cell files already present in --out-dir",
    )
    sweep_p.add_argument(
        "--capture", action="store_true",
        help="have each worker write its cell's Chrome trace (needs --out-dir)",
    )
    sweep_p.add_argument(
        "--telemetry", action="store_true",
        help="sample live telemetry per cell and merge the fleet rollup "
        "into sweep.series.jsonl (needs --out-dir)",
    )
    sweep_p.add_argument(
        "--report", action="store_true",
        help="render an HTML sweep report into --out-dir",
    )
    sweep_p.add_argument(
        "--wall-clock", action="store_true",
        help="measure real scheduling overhead instead of the pinned "
        "deterministic clock (merged output no longer byte-stable)",
    )
    sweep_p.add_argument("--quiet", action="store_true")
    sweep_p.set_defaults(func=_cmd_sweep)

    from repro.bench import add_bench_arguments

    bench_p = sub.add_parser(
        "bench",
        help="run the pinned benchmark suite against the committed baseline",
    )
    add_bench_arguments(bench_p)
    bench_p.set_defaults(func=_cmd_bench)

    ckpt_p = sub.add_parser(
        "checkpoint",
        help="run a seeded scenario with crash-safe checkpoints / restore one",
    )
    ckpt_p.add_argument("--seed", type=int, default=0)
    ckpt_p.add_argument("--replication", type=int, default=0)
    ckpt_p.add_argument(
        "--every-events", type=int, default=20,
        help="checkpoint cadence in dispatched simulator events",
    )
    ckpt_p.add_argument(
        "--out-dir", default="checkpoints", metavar="DIR",
        help="directory for ckpt-*.json snapshot files",
    )
    ckpt_p.add_argument(
        "--keep", type=int, default=None,
        help="retain only the newest N snapshots on disk",
    )
    ckpt_p.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="stop the run dead after its Nth checkpoint (crash drill)",
    )
    ckpt_p.add_argument(
        "--restore", default=None, metavar="SNAPSHOT",
        help="restore from a snapshot file and run to completion",
    )
    ckpt_p.add_argument(
        "--no-faults", action="store_true",
        help="disable the scenario's fault injection",
    )
    ckpt_p.set_defaults(func=_cmd_checkpoint)

    chaos_p = sub.add_parser(
        "chaos",
        help="run the resilience chaos scenarios (nonzero exit on violation)",
    )
    chaos_p.add_argument(
        "--scenario",
        choices=("all", "kill-restore", "overload", "worker-death"),
        default="all",
    )
    chaos_p.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="keep scenario artifacts here (default: temp dir, discarded)",
    )
    chaos_p.set_defaults(func=_cmd_chaos)

    telemetry_p = sub.add_parser(
        "telemetry",
        help="run a seeded scenario with live telemetry + SLO alerting",
    )
    telemetry_p.add_argument(
        "--scenario", choices=("overload", "steady"), default="overload",
        help="overload = 10x arrival burst through the degradation ladder "
        "(deterministically fires the degraded-solves SLO); steady = the "
        "same workload at its normal rate",
    )
    telemetry_p.add_argument("--seed", type=int, default=0)
    telemetry_p.add_argument(
        "--interval", type=float, default=5.0,
        help="sampling cadence in seconds of simulated time",
    )
    telemetry_p.add_argument(
        "--out-dir", default="telemetry", metavar="DIR",
        help="directory for telemetry.prom, series.jsonl and alerts.jsonl",
    )
    telemetry_p.set_defaults(func=_cmd_telemetry)

    serve_p = sub.add_parser(
        "serve",
        help="run the admission-control HTTP service (stdlib asyncio)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8351,
        help="listening port (0 = pick a free one, printed at startup)",
    )
    serve_p.add_argument(
        "--resources", type=int, default=4,
        help="uniform cluster size (2 map + 2 reduce slots each)",
    )
    serve_p.add_argument(
        "--max-batch-size", type=int, default=8,
        help="arrivals coalesced into one planning pass",
    )
    serve_p.add_argument(
        "--max-hold", type=float, default=0.05, metavar="SECONDS",
        help="longest a submission is held before its batch is planned",
    )
    serve_p.add_argument(
        "--max-pending", type=int, default=256,
        help="queue ceiling; submissions above it are shed",
    )
    serve_p.add_argument(
        "--overload-depth", type=int, default=32,
        help="queue depth at which quotes start at the cp_limited rung",
    )
    serve_p.add_argument(
        "--series-out", default=None, metavar="PATH",
        help="write a wall-clock telemetry series JSONL on shutdown",
    )
    serve_p.add_argument(
        "--series-interval", type=float, default=1.0,
        help="wall-clock sampling cadence in seconds",
    )
    serve_p.set_defaults(func=_cmd_serve)

    loadtest_p = sub.add_parser(
        "loadtest",
        help="drive the admission service with a seeded request stream",
    )
    loadtest_p.add_argument(
        "--url", default=None, metavar="URL",
        help="target a live endpoint (default: deterministic in-process run)",
    )
    loadtest_p.add_argument("--requests", type=int, default=200)
    loadtest_p.add_argument("--seed", type=int, default=0)
    loadtest_p.add_argument(
        "--arrival-rate", type=float, default=0.5,
        help="mean arrivals per service-time second",
    )
    loadtest_p.add_argument(
        "--time-scale", type=float, default=0.02,
        help="wall seconds per service second in --url mode "
        "(compresses the stream)",
    )
    loadtest_p.add_argument(
        "--max-batch-size", type=int, default=8,
        help="in-process mode: arrivals coalesced per planning pass",
    )
    loadtest_p.add_argument(
        "--max-hold", type=float, default=0.05, metavar="SECONDS",
        help="in-process mode: longest hold before a batch is planned",
    )
    loadtest_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable load report here",
    )
    loadtest_p.add_argument(
        "--quotes", action="store_true",
        help="include every individual quote in the --json report",
    )
    loadtest_p.set_defaults(func=_cmd_loadtest)

    diff_p = sub.add_parser(
        "diff",
        help="diff two captured runs or sweeps (exit 0 identical, "
        "1 divergent, 2 error)",
    )
    diff_p.add_argument(
        "a", nargs="?", default=None,
        help="run directory (or sweep.json) A",
    )
    diff_p.add_argument(
        "b", nargs="?", default=None,
        help="run directory (or sweep.json) B",
    )
    diff_p.add_argument(
        "--capture", default=None, metavar="DIR",
        help="instead of diffing, capture a diffable run directory here",
    )
    diff_p.add_argument(
        "--seed", type=int, default=3,
        help="scenario seed for --capture (default: the canonical drill)",
    )
    diff_p.add_argument(
        "--fail-limit", type=int, default=None,
        help="solver tree-search fail limit for --capture (the canonical "
        "perturbation knob; default 200)",
    )
    diff_p.add_argument(
        "--label", default=None,
        help="label stored in the captured run directory",
    )
    diff_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable repro-diff/1 document here",
    )
    diff_p.add_argument(
        "--html", default=None, metavar="PATH",
        help="write the self-contained HTML diff report here (run diffs)",
    )
    diff_p.add_argument("--quiet", action="store_true")
    diff_p.set_defaults(func=_cmd_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
