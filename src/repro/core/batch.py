"""Closed-system batch scheduling.

The paper's preliminary work ([12], referenced in Section I) studied a
*closed* system: a fixed batch of MapReduce jobs known up front, solved
once.  This facade provides that mode directly -- no simulation, no
arrivals -- and is also the natural API for "plan tomorrow's reservations
tonight" use-cases:

>>> result = schedule_batch(jobs, resources)
>>> result.schedule          # task -> (resource, slot, start)
>>> result.late_jobs         # which jobs miss their deadlines
>>> print(result.gantt())    # eyeball it
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.formulation import FormulationMode, build_model
from repro.core.gantt import render_gantt
from repro.core.matchmaking import (
    assign_slots_within_resources,
    decompose_combined_schedule,
)
from repro.core.schedule import Schedule, SchedulingError, validate_schedule
from repro.cp.solution import SearchStats, SolveStatus
from repro.cp.solver import CpSolver, SolverParams
from repro.workload.entities import Resource, Task


@dataclass
class BatchResult:
    """Outcome of one closed-system solve."""

    schedule: Schedule
    status: SolveStatus
    objective: int  # number of late jobs in the produced schedule
    late_job_ids: List[int]
    completion_times: Dict[int, int]
    makespan: int
    solve_seconds: float
    stats: SearchStats = field(default_factory=SearchStats)
    _resources: Sequence[Resource] = ()

    @property
    def late_jobs(self) -> int:
        return len(self.late_job_ids)

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the produced schedule."""
        return render_gantt(self.schedule, list(self._resources), width=width)


def schedule_batch(
    jobs: Sequence,
    resources: Sequence[Resource],
    mode: FormulationMode = FormulationMode.COMBINED,
    solver_params: Optional[SolverParams] = None,
    start_time: int = 0,
) -> BatchResult:
    """Map and schedule a fixed batch of jobs (MapReduce or workflows).

    Minimises the number of late jobs within the solver budget and returns
    the complete, validated assignment.  Raises
    :class:`~repro.core.schedule.SchedulingError` if no feasible schedule
    exists (only possible with malformed inputs -- an unconstrained batch
    can always be serialised).
    """
    if not jobs:
        raise SchedulingError("empty batch")
    t0 = time.perf_counter()
    formulation = build_model(
        jobs, resources, now=start_time, running=(), mode=mode
    )
    solver = CpSolver(solver_params or SolverParams(time_limit=5.0))
    result = solver.solve(formulation.model)
    if not result:
        raise SchedulingError(
            f"batch solve failed with status {result.status.value}"
        )
    solution = result.solution
    assert solution is not None

    if mode is FormulationMode.COMBINED:
        movable: List[Tuple[Task, int]] = [
            (formulation.task_of[iv], solution.start_of(iv))
            for tid, iv in formulation.interval_of.items()
        ]
        assignments = decompose_combined_schedule(movable, [], resources)
    else:
        movable_joint = []
        for tid, iv in formulation.interval_of.items():
            option = solution.chosen_option(iv)
            if option is None:
                raise SchedulingError(f"no resource choice for task {tid}")
            movable_joint.append(
                (
                    formulation.task_of[iv],
                    solution.start_of(iv),
                    formulation.resource_of_option[option],
                )
            )
        assignments = assign_slots_within_resources(movable_joint, [], resources)

    schedule = Schedule()
    for a in assignments:
        schedule.add(a)
    problems = validate_schedule(schedule, jobs, resources, now=start_time)
    if problems:
        raise SchedulingError(
            "batch schedule invalid:\n  " + "\n  ".join(problems)
        )

    completion: Dict[int, int] = {}
    late: List[int] = []
    for job in jobs:
        ct = schedule.job_completion(job)
        completion[job.id] = ct
        if ct > job.deadline:
            late.append(job.id)

    return BatchResult(
        schedule=schedule,
        status=result.status,
        objective=len(late),
        late_job_ids=sorted(late),
        completion_times=completion,
        makespan=max(completion.values()),
        solve_seconds=time.perf_counter() - t0,
        stats=result.stats,
        _resources=list(resources),
    )
