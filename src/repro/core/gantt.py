"""ASCII Gantt rendering of schedules.

Turns a :class:`~repro.core.schedule.Schedule` into a per-slot timeline --
handy for eyeballing what the CP solver decided, in examples, logs and bug
reports.  One row per (resource, slot kind, slot index); occupied cells show
a per-task glyph, a legend maps glyphs back to task ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import Schedule, SlotKind
from repro.workload.entities import Resource

#: Glyph cycle for tasks (digits/letters, restarted when exhausted).
_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_gantt(
    schedule: Schedule,
    resources: Sequence[Resource],
    width: int = 72,
    time_range: Optional[Tuple[int, int]] = None,
    legend: bool = True,
) -> str:
    """Render the schedule as fixed-width ASCII rows.

    ``width`` is the number of timeline characters; the time range (defaults
    to [min start, max end]) is divided evenly across it, so one character
    covers ``(t1 - t0) / width`` time units.  Overlaps within a slot render
    as ``#`` -- seeing one means the schedule is invalid.
    """
    assignments = list(schedule)
    if not assignments:
        return "(empty schedule)"
    if width < 8:
        raise ValueError("width must be at least 8 characters")

    if time_range is None:
        t0 = min(a.start for a in assignments)
        t1 = max(a.end for a in assignments)
    else:
        t0, t1 = time_range
    span = max(1, t1 - t0)

    # glyph per task, in first-start order for stable output
    glyph_of: Dict[str, str] = {}
    for a in sorted(assignments, key=lambda a: (a.start, a.task.id)):
        if a.task.id not in glyph_of:
            glyph_of[a.task.id] = _GLYPHS[len(glyph_of) % len(_GLYPHS)]

    def cell_range(start: int, end: int) -> Tuple[int, int]:
        lo = int((start - t0) * width / span)
        hi = int((end - t0) * width / span)
        lo = max(0, min(width - 1, lo))
        hi = max(lo + 1, min(width, hi))
        return lo, hi

    rows: List[str] = [f"time [{t0}, {t1}]  ({span / width:.2f} s/char)"]
    by_slot = {}
    for a in assignments:
        by_slot.setdefault(a.slot_key(), []).append(a)

    for res in resources:
        for kind, cap in (
            (SlotKind.MAP, res.map_capacity),
            (SlotKind.REDUCE, res.reduce_capacity),
        ):
            for slot in range(cap):
                label = f"r{res.id}.{kind.value[:3]}{slot}"
                cells = [" "] * width
                prev_end = None
                for a in sorted(
                    by_slot.get((res.id, kind, slot), []), key=lambda a: a.start
                ):
                    lo, hi = cell_range(a.start, a.end)
                    g = glyph_of[a.task.id]
                    # a genuine time overlap renders as '#'; two tasks merely
                    # sharing a character cell at coarse resolution do not
                    overlapping = prev_end is not None and a.start < prev_end
                    for i in range(lo, hi):
                        if cells[i] == " ":
                            cells[i] = g
                        elif overlapping:
                            cells[i] = "#"
                    prev_end = a.end if prev_end is None else max(prev_end, a.end)
                rows.append(f"{label:>10} |{''.join(cells)}|")

    if legend:
        rows.append("legend: " + "  ".join(
            f"{g}={tid}" for tid, g in glyph_of.items()
        ))
    return "\n".join(rows)


def render_executor_plan(executor, width: int = 72) -> str:
    """Render a :class:`~repro.core.executor.ScheduledExecutor`'s current
    plan (started + pending assignments)."""
    schedule = Schedule()
    for a in executor.planned_unstarted():
        schedule.add(a)
    for a in executor.snapshot_running():
        schedule.add(a)
    return render_gantt(schedule, executor.resources, width=width)
