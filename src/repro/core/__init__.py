"""MRCP-RM: the MapReduce Constraint Programming based Resource Manager.

The paper's primary contribution (Sections III-V):

* :mod:`repro.core.formulation` -- builds the Table 1 CP model from the
  current system state (eligible jobs + frozen running tasks), in either
  *combined* mode (one aggregated resource, Section V.D) or *joint* mode
  (per-resource alternatives, the plain Table 1 formulation).
* :mod:`repro.core.matchmaking` -- the Section V.D decomposition: a combined
  single-resource schedule is mapped onto unit-capacity slots with the
  best-gap heuristic, then regrouped onto the physical resources.
* :mod:`repro.core.mrcp_rm` -- the Table 2 incremental algorithm driving the
  whole loop inside the discrete event simulation, including the Section
  V.E earliest-start-time deferral optimisation.
* :mod:`repro.core.executor` -- schedule-driven cluster execution with slot
  occupancy invariants.
* :mod:`repro.core.schedule` -- assignment/schedule types and an independent
  validator.
"""

from repro.core.schedule import (
    Schedule,
    SchedulingError,
    SlotKind,
    TaskAssignment,
    validate_schedule,
)
from repro.core.formulation import (
    FormulationMode,
    FormulationResult,
    build_model,
)
from repro.core.matchmaking import (
    UnitSlot,
    decompose_combined_schedule,
    regroup_unit_resources,
)
from repro.core.invocation import (
    InvocationOutcome,
    extract_assignments,
    solve_formulation,
    solve_invocation,
)
from repro.core.batch import BatchResult, schedule_batch
from repro.core.executor import ScheduledExecutor
from repro.core.gantt import render_executor_plan, render_gantt
from repro.core.mrcp_rm import MrcpRm, MrcpRmConfig, PlanRecord

__all__ = [
    "TaskAssignment",
    "Schedule",
    "SlotKind",
    "SchedulingError",
    "validate_schedule",
    "FormulationMode",
    "FormulationResult",
    "build_model",
    "UnitSlot",
    "decompose_combined_schedule",
    "regroup_unit_resources",
    "ScheduledExecutor",
    "MrcpRm",
    "MrcpRmConfig",
    "PlanRecord",
    "InvocationOutcome",
    "extract_assignments",
    "solve_formulation",
    "solve_invocation",
    "render_gantt",
    "render_executor_plan",
    "schedule_batch",
    "BatchResult",
]
