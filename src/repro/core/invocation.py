"""The scheduler invocation API: one solve, independent of the caller.

:class:`~repro.core.mrcp_rm.MrcpRm` runs Table 2 inside the discrete event
simulation; the online admission front-end (:mod:`repro.service`) runs the
same solve against wall-clock arrivals.  Both need the identical core --
build the Table 1 model, solve it (plain solver with EDF fallback, or
through the resilience degradation ladder), and map the solution back onto
physical resources -- so that core lives here, caller-agnostic:

* :func:`solve_formulation` -- solve an already-built formulation and
  report *everything* the caller's metric/observability envelope needs
  (CP result, ladder rung, attempts, fallback flag).  It never raises on
  "no solution": callers decide whether that is a crash (the simulator
  loop) or a rejection (admission control).
* :func:`extract_assignments` -- decompose a solution into
  :class:`~repro.core.schedule.TaskAssignment` lists for either
  formulation mode (Section V.D combined decomposition or joint slots).
* :func:`solve_invocation` -- the one-stop build + solve + extract used by
  the service path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.formulation import FormulationMode, FormulationResult, build_model
from repro.core.matchmaking import (
    assign_slots_within_resources,
    decompose_combined_schedule,
)
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.cp.heuristics import list_schedule
from repro.cp.solution import Solution, SolveResult
from repro.cp.solver import CpSolver
from repro.workload.entities import Job, Resource, Task


@dataclass
class InvocationOutcome:
    """What one scheduler invocation's solve produced.

    ``solution is None`` means every strategy failed; ``describe_failure``
    renders the caller-facing error text (the historical
    :class:`SchedulingError` messages, verbatim).
    """

    #: The schedule, or None when every strategy came back empty.
    solution: Optional[Solution]
    #: Ladder rung that produced the solution ("cp_full" on the plain
    #: path, "none" when nothing did).
    rung: str = "cp_full"
    #: The last CP solve result, when a CP strategy actually ran.
    result: Optional[SolveResult] = None
    #: Whether the plain path degraded to the EDF list schedule.
    fallback: bool = False
    #: Ladder rungs attempted, in order, with success flags (empty on the
    #: plain path).
    attempts: List[Tuple[str, bool]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.solution is not None

    def describe_failure(self, now: int, jobs: Sequence[Job], running_count: int) -> str:
        """The error text for a failed invocation (caller raises it)."""
        if self.attempts:
            tried = ", ".join(r for r, _ in self.attempts) or "none"
            return (
                f"degradation ladder exhausted at t={now} ({len(jobs)} jobs; "
                f"rungs tried: {tried})"
            )
        status = self.result.status.value if self.result is not None else "none"
        return (
            f"CP solver returned {status} at t={now} "
            f"({len(jobs)} jobs, {running_count} running tasks) and no "
            f"heuristic fallback schedule exists"
        )


def solve_formulation(
    formulation: FormulationResult,
    *,
    solver: CpSolver,
    ladder=None,
    hint: Optional[Dict] = None,
    fallback_to_heuristic: bool = True,
    start_rung: str = "cp_full",
) -> InvocationOutcome:
    """Solve a built formulation through the configured strategy stack.

    With ``ladder`` set the solve walks the degradation rungs (the ladder
    owns ``solver`` as its cp_full rung) beginning at ``start_rung`` --
    the admission service starts at ``cp_limited`` when overloaded;
    otherwise it is one budgeted CP solve with an optional EDF
    list-schedule fallback (``start_rung`` is ignored without a ladder).
    """
    if ladder is not None:
        outcome = ladder.solve(formulation.model, hint=hint, start_rung=start_rung)
        return InvocationOutcome(
            solution=outcome.solution,
            rung=outcome.rung,
            result=outcome.result,
            fallback=outcome.rung == "edf",
            attempts=list(outcome.attempts),
        )
    result = solver.solve(formulation.model, hint=hint)
    if result:
        return InvocationOutcome(solution=result.solution, result=result)
    if fallback_to_heuristic:
        # Graceful degradation: the budgeted CP solve came back empty
        # (e.g. a forced timeout).  The EDF list schedule satisfies every
        # hard constraint -- deadline misses just show up in N -- so the
        # run continues instead of crashing.
        solution = list_schedule(formulation.model, "edf")
        if solution is not None:
            return InvocationOutcome(
                solution=solution, result=result, fallback=True
            )
    return InvocationOutcome(solution=None, result=result)


def extract_assignments(
    formulation: FormulationResult,
    solution: Solution,
    running: Sequence[TaskAssignment],
    resources: Sequence[Resource],
) -> List[TaskAssignment]:
    """Map a solution onto physical resources (both formulation modes).

    Returns the complete assignment list: frozen ``running`` entries pass
    through unchanged, movable tasks get fresh slot placements.
    """
    frozen_ids = {a.task.id for a in running}
    if formulation.mode is FormulationMode.COMBINED:
        movable: List[Tuple[Task, int]] = []
        for task_id, iv in formulation.interval_of.items():
            if task_id in frozen_ids:
                continue
            movable.append((formulation.task_of[iv], solution.start_of(iv)))
        return decompose_combined_schedule(movable, running, resources)

    movable_joint: List[Tuple[Task, int, int]] = []
    for task_id, iv in formulation.interval_of.items():
        if task_id in frozen_ids:
            continue
        option = solution.chosen_option(iv)
        if option is None:
            raise SchedulingError(
                f"joint solution lacks a resource choice for {task_id}"
            )
        movable_joint.append(
            (
                formulation.task_of[iv],
                solution.start_of(iv),
                formulation.resource_of_option[option],
            )
        )
    return assign_slots_within_resources(movable_joint, running, resources)


def solve_invocation(
    jobs: Sequence[Job],
    resources: Sequence[Resource],
    now: int,
    *,
    running: Sequence[TaskAssignment] = (),
    mode: FormulationMode = FormulationMode.COMBINED,
    solver: CpSolver,
    ladder=None,
    hint_starts: Optional[Dict[str, int]] = None,
    fallback_to_heuristic: bool = True,
    start_rung: str = "cp_full",
) -> Tuple[InvocationOutcome, FormulationResult]:
    """Build + solve one invocation (the service admission entry point).

    ``hint_starts`` maps task ids (not interval variables -- those are
    per-model objects) to previous-plan start times; entries for tasks
    absent from the fresh model or starting in the past are dropped.
    """
    formulation = build_model(
        jobs, resources, now=now, running=running, mode=mode
    )
    hint = None
    if hint_starts:
        hint = {}
        for task_id, start in hint_starts.items():
            iv = formulation.interval_of.get(task_id)
            if iv is not None and start >= now:
                hint[iv] = start
        if not hint:
            hint = None
    outcome = solve_formulation(
        formulation,
        solver=solver,
        ladder=ladder,
        hint=hint,
        fallback_to_heuristic=fallback_to_heuristic,
        start_rung=start_rung,
    )
    return outcome, formulation
