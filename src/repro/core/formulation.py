"""Builds the Table 1 CP model from the current system state.

Two formulation modes (Section V.D):

* ``COMBINED`` -- the performance optimisation MRCP-RM uses by default: the
  resource set is replaced by a single combined resource holding the total
  map and reduce slot counts; the CP solver only decides start times, and
  matchmaking happens afterwards (:mod:`repro.core.matchmaking`).  The paper
  reports ~4x faster solves in this mode (15 s vs 60 s on their anecdote).
* ``JOINT`` -- the plain Table 1 formulation: one optional interval per
  (task, resource) pair tied together by ``alternative`` constraints, and a
  per-resource ``cumulative``.  Exact matchmaking, much larger model.

Frozen tasks -- those that have started but not completed (Table 2, line
11) -- enter the model as fixed intervals: they consume capacity in the
profiles but cannot move, and constraint (2) (earliest start times) is not
applied to them (``isPrevScheduled`` handling, Section V.B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cp.model import CpModel
from repro.cp.variables import BoolVar, IntervalVar
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.workload.entities import Job, Resource, Task, TaskKind
from repro.workload.workflows import WorkflowJob


class FormulationMode(enum.Enum):
    """Which Table 1 variant to build (Section V.D)."""
    COMBINED = "combined"  # Section V.D separation of matchmaking/scheduling
    JOINT = "joint"  # plain Table 1 with per-resource alternatives


@dataclass
class FormulationResult:
    """The CP model plus the mappings needed to read a solution back."""

    model: CpModel
    mode: FormulationMode
    #: master interval for every task in the model (movable and frozen)
    interval_of: Dict[str, IntervalVar] = field(default_factory=dict)
    task_of: Dict[IntervalVar, Task] = field(default_factory=dict)
    #: lateness indicator per job id
    indicator_of: Dict[int, BoolVar] = field(default_factory=dict)
    #: frozen tasks carried over (task id -> original assignment)
    frozen: Dict[str, TaskAssignment] = field(default_factory=dict)
    #: JOINT mode only: option interval -> resource id
    resource_of_option: Dict[IntervalVar, int] = field(default_factory=dict)
    horizon: int = 0


def _compute_horizon(
    jobs: Sequence[Job], running: Sequence[TaskAssignment], now: int
) -> int:
    """A safe scheduling horizon: everything fits sequentially below it."""
    base = now
    total = 1
    for job in jobs:
        base = max(base, job.earliest_start)
        for t in job.pending_tasks:
            total += t.duration
        # workflow edges may add data-transfer gaps on the critical path
        delays = getattr(job, "edge_delays", None)
        if delays:
            total += sum(delays.values())
    for a in running:
        base = max(base, a.end)
    return base + total + 1


def build_model(
    jobs: Sequence[Job],
    resources: Sequence[Resource],
    now: int,
    running: Sequence[TaskAssignment] = (),
    mode: FormulationMode = FormulationMode.COMBINED,
) -> FormulationResult:
    """Build the CP model for one MRCP-RM invocation.

    ``jobs`` are the eligible jobs with at least one unfinished task; their
    ``earliest_start`` values must already be clamped to ``now`` (Table 2,
    lines 1-4).  ``running`` lists the frozen (started, uncompleted) task
    assignments.
    """
    if not resources:
        raise SchedulingError("no resources")
    running_by_id = {a.task.id: a for a in running}
    horizon = _compute_horizon(jobs, list(running), now)
    model = CpModel(horizon=horizon)
    result = FormulationResult(
        model=model, mode=mode, frozen=dict(running_by_id), horizon=horizon
    )

    if mode is FormulationMode.COMBINED:
        _build_combined(model, result, jobs, resources, now, running_by_id)
    else:
        _build_joint(model, result, jobs, resources, now, running_by_id)

    indicators = [result.indicator_of[j.id] for j in jobs if j.id in result.indicator_of]
    if indicators:
        model.minimize_sum(indicators)
    return result


def _stage_structure(
    job,
) -> Tuple[List[List[Task]], List[List[int]], List[List[int]], List[int]]:
    """Per-job stage decomposition: (stage task lists in topological order,
    predecessor indices per stage, per-predecessor transfer delays,
    terminal stage indices).

    A MapReduce :class:`Job` is the two-stage chain maps -> reduces; a
    :class:`WorkflowJob` supplies its own DAG (the Section VII
    generalisation), optionally with communication delays on edges.
    """
    if isinstance(job, WorkflowJob):
        stages, preds, delays = job.topological_structure()
        terminal_names = set(job.terminal_stage_names())
        terminal = [
            i for i, s in enumerate(stages) if s.name in terminal_names
        ]
        return [list(s.tasks) for s in stages], preds, delays, terminal
    stage_tasks: List[List[Task]] = [list(job.map_tasks)]
    preds: List[List[int]] = [[]]
    delays: List[List[int]] = [[]]
    if job.reduce_tasks:
        stage_tasks.append(list(job.reduce_tasks))
        preds.append([0])
        delays.append([0])
    return stage_tasks, preds, delays, [len(stage_tasks) - 1]


def _make_task_intervals(
    model: CpModel,
    result: FormulationResult,
    job,
    now: int,
    running_by_id: Dict[str, TaskAssignment],
) -> Tuple[
    List[List[IntervalVar]], List[List[int]], List[List[int]], List[int]
]:
    """Create master intervals for a job's unfinished tasks, stage by stage.

    Completed tasks are omitted (Table 2, lines 13-16); running tasks are
    frozen at their dispatched start.  Returns the staged interval lists
    plus the predecessor/terminal structure from :func:`_stage_structure`.
    """
    release = max(job.earliest_start, now)
    stage_tasks, preds, delays, terminal = _stage_structure(job)
    stage_ivs: List[List[IntervalVar]] = []
    for tasks in stage_tasks:
        ivs: List[IntervalVar] = []
        for task in tasks:
            if task.is_completed:
                continue
            frozen = running_by_id.get(task.id)
            if frozen is not None:
                iv = model.fixed_interval(
                    start=frozen.start,
                    length=task.duration,
                    name=task.id,
                    demand=task.demand,
                    payload=task,
                )
            else:
                iv = model.interval_var(
                    length=task.duration,
                    est=release,
                    name=task.id,
                    demand=task.demand,
                    payload=task,
                )
            result.interval_of[task.id] = iv
            result.task_of[iv] = task
            ivs.append(iv)
        stage_ivs.append(ivs)
    return stage_ivs, preds, delays, terminal


def _add_job_structure(
    model: CpModel,
    result: FormulationResult,
    job,
    stage_ivs: List[List[IntervalVar]],
    preds: List[List[int]],
    delays: List[List[int]],
    terminal: List[int],
    now: int,
) -> None:
    """Barriers, lateness indicator, and LNS/heuristic grouping for one job."""
    for i, ps in enumerate(preds):
        for p, d in zip(ps, delays[i]):
            model.add_barrier(
                stage_ivs[p],
                stage_ivs[i],
                name=f"barrier(j{job.id}:{p}->{i})",
                delay=d,
            )
    # The job completes with its terminal-stage tasks; if those have all
    # completed already, any remaining tasks define completion (their
    # lateness verdict is then already sealed by the executed prefix).
    last_stage = [iv for i in terminal for iv in stage_ivs[i]]
    if not last_stage:
        last_stage = [iv for ivs in stage_ivs for iv in ivs]
    if last_stage:
        indicator = model.add_deadline_indicator(
            last_stage, deadline=job.deadline, name=f"late(j{job.id})"
        )
        result.indicator_of[job.id] = indicator
    model.add_staged_group(
        name=f"j{job.id}",
        stages=stage_ivs,
        stage_preds=preds,
        release=max(job.earliest_start, now),
        deadline=job.deadline,
        indicator=result.indicator_of.get(job.id),
        stage_pred_delays=delays,
    )


def _orphan_frozen_intervals(
    model: CpModel,
    result: FormulationResult,
    running_by_id: Dict[str, TaskAssignment],
) -> Tuple[List[IntervalVar], List[IntervalVar]]:
    """Fixed intervals for frozen tasks whose jobs are not being re-planned.

    In the schedule-once ablation (and any partial re-plan) tasks of other
    jobs still occupy capacity; they enter the model as immovable intervals
    so the cumulative constraints see them.  Returns (maps, reduces).
    """
    maps: List[IntervalVar] = []
    reduces: List[IntervalVar] = []
    for task_id, assignment in running_by_id.items():
        if task_id in result.interval_of:
            continue  # covered by a job under (re-)planning
        task = assignment.task
        iv = model.fixed_interval(
            start=assignment.start,
            length=task.duration,
            name=task.id,
            demand=task.demand,
            payload=task,
        )
        result.interval_of[task.id] = iv
        result.task_of[iv] = task
        (maps if task.kind is TaskKind.MAP else reduces).append(iv)
    return maps, reduces


def _build_combined(
    model: CpModel,
    result: FormulationResult,
    jobs: Sequence[Job],
    resources: Sequence[Resource],
    now: int,
    running_by_id: Dict[str, TaskAssignment],
) -> None:
    total_map = sum(r.map_capacity for r in resources)
    total_reduce = sum(r.reduce_capacity for r in resources)
    all_maps: List[IntervalVar] = []
    all_reduces: List[IntervalVar] = []
    for job in jobs:
        stage_ivs, preds, delays, terminal = _make_task_intervals(
            model, result, job, now, running_by_id
        )
        if not any(stage_ivs):
            continue
        _add_job_structure(
            model, result, job, stage_ivs, preds, delays, terminal, now
        )
        for ivs in stage_ivs:
            for iv in ivs:
                task = result.task_of[iv]
                (all_maps if task.kind is TaskKind.MAP else all_reduces).append(iv)
    orphan_maps, orphan_reduces = _orphan_frozen_intervals(
        model, result, running_by_id
    )
    all_maps.extend(orphan_maps)
    all_reduces.extend(orphan_reduces)
    if all_maps:
        if total_map <= 0:
            raise SchedulingError("map tasks present but no map slots")
        model.add_cumulative(all_maps, capacity=total_map, name="combined-map")
    if all_reduces:
        if total_reduce <= 0:
            raise SchedulingError("reduce tasks present but no reduce slots")
        model.add_cumulative(
            all_reduces, capacity=total_reduce, name="combined-reduce"
        )


def _build_joint(
    model: CpModel,
    result: FormulationResult,
    jobs: Sequence[Job],
    resources: Sequence[Resource],
    now: int,
    running_by_id: Dict[str, TaskAssignment],
) -> None:
    # Per-resource option pools, filled as alternatives are created.
    map_options: Dict[int, List[IntervalVar]] = {r.id: [] for r in resources}
    reduce_options: Dict[int, List[IntervalVar]] = {r.id: [] for r in resources}

    for job in jobs:
        stage_ivs, preds, delays, terminal = _make_task_intervals(
            model, result, job, now, running_by_id
        )
        if not any(stage_ivs):
            continue
        _add_job_structure(
            model, result, job, stage_ivs, preds, delays, terminal, now
        )

        for iv in [iv for ivs in stage_ivs for iv in ivs]:
            task = result.task_of[iv]
            pool = map_options if task.kind is TaskKind.MAP else reduce_options
            frozen = running_by_id.get(task.id)
            options: List[IntervalVar] = []
            if frozen is not None:
                # A running task stays on its resource: a single option.
                candidates: List[Resource] = [
                    r for r in resources if r.id == frozen.resource_id
                ]
                if not candidates:
                    raise SchedulingError(
                        f"running task {task.id} on unknown resource "
                        f"{frozen.resource_id}"
                    )
            else:
                candidates = [
                    r
                    for r in resources
                    if (
                        r.map_capacity
                        if task.kind is TaskKind.MAP
                        else r.reduce_capacity
                    )
                    > 0
                ]
                if not candidates:
                    raise SchedulingError(
                        f"no resource has {task.kind.value} slots for {task.id}"
                    )
            for r in candidates:
                opt = model.interval_var(
                    length=iv.length,
                    est=iv.est,
                    lst=iv.lst,
                    name=f"{task.id}@r{r.id}",
                    optional=True,
                    demand=task.demand,
                    payload=task,
                )
                result.resource_of_option[opt] = r.id
                options.append(opt)
                pool[r.id].append(opt)
            model.add_alternative(iv, options, name=f"alt({task.id})")

    # Frozen tasks of jobs outside the re-planned set: immovable intervals
    # placed directly into their resource's capacity pool.
    for task_id, assignment in running_by_id.items():
        if task_id in result.interval_of:
            continue
        task = assignment.task
        iv = model.fixed_interval(
            start=assignment.start,
            length=task.duration,
            name=task.id,
            demand=task.demand,
            payload=task,
        )
        result.interval_of[task.id] = iv
        result.task_of[iv] = task
        pool = map_options if task.kind is TaskKind.MAP else reduce_options
        if assignment.resource_id not in pool:
            raise SchedulingError(
                f"frozen task {task.id} on unknown resource "
                f"{assignment.resource_id}"
            )
        pool[assignment.resource_id].append(iv)

    for r in resources:
        if map_options[r.id]:
            model.add_cumulative(
                map_options[r.id], capacity=r.map_capacity, name=f"map(r{r.id})"
            )
        if reduce_options[r.id]:
            model.add_cumulative(
                reduce_options[r.id],
                capacity=r.reduce_capacity,
                name=f"reduce(r{r.id})",
            )
