"""The MRCP-RM resource manager (Table 2 + Sections V.D/V.E).

Lifecycle inside the discrete event simulation:

1. Users submit jobs (:meth:`MrcpRm.submit`); arrivals are recorded and --
   with the Section V.E optimisation -- jobs whose earliest start time lies
   beyond the lookahead window are parked until close to their start.
2. On every scheduling trigger the Table 2 algorithm runs: earliest start
   times are clamped to "now", completed tasks are dropped, started tasks
   are frozen, a fresh CP model over all remaining tasks is built and
   solved, and the resulting schedule (decomposed onto physical resources in
   combined mode) is installed on the executor.
3. The wall-clock cost of step 2 is recorded as the overhead metric ``O``.

Configuration covers every ablation the paper motivates: formulation mode
(combined vs joint), EST deferral on/off, re-planning vs schedule-once, job
ordering strategy, and the CP solver budget.

Fault recovery (:mod:`repro.faults`) rides on the same loop: a failed or
killed task simply re-enters the unstarted set and the next trigger
re-plans it; a resource outage shrinks the pool :func:`build_model` sees
until its recovery event re-grows it; and a CP solve that comes back empty
degrades to the EDF warm-start list schedule instead of crashing the run.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.executor import ScheduledExecutor
from repro.core.formulation import FormulationMode
from repro.core.invocation import (
    InvocationOutcome,
    extract_assignments,
    solve_invocation,
)
from repro.core.schedule import (
    Schedule,
    SchedulingError,
    TaskAssignment,
    validate_schedule,
)
from repro.cp.solver import CpSolver, SolverParams
from repro.faults import FaultInjector, FaultModel
from repro.metrics.collector import MetricsCollector
from repro.obs.logs import get_logger, kv
from repro.obs.trace import NULL_TRACER, Tracer
from repro.resilience.breaker import DegradationLadder, LadderConfig
from repro.sim.kernel import PRIORITY_ACQUIRE, Simulator
from repro.workload.entities import Job, Resource

_LOG = get_logger("core.mrcp_rm")


def _default_solver_params() -> SolverParams:
    """A per-invocation budget suited to open-system operation.

    The warm-start fast path (0 late jobs proves optimality) handles the
    vast majority of invocations; the budget below caps the hard ones.
    """
    return SolverParams(time_limit=0.5, tree_fail_limit=500)


@dataclass(frozen=True)
class PlanRecord:
    """One scheduler invocation's footprint in the plan history.

    Recorded when :attr:`MrcpRmConfig.record_plan_history` is on; the
    sequence of records is the input to lateness forensics
    (:mod:`repro.obs.forensics`): it carries the wall-clock overhead of
    each invocation stamped with its simulated time (so per-job solver
    delay can be windowed) and the earliest planned start per job (so plan
    slippage across re-plans is visible).
    """

    #: Planning instant (``ceil(sim.now)`` -- the Table 2 "now").
    t: int
    #: Invocation outcome: ``"installed"`` / ``"no_jobs"`` / ``"stalled"``.
    outcome: str
    #: Wall-clock seconds this invocation took (one overhead-O sample).
    overhead: float
    #: What fired the trigger: ``"submit"`` / ``"release"`` / ``"recovery"``.
    trigger: str
    #: Job id -> earliest start over its not-yet-completed plan entries
    #: (started tasks keep their real start; unstarted their planned one).
    planned_starts: Dict[int, int]
    #: Degradation-ladder rung that produced the plan (``"cp_full"`` when
    #: no ladder is configured or the invocation installed nothing).
    rung: str = "cp_full"


@dataclass
class MrcpRmConfig:
    """Behavioural knobs of the resource manager."""

    #: Combined (Section V.D fast path) or joint (plain Table 1) model.
    mode: FormulationMode = FormulationMode.COMBINED
    #: Job ordering the warm-start heuristics try first ("edf", "laxity",
    #: "input" = job-id order); the paper reports EDF marginally best.
    ordering: str = "edf"
    #: Section V.E: defer jobs whose earliest start time is in the future.
    est_deferral: bool = True
    #: Seconds before a deferred job's earliest start at which it becomes
    #: eligible for scheduling ("close to arriving").
    lookahead: int = 0
    #: Re-plan all unstarted tasks on each trigger (Table 2).  False gives
    #: the schedule-once ablation: each job is scheduled on arrival and
    #: never revisited.
    replan: bool = True
    #: Seed each solve with the previous plan as a solution hint -- the
    #: "incrementally builds on the previous solution (if one is available)"
    #: behaviour of Fig. 1.  Improves schedule stability and lets the warm
    #: start skip work when the new arrival fits around the old plan.
    use_hints: bool = True
    #: CP solver budget per invocation.
    solver: SolverParams = field(default_factory=_default_solver_params)
    #: Re-validate every installed schedule against the declarative checker
    #: (cheap at experiment scale; disable for large benchmark sweeps).
    validate: bool = True
    #: Fault scenario to inject (None / inert model = the happy path).
    faults: Optional[FaultModel] = None
    #: Recovery policy: how many failed attempts of one task are retried
    #: before its job is declared failed (outage kills count as attempts).
    max_task_retries: int = 3
    #: Seconds to wait after a task failure before the recovery re-plan
    #: (0 = re-plan at the failure instant).
    retry_backoff: float = 0.0
    #: Graceful degradation: when the CP solver returns no solution (budget
    #: exhausted or internal failure), fall back to the EDF warm-start list
    #: schedule instead of raising ``SchedulingError``.  Recorded in the
    #: ``fallback_solves`` metric; disable to restore the strict Table 2
    #: line 24 "throw exception" behaviour.
    fallback_to_heuristic: bool = True
    #: Keep a :class:`PlanRecord` per invocation in
    #: :attr:`MrcpRm.plan_history` (O(active jobs) per trigger; off by
    #: default so large sweeps pay nothing).  Forensics and the run report
    #: consume the history.
    record_plan_history: bool = False
    #: Circuit-breaker degradation ladder around the CP solver (None = the
    #: plain solve + EDF fallback path above).  When set, every solve walks
    #: cp_full -> cp_limited -> edf -> greedy under per-rung breakers; see
    #: :mod:`repro.resilience.breaker`.
    resilience: Optional[LadderConfig] = None


class MrcpRm:
    """MapReduce Constraint Programming based Resource Manager."""

    def __init__(
        self,
        sim: Simulator,
        resources: Sequence[Resource],
        config: Optional[MrcpRmConfig] = None,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.resources = list(resources)
        self.config = config or MrcpRmConfig()
        self.metrics = metrics
        #: Observability front-end (the shared disabled tracer by default).
        #: Overhead O is measured through ``tracer.wall_clock`` so tests can
        #: inject a deterministic clock with or without tracing.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = self.tracer.wall_clock
        registry = self.tracer.registry
        self._m_invocations = registry.counter("scheduler.invocations")
        self._m_overhead = registry.histogram("scheduler.overhead_seconds")
        self._m_replans = registry.counter("scheduler.replans_on_failure")
        self._m_fallbacks = registry.counter("scheduler.fallback_solves")
        faults = self.config.faults
        self.fault_injector: Optional[FaultInjector] = None
        if faults is not None and faults.enabled:
            if not self.config.replan:
                raise ValueError(
                    "fault injection requires replan=True: recovery re-plans "
                    "failed tasks as unstarted work"
                )
            self.fault_injector = FaultInjector(
                faults, self.resources, registry=registry
            )
        self.executor = ScheduledExecutor(
            sim,
            self.resources,
            metrics=metrics,
            on_job_complete=self._job_done,
            fault_injector=self.fault_injector,
            on_task_failed=(
                self._task_failed if self.fault_injector is not None else None
            ),
            on_task_perturbed=(
                self._task_perturbed
                if self.fault_injector is not None
                else None
            ),
            tracer=self.tracer,
        )
        self._solver = CpSolver(self._solver_params(), tracer=self.tracer)
        self.ladder: Optional[DegradationLadder] = None
        if self.config.resilience is not None:
            self.ladder = DegradationLadder(
                self.config.resilience, self._solver, self.tracer
            )
        #: rung of the most recent ladder-mediated solve ("cp_full" outside
        #: ladder mode) -- surfaced in the plan history for forensics.
        self._last_rung = "cp_full"
        self._active: Dict[int, Job] = {}
        self._deferred: Dict[int, Job] = {}
        #: effective earliest start per job (Table 2 lines 1-4 clamp this,
        #: never the job's SLA field -- metrics use the original s_j).
        self._effective_est: Dict[int, int] = {}
        #: jobs whose retry budget ran out (no longer planned or completed)
        self._failed_jobs: Set[int] = set()
        #: per-resource count of outage windows currently covering "now"
        #: (overlapping windows compose; offline while the count is > 0)
        self._outage_depth: Dict[int, int] = {}
        self._fault_replan_pending = False
        #: set when a trigger fired with zero online resources; the next
        #: recovery event runs the postponed re-plan.
        self._stalled = False
        #: one :class:`PlanRecord` per invocation (empty unless
        #: ``config.record_plan_history``); consumed by forensics/reports.
        self.plan_history: List[PlanRecord] = []
        if self.fault_injector is not None:
            if metrics is not None:
                metrics.enable_fault_tracking()
            for w in self.fault_injector.outage_windows():
                sim.schedule_at(
                    w.start, lambda rid=w.resource_id: self._resource_down(rid)
                )
                sim.schedule_at(
                    w.end, lambda rid=w.resource_id: self._resource_up(rid)
                )

    def attach_telemetry(self, sampler) -> None:
        """Register the scheduler's live probes on the telemetry sampler.

        Probes are read at every sampling instant: queue depth (active +
        deferred jobs awaiting completion), the active/deferred split, and
        -- in ladder mode -- how many circuit breakers are currently open.
        The executor contributes its slot-occupancy probes as well.  A
        disabled (null) sampler makes this a no-op.
        """
        if not sampler.enabled:
            return
        sampler.add_probe(
            "scheduler.queue_depth",
            lambda: float(len(self._active) + len(self._deferred)),
        )
        sampler.add_probe(
            "scheduler.active_jobs", lambda: float(len(self._active))
        )
        sampler.add_probe(
            "scheduler.deferred_jobs", lambda: float(len(self._deferred))
        )
        ladder = self.ladder
        if ladder is not None:
            from repro.resilience.breaker import OPEN

            sampler.add_probe(
                "resilience.breakers_open",
                lambda: float(
                    sum(
                        1
                        for b in ladder.breakers.values()
                        if b.state == OPEN
                    )
                ),
            )
            sampler.add_probe(
                "resilience.breaker_opened_total",
                lambda: float(ladder.opened_total),
            )
        self.executor.attach_telemetry(sampler)

    def _solver_params(self) -> SolverParams:
        params = self.config.solver
        ordering = self.config.ordering
        orders = [ordering] + [o for o in ("edf", "laxity", "input") if o != ordering]
        from dataclasses import replace

        return replace(params, warm_start_orders=tuple(orders))

    # -------------------------------------------------------------- intake
    def submit(self, job: Job) -> None:
        """A user submits a job at the current simulation time."""
        now = math.ceil(self.sim.now)
        if self.metrics is not None:
            self.metrics.job_arrived(job)
        self.executor.register_job(job)
        self._effective_est[job.id] = max(job.earliest_start, now)
        if (
            self.config.est_deferral
            and job.earliest_start > now + self.config.lookahead
        ):
            self._deferred[job.id] = job
            release_at = job.earliest_start - self.config.lookahead
            self.sim.schedule_at(release_at, lambda j=job: self._release(j))
        else:
            self._active[job.id] = job
            self._run_scheduler(trigger_jobs=[job])

    def _release(self, job: Job) -> None:
        if self._deferred.pop(job.id, None) is None:
            return
        self._active[job.id] = job
        self._run_scheduler(trigger_jobs=[job], trigger="release")

    def _job_done(self, job: Job) -> None:
        self._active.pop(job.id, None)
        self._effective_est.pop(job.id, None)

    # --------------------------------------------------------- the algorithm
    def _run_scheduler(
        self, trigger_jobs: Sequence[Job], trigger: str = "submit"
    ) -> None:
        """One Table 2 invocation; wall time is recorded as overhead O.

        This wrapper owns the observability envelope -- the overhead
        measurement (via the injectable ``tracer.wall_clock``), the
        ``scheduler.invocation`` span, the registry instruments, the plan
        history and the structured log line -- around :meth:`_invoke`,
        which holds the actual algorithm.
        """
        tracer = self.tracer
        t0 = self._clock()
        self._last_rung = "cp_full"
        args = None
        if tracer.enabled:
            args = {
                "trigger_jobs": [j.id for j in trigger_jobs],
                "active_jobs": len(self._active),
                "trigger": trigger,
            }
        with tracer.span("scheduler.invocation", "scheduler", args) as span:
            outcome = self._invoke(trigger_jobs)
            if tracer.enabled:
                span.add(outcome=outcome)
        elapsed = self._clock() - t0
        self._m_invocations.inc()
        self._m_overhead.observe(elapsed)
        if self.metrics is not None:
            self.metrics.record_overhead(elapsed, sim_time=self.sim.now)
        if self.config.record_plan_history:
            self.plan_history.append(
                PlanRecord(
                    t=math.ceil(self.sim.now),
                    outcome=outcome,
                    overhead=elapsed,
                    trigger=trigger,
                    planned_starts=self._planned_starts_by_job(),
                    rung=self._last_rung,
                )
            )
        if _LOG.isEnabledFor(logging.DEBUG):
            _LOG.debug(
                "invocation %s",
                kv(
                    t=self.sim.now,
                    outcome=outcome,
                    triggers=len(trigger_jobs),
                    active=len(self._active),
                    overhead=elapsed,
                ),
            )

    def _invoke(self, trigger_jobs: Sequence[Job]) -> str:
        """The Table 2 algorithm proper; returns the invocation outcome
        (``"no_jobs"`` / ``"stalled"`` / ``"installed"``) for the span and
        log line."""
        # Fault events land at fractional times; movable starts must not be
        # rounded into the past, so the planning instant rounds *up*.
        now = math.ceil(self.sim.now)

        # Lines 1-4: clamp effective earliest start times to now.
        jobs = [j for j in self._active.values() if not j.is_completed]
        for j in jobs:
            if self._effective_est[j.id] < now:
                self._effective_est[j.id] = now

        if not self.config.replan:
            jobs = [j for j in trigger_jobs if not j.is_completed]
        if not jobs:
            return "no_jobs"

        resources = self._online_resources()
        if not resources:
            # Total outage: nothing can be planned.  Park the work and let
            # the next recovery event resume scheduling.
            self._stalled = True
            return "stalled"

        # Lines 5-18: frozen set = started-but-uncompleted tasks; in the
        # schedule-once ablation, previously planned tasks freeze too.
        running = self.executor.snapshot_running()
        if not self.config.replan:
            running = running + self.executor.planned_unstarted()

        assignments = self._solve(jobs, running, now, resources)

        if self.config.validate:
            schedule = Schedule()
            for a in assignments:
                schedule.add(a)
            frozen_ids = {a.task.id for a in running}
            problems = validate_schedule(
                schedule,
                jobs,
                resources,
                now=None,  # frozen starts legitimately precede now
                frozen_task_ids=frozen_ids,
            )
            # Effective ESTs may exceed the SLA field; re-check movable
            # starts against them.
            for a in assignments:
                if a.task.id in frozen_ids:
                    continue
                est = self._effective_est.get(a.task.job_id)
                if est is not None and a.start < est:
                    problems.append(
                        f"task {a.task.id}: start {a.start} before effective "
                        f"EST {est}"
                    )
            if problems:
                raise SchedulingError(
                    "invalid schedule produced:\n  " + "\n  ".join(problems)
                )

        self.executor.install(assignments, replace=self.config.replan)
        return "installed"

    def _solve(
        self,
        jobs: List[Job],
        running: List[TaskAssignment],
        now: int,
        resources: Optional[Sequence[Resource]] = None,
    ) -> List[TaskAssignment]:
        """Lines 19-24: build the OPL-equivalent model, solve, extract.

        The build/solve/extract core is the caller-agnostic invocation API
        (:mod:`repro.core.invocation`, shared with the online admission
        service); this method owns the simulator-side envelope around it --
        the previous-plan hint, the metric folding, and the crash-on-failure
        policy.  ``resources`` is the currently-online pool (defaults to
        all); outages shrink it and recoveries re-grow it between
        invocations.
        """
        if resources is None:
            resources = self.resources
        clamped = [self._clamped_view(j, now) for j in jobs]
        hint_starts: Optional[Dict[str, int]] = None
        if self.config.use_hints and self.config.replan:
            # Previous plan entries for tasks that are still movable and
            # whose planned start has not slipped into the past (the past-
            # start filter is applied inside solve_invocation).
            hint_starts = {
                a.task.id: a.start for a in self.executor.planned_unstarted()
            }
        opened_before = self.ladder.opened_total if self.ladder else 0
        outcome, formulation = solve_invocation(
            clamped,
            resources,
            now,
            running=running,
            mode=self.config.mode,
            solver=self._solver,
            ladder=self.ladder,
            hint_starts=hint_starts,
            fallback_to_heuristic=self.config.fallback_to_heuristic,
        )
        self._fold_solve_metrics(outcome, opened_before, now, jobs)
        if outcome.solution is None:
            raise SchedulingError(
                outcome.describe_failure(now, jobs, len(running))
            )
        return extract_assignments(
            formulation, outcome.solution, running, resources
        )

    def _fold_solve_metrics(
        self,
        outcome: InvocationOutcome,
        opened_before: int,
        now: int,
        jobs: List[Job],
    ) -> None:
        """Fold one invocation's solve outcome into the metric contract.

        Preserves the historical semantics of both paths: CP stats/profile
        are recorded whenever a CP strategy actually ran, a ladder solve
        that lands on the ``edf`` rung still counts as one
        ``fallback_solves`` (the same degradation PR 1 introduced, now
        breaker-managed), and the plain path's fallback logs its warning.
        """
        metrics = self.metrics
        if self.ladder is not None:
            if metrics is not None:
                if outcome.result is not None:
                    metrics.record_solve_profile(outcome.result.profile)
                    if outcome.result:
                        self._record_solver_stats(outcome.result)
                for _ in range(self.ladder.opened_total - opened_before):
                    metrics.breaker_opened()
            if outcome.solution is None:
                return
            self._last_rung = outcome.rung
            if metrics is not None:
                metrics.ladder_solve(outcome.rung)
            if outcome.rung == "edf":
                # Same semantics as the non-ladder EDF degradation.
                self._m_fallbacks.inc()
                if metrics is not None:
                    metrics.fallback_solve()
            return
        if metrics is not None and outcome.result is not None:
            metrics.record_solve_profile(outcome.result.profile)
        if outcome.result and not outcome.fallback:
            self._record_solver_stats(outcome.result)
        if outcome.fallback and outcome.solution is not None:
            self._m_fallbacks.inc()
            status = (
                outcome.result.status.value if outcome.result else "none"
            )
            _LOG.warning(
                "fallback solve %s",
                kv(t=now, status=status, jobs=len(jobs)),
            )
            if metrics is not None:
                metrics.fallback_solve()

    def _record_solver_stats(self, result) -> None:
        """Fold one successful CP solve's search effort into the metrics."""
        if self.metrics is None:
            return
        self.metrics.record_solver_stats(
            result.stats.branches,
            result.stats.fails,
            result.stats.lns_iterations,
            propagations=result.stats.propagations,
            propagate_time=result.stats.propagate_time,
            warm_start_time=result.stats.warm_start_time,
            tree_time=result.stats.tree_time,
            lns_time=result.stats.lns_time,
        )

    def _planned_starts_by_job(self) -> Dict[int, int]:
        """Earliest (planned or actual) start per job in the current plan."""
        starts: Dict[int, int] = {}
        for a in self.executor.planned_unstarted():
            prev = starts.get(a.task.job_id)
            if prev is None or a.start < prev:
                starts[a.task.job_id] = a.start
        for a in self.executor.snapshot_running():
            prev = starts.get(a.task.job_id)
            if prev is None or a.start < prev:
                starts[a.task.job_id] = a.start
        return starts

    def _clamped_view(self, job: Job, now: int) -> Job:
        """A shallow view of the job with the clamped effective EST.

        The SLA's ``earliest_start`` is preserved for metrics; the model
        sees ``max(s_j, now)`` per Table 2 lines 1-4.  Works for both
        MapReduce jobs and DAG workflows (duck-typed).
        """
        est = self._effective_est.get(job.id, max(job.earliest_start, now))
        return job.with_earliest_start(est)

    # ---------------------------------------------------- fault recovery
    def _online_resources(self) -> List[Resource]:
        """The resource pool as the next model build should see it."""
        if self.fault_injector is None:
            return self.resources
        return [
            r
            for r in self.resources
            if self._outage_depth.get(r.id, 0) <= 0
        ]

    def _task_failed(self, a: TaskAssignment, reason: str) -> None:
        """Executor callback: a running attempt died (fault or outage kill).

        The task is already back in the unstarted set; recovery either
        re-queues it through a (possibly backed-off) re-plan or -- once the
        retry budget is spent -- declares the whole job failed.
        """
        job = self.executor.jobs.get(a.task.job_id)
        if job is None or job.id in self._failed_jobs:
            return  # job already given up on; nothing left to recover
        if a.task.attempts > self.config.max_task_retries:
            self._give_up(job)
            return
        _LOG.warning(
            "task failed %s",
            kv(
                t=self.sim.now,
                task=a.task.id,
                job=a.task.job_id,
                reason=reason,
                attempts=a.task.attempts,
            ),
        )
        if self.metrics is not None:
            self.metrics.task_retry()
        self._schedule_fault_replan(self.config.retry_backoff)

    def _task_perturbed(self, a: TaskAssignment) -> None:
        """Executor callback: an attempt's actual duration differs from plan.

        The plan suffix was computed against the old duration; re-plan so
        successors move out of (stragglers) or into (speedups) the gap.
        """
        self._schedule_fault_replan(0.0)

    def _give_up(self, job: Job) -> None:
        """Retry budget exhausted: declare ``job`` failed and move on."""
        _LOG.error(
            "job abandoned %s",
            kv(t=self.sim.now, job=job.id, retries=self.config.max_task_retries),
        )
        self._failed_jobs.add(job.id)
        self._active.pop(job.id, None)
        self._deferred.pop(job.id, None)
        self._effective_est.pop(job.id, None)
        self.executor.abandon_job(job.id)
        if self.metrics is not None:
            self.metrics.job_failed(job, self.sim.now)
        # Remaining jobs inherit the freed capacity at the next re-plan.
        self._schedule_fault_replan(0.0)

    def _schedule_fault_replan(self, delay: float) -> None:
        """Coalesce fault-triggered re-plans into one event per instant.

        An outage killing ten tasks queues *one* recovery re-plan, scheduled
        at acquire priority so all same-instant transitions land first.
        """
        if self._fault_replan_pending:
            return
        self._fault_replan_pending = True
        self.sim.schedule(delay, self._fault_replan, PRIORITY_ACQUIRE)

    def _fault_replan(self) -> None:
        """The coalesced recovery trigger: one Table 2 invocation."""
        self._fault_replan_pending = False
        if not self._active:
            return  # nothing left to re-plan (e.g. recovery after drain)
        if not self._online_resources():
            self._stalled = True
            return
        self._m_replans.inc()
        _LOG.info(
            "recovery replan %s",
            kv(t=self.sim.now, active=len(self._active)),
        )
        if self.metrics is not None:
            self.metrics.replan_on_failure()
        self._run_scheduler(
            trigger_jobs=list(self._active.values()), trigger="recovery"
        )

    def _resource_down(self, resource_id: int) -> None:
        """Outage window opens: kill the node's tasks, shrink the pool."""
        depth = self._outage_depth.get(resource_id, 0)
        self._outage_depth[resource_id] = depth + 1
        if depth > 0:
            return  # already down (overlapping windows)
        _LOG.warning(
            "resource outage %s", kv(t=self.sim.now, resource=resource_id)
        )
        self.tracer.instant(
            "fault.outage",
            "fault",
            args={"resource": resource_id},
            sim_track=True,
        )
        if self.metrics is not None:
            self.metrics.outage_started()
        self.executor.fail_resource(resource_id)
        # Even with no running victims, pending plan entries on the node
        # were dropped -- re-plan them elsewhere.
        self._schedule_fault_replan(0.0)

    def _resource_up(self, resource_id: int) -> None:
        """Outage window closes: re-grow the pool, resume stalled work."""
        depth = self._outage_depth.get(resource_id, 0) - 1
        self._outage_depth[resource_id] = depth
        if depth > 0:
            return  # still covered by another window
        _LOG.info(
            "resource recovered %s", kv(t=self.sim.now, resource=resource_id)
        )
        self.tracer.instant(
            "fault.recovery",
            "fault",
            args={"resource": resource_id},
            sim_track=True,
        )
        self.executor.restore_resource(resource_id)
        self._stalled = False
        self._schedule_fault_replan(0.0)

    # ------------------------------------------------------------- queries
    @property
    def active_jobs(self) -> List[Job]:
        return list(self._active.values())

    @property
    def deferred_jobs(self) -> List[Job]:
        return list(self._deferred.values())

    @property
    def failed_jobs(self) -> List[int]:
        """Ids of jobs declared failed after exhausting their retries."""
        return sorted(self._failed_jobs)

    # ------------------------------------------------------ checkpointing
    def resilience_state(self) -> Dict[str, object]:
        """The manager's complete mutable bookkeeping as JSON-safe data.

        Captured into checkpoints and strictly compared after a restore's
        replay, so every field that influences future decisions must appear
        here (a drifted field would otherwise silently fork the replay).
        """
        state: Dict[str, object] = {
            "active": sorted(self._active),
            "deferred": sorted(self._deferred),
            "effective_est": {
                str(k): v for k, v in sorted(self._effective_est.items())
            },
            "failed_jobs": sorted(self._failed_jobs),
            "outage_depth": {
                str(k): v for k, v in sorted(self._outage_depth.items())
            },
            "fault_replan_pending": self._fault_replan_pending,
            "stalled": self._stalled,
            "plan_records": len(self.plan_history),
            "executor": self.executor.resilience_state(),
        }
        if self.ladder is not None:
            state["ladder"] = self.ladder.snapshot()
        if self.fault_injector is not None:
            state["fault_rng"] = self.fault_injector.rng_state()
        return state
