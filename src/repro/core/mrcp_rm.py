"""The MRCP-RM resource manager (Table 2 + Sections V.D/V.E).

Lifecycle inside the discrete event simulation:

1. Users submit jobs (:meth:`MrcpRm.submit`); arrivals are recorded and --
   with the Section V.E optimisation -- jobs whose earliest start time lies
   beyond the lookahead window are parked until close to their start.
2. On every scheduling trigger the Table 2 algorithm runs: earliest start
   times are clamped to "now", completed tasks are dropped, started tasks
   are frozen, a fresh CP model over all remaining tasks is built and
   solved, and the resulting schedule (decomposed onto physical resources in
   combined mode) is installed on the executor.
3. The wall-clock cost of step 2 is recorded as the overhead metric ``O``.

Configuration covers every ablation the paper motivates: formulation mode
(combined vs joint), EST deferral on/off, re-planning vs schedule-once, job
ordering strategy, and the CP solver budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executor import ScheduledExecutor
from repro.core.formulation import FormulationMode, build_model
from repro.core.matchmaking import (
    assign_slots_within_resources,
    decompose_combined_schedule,
)
from repro.core.schedule import (
    Schedule,
    SchedulingError,
    TaskAssignment,
    validate_schedule,
)
from repro.cp.solver import CpSolver, SolverParams
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator
from repro.workload.entities import Job, Resource, Task


def _default_solver_params() -> SolverParams:
    """A per-invocation budget suited to open-system operation.

    The warm-start fast path (0 late jobs proves optimality) handles the
    vast majority of invocations; the budget below caps the hard ones.
    """
    return SolverParams(time_limit=0.5, tree_fail_limit=500)


@dataclass
class MrcpRmConfig:
    """Behavioural knobs of the resource manager."""

    #: Combined (Section V.D fast path) or joint (plain Table 1) model.
    mode: FormulationMode = FormulationMode.COMBINED
    #: Job ordering the warm-start heuristics try first ("edf", "laxity",
    #: "input" = job-id order); the paper reports EDF marginally best.
    ordering: str = "edf"
    #: Section V.E: defer jobs whose earliest start time is in the future.
    est_deferral: bool = True
    #: Seconds before a deferred job's earliest start at which it becomes
    #: eligible for scheduling ("close to arriving").
    lookahead: int = 0
    #: Re-plan all unstarted tasks on each trigger (Table 2).  False gives
    #: the schedule-once ablation: each job is scheduled on arrival and
    #: never revisited.
    replan: bool = True
    #: Seed each solve with the previous plan as a solution hint -- the
    #: "incrementally builds on the previous solution (if one is available)"
    #: behaviour of Fig. 1.  Improves schedule stability and lets the warm
    #: start skip work when the new arrival fits around the old plan.
    use_hints: bool = True
    #: CP solver budget per invocation.
    solver: SolverParams = field(default_factory=_default_solver_params)
    #: Re-validate every installed schedule against the declarative checker
    #: (cheap at experiment scale; disable for large benchmark sweeps).
    validate: bool = True


class MrcpRm:
    """MapReduce Constraint Programming based Resource Manager."""

    def __init__(
        self,
        sim: Simulator,
        resources: Sequence[Resource],
        config: Optional[MrcpRmConfig] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.sim = sim
        self.resources = list(resources)
        self.config = config or MrcpRmConfig()
        self.metrics = metrics
        self.executor = ScheduledExecutor(
            sim, self.resources, metrics=metrics, on_job_complete=self._job_done
        )
        self._solver = CpSolver(self._solver_params())
        self._active: Dict[int, Job] = {}
        self._deferred: Dict[int, Job] = {}
        #: effective earliest start per job (Table 2 lines 1-4 clamp this,
        #: never the job's SLA field -- metrics use the original s_j).
        self._effective_est: Dict[int, int] = {}

    def _solver_params(self) -> SolverParams:
        params = self.config.solver
        ordering = self.config.ordering
        orders = [ordering] + [o for o in ("edf", "laxity", "input") if o != ordering]
        from dataclasses import replace

        return replace(params, warm_start_orders=tuple(orders))

    # -------------------------------------------------------------- intake
    def submit(self, job: Job) -> None:
        """A user submits a job at the current simulation time."""
        now = int(self.sim.now)
        if self.metrics is not None:
            self.metrics.job_arrived(job)
        self.executor.register_job(job)
        self._effective_est[job.id] = max(job.earliest_start, now)
        if (
            self.config.est_deferral
            and job.earliest_start > now + self.config.lookahead
        ):
            self._deferred[job.id] = job
            release_at = job.earliest_start - self.config.lookahead
            self.sim.schedule_at(release_at, lambda j=job: self._release(j))
        else:
            self._active[job.id] = job
            self._run_scheduler(trigger_jobs=[job])

    def _release(self, job: Job) -> None:
        if self._deferred.pop(job.id, None) is None:
            return
        self._active[job.id] = job
        self._run_scheduler(trigger_jobs=[job])

    def _job_done(self, job: Job) -> None:
        self._active.pop(job.id, None)
        self._effective_est.pop(job.id, None)

    # --------------------------------------------------------- the algorithm
    def _run_scheduler(self, trigger_jobs: Sequence[Job]) -> None:
        """One Table 2 invocation; wall time is recorded as overhead O."""
        t0 = time.perf_counter()
        now = int(self.sim.now)

        # Lines 1-4: clamp effective earliest start times to now.
        jobs = [j for j in self._active.values() if not j.is_completed]
        for j in jobs:
            if self._effective_est[j.id] < now:
                self._effective_est[j.id] = now

        if not self.config.replan:
            jobs = [j for j in trigger_jobs if not j.is_completed]
        if not jobs:
            if self.metrics is not None:
                self.metrics.record_overhead(time.perf_counter() - t0)
            return

        # Lines 5-18: frozen set = started-but-uncompleted tasks; in the
        # schedule-once ablation, previously planned tasks freeze too.
        running = self.executor.snapshot_running()
        if not self.config.replan:
            running = running + self.executor.planned_unstarted()

        assignments = self._solve(jobs, running, now)

        if self.config.validate:
            schedule = Schedule()
            for a in assignments:
                schedule.add(a)
            frozen_ids = {a.task.id for a in running}
            problems = validate_schedule(
                schedule,
                jobs,
                self.resources,
                now=None,  # frozen starts legitimately precede now
                frozen_task_ids=frozen_ids,
            )
            # Effective ESTs may exceed the SLA field; re-check movable
            # starts against them.
            for a in assignments:
                if a.task.id in frozen_ids:
                    continue
                est = self._effective_est.get(a.task.job_id)
                if est is not None and a.start < est:
                    problems.append(
                        f"task {a.task.id}: start {a.start} before effective "
                        f"EST {est}"
                    )
            if problems:
                raise SchedulingError(
                    "invalid schedule produced:\n  " + "\n  ".join(problems)
                )

        self.executor.install(assignments, replace=self.config.replan)
        if self.metrics is not None:
            self.metrics.record_overhead(time.perf_counter() - t0)

    def _solve(
        self,
        jobs: List[Job],
        running: List[TaskAssignment],
        now: int,
    ) -> List[TaskAssignment]:
        """Lines 19-24: build the OPL-equivalent model, solve, extract."""
        clamped = [self._clamped_view(j, now) for j in jobs]
        formulation = build_model(
            clamped,
            self.resources,
            now=now,
            running=running,
            mode=self.config.mode,
        )
        hint = None
        if self.config.use_hints and self.config.replan:
            # Previous plan entries for tasks that are still movable and
            # whose planned start has not slipped into the past.
            hint = {}
            for a in self.executor.planned_unstarted():
                iv = formulation.interval_of.get(a.task.id)
                if iv is not None and a.start >= now:
                    hint[iv] = a.start
            if not hint:
                hint = None
        result = self._solver.solve(formulation.model, hint=hint)
        if not result:
            raise SchedulingError(
                f"CP solver returned {result.status.value} at t={now} "
                f"({len(jobs)} jobs, {len(running)} running tasks)"
            )
        if self.metrics is not None:
            self.metrics.record_solver_stats(
                result.stats.branches,
                result.stats.fails,
                result.stats.lns_iterations,
            )
        solution = result.solution
        assert solution is not None

        frozen_ids = {a.task.id for a in running}
        if formulation.mode is FormulationMode.COMBINED:
            movable: List[Tuple[Task, int]] = []
            for task_id, iv in formulation.interval_of.items():
                if task_id in frozen_ids:
                    continue
                movable.append((formulation.task_of[iv], solution.start_of(iv)))
            return decompose_combined_schedule(movable, running, self.resources)

        movable_joint: List[Tuple[Task, int, int]] = []
        for task_id, iv in formulation.interval_of.items():
            if task_id in frozen_ids:
                continue
            option = solution.chosen_option(iv)
            if option is None:
                raise SchedulingError(
                    f"joint solution lacks a resource choice for {task_id}"
                )
            movable_joint.append(
                (
                    formulation.task_of[iv],
                    solution.start_of(iv),
                    formulation.resource_of_option[option],
                )
            )
        return assign_slots_within_resources(
            movable_joint, running, self.resources
        )

    def _clamped_view(self, job: Job, now: int) -> Job:
        """A shallow view of the job with the clamped effective EST.

        The SLA's ``earliest_start`` is preserved for metrics; the model
        sees ``max(s_j, now)`` per Table 2 lines 1-4.  Works for both
        MapReduce jobs and DAG workflows (duck-typed).
        """
        est = self._effective_est.get(job.id, max(job.earliest_start, now))
        return job.with_earliest_start(est)

    # ------------------------------------------------------------- queries
    @property
    def active_jobs(self) -> List[Job]:
        return list(self._active.values())

    @property
    def deferred_jobs(self) -> List[Job]:
        return list(self._deferred.values())
