"""Schedule-driven cluster execution.

MRCP-RM is plan-based: tasks start exactly at their assigned start times on
their assigned slots (the cluster does not opportunistically pull work
forward -- an earlier start would violate the CP schedule other jobs were
planned around).  The executor turns an installed plan into simulation
events and maintains the runtime state of Table 2:

* a task whose start event has fired is *started* (``isPrevScheduled``);
* a task whose completion event has fired is *completed* and its job may
  complete with it;
* re-planning replaces the pending (unstarted) part of the plan and leaves
  running tasks untouched.

Fault injection adds the missing transitions: a running task can *fail*
mid-execution (slot freed, attempt counter bumped, ``on_task_failed``
fired), a resource outage *kills* every task running on the node and takes
it offline until :meth:`ScheduledExecutor.restore_resource`, and runtime
perturbation can reveal an actual duration different from the planned one
(``on_task_perturbed`` fires so the manager can repair the rest of the
plan).  All of this is inert unless a fault injector is attached.

Slot-occupancy invariants are asserted on every transition -- an overlap
would mean the matchmaking decomposition violated a capacity.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.schedule import SchedulingError, SlotKind, TaskAssignment
from repro.faults.injector import FaultInjector
from repro.metrics.collector import MetricsCollector
from repro.obs.logs import get_logger, kv
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.kernel import (
    PRIORITY_ACQUIRE,
    PRIORITY_RELEASE,
    EventHandle,
    Simulator,
)
from repro.workload.entities import Job, Resource

_LOG = get_logger("core.executor")


class ScheduledExecutor:
    """Executes task assignments at their planned times."""

    def __init__(
        self,
        sim: Simulator,
        resources: Iterable[Resource],
        metrics: Optional[MetricsCollector] = None,
        on_job_complete: Optional[Callable[[Job], None]] = None,
        on_task_complete: Optional[Callable[[TaskAssignment], None]] = None,
        fault_injector: Optional[FaultInjector] = None,
        on_task_failed: Optional[Callable[[TaskAssignment, str], None]] = None,
        on_task_perturbed: Optional[Callable[[TaskAssignment], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.resources = list(resources)
        self.resource_by_id = {r.id: r for r in self.resources}
        self.metrics = metrics
        #: Observability: task lifecycle counters plus, with tracing on, one
        #: sim-timeline span per completed attempt (row = resource id).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        registry = self.tracer.registry
        self._m_started = registry.counter("executor.tasks_started")
        self._m_completed = registry.counter("executor.tasks_completed")
        self._m_failed = registry.counter("executor.tasks_failed")
        self.on_job_complete = on_job_complete
        self.on_task_complete = on_task_complete
        self.fault_injector = fault_injector
        self.on_task_failed = on_task_failed
        self.on_task_perturbed = on_task_perturbed

        self._jobs: Dict[int, Job] = {}
        self._plan: Dict[str, TaskAssignment] = {}
        self._start_handles: Dict[str, EventHandle] = {}
        self._started: Dict[str, TaskAssignment] = {}
        self._completed: Set[str] = set()
        #: slot -> task id currently occupying it
        self._slot_busy: Dict[Tuple[int, SlotKind, int], str] = {}
        #: task id -> attempt-end event (completion or injected failure);
        #: cancelled when an outage kills the attempt.
        self._end_handles: Dict[str, EventHandle] = {}
        #: resources currently down (outage); starting a task on one is a bug.
        self._offline: Set[int] = set()

    # ------------------------------------------------------------- plumbing
    def attach_telemetry(self, sampler) -> None:
        """Register slot-occupancy probes on the telemetry sampler.

        ``executor.slots_busy`` counts occupied (map + reduce) slots,
        ``executor.slots_total`` the cluster capacity,
        ``executor.slot_utilization`` their ratio, and
        ``executor.resources_offline`` the nodes currently in an outage
        window.  A disabled (null) sampler makes this a no-op.
        """
        if not sampler.enabled:
            return
        total = float(
            sum(r.map_capacity + r.reduce_capacity for r in self.resources)
        )
        sampler.add_probe(
            "executor.slots_busy", lambda: float(len(self._slot_busy))
        )
        sampler.add_probe("executor.slots_total", lambda: total)
        sampler.add_probe(
            "executor.slot_utilization",
            lambda: (len(self._slot_busy) / total) if total else 0.0,
        )
        sampler.add_probe(
            "executor.resources_offline", lambda: float(len(self._offline))
        )

    def register_job(self, job: Job) -> None:
        """Make the executor aware of a job so completions can be detected."""
        self._jobs[job.id] = job

    @property
    def jobs(self) -> Dict[int, Job]:
        return self._jobs

    def snapshot_running(self) -> List[TaskAssignment]:
        """Tasks that have started but not completed (the frozen set)."""
        return [
            a
            for tid, a in self._started.items()
            if tid not in self._completed
        ]

    def is_started(self, task_id: str) -> bool:
        """Whether the task's start event has fired."""
        return task_id in self._started

    def is_completed(self, task_id: str) -> bool:
        """Whether the task's completion event has fired."""
        return task_id in self._completed

    def planned_unstarted(self) -> List[TaskAssignment]:
        """Pending plan entries (used by the schedule-once ablation)."""
        return [
            a
            for tid, a in self._plan.items()
            if tid not in self._started and tid not in self._completed
        ]

    # ------------------------------------------------------------ the plan
    def install(
        self, assignments: Iterable[TaskAssignment], replace: bool = True
    ) -> None:
        """Adopt a new plan for all not-yet-started tasks.

        With ``replace=True`` (normal MRCP-RM re-planning) every pending
        start event is cancelled first; assignments for already started or
        completed tasks are ignored (they were frozen inputs to the solver
        and cannot change).  With ``replace=False`` the assignments are
        added on top of the existing plan (schedule-once ablation).
        """
        now = self.sim.now
        if replace:
            for handle in self._start_handles.values():
                handle.cancel()
            self._start_handles.clear()
            self._plan = {
                tid: a
                for tid, a in self._plan.items()
                if tid in self._started or tid in self._completed
            }
        for a in assignments:
            tid = a.task.id
            if tid in self._started or tid in self._completed:
                continue  # frozen pass-through
            if a.start < now:
                raise SchedulingError(
                    f"task {tid}: planned start {a.start} is in the past "
                    f"(now={now})"
                )
            if not replace and tid in self._plan:
                prev = self._plan[tid]
                if (
                    prev.start == a.start
                    and prev.resource_id == a.resource_id
                    and prev.slot_index == a.slot_index
                ):
                    continue  # frozen pass-through from the solver
                raise SchedulingError(
                    f"task {tid}: conflicting plan entries (replace=False)"
                )
            self._plan[tid] = a
            self._start_handles[tid] = self.sim.schedule_at(
                a.start, lambda a=a: self._start_task(a), PRIORITY_ACQUIRE
            )

    # --------------------------------------------------------- transitions
    def _start_task(self, a: TaskAssignment) -> None:
        tid = a.task.id
        self._start_handles.pop(tid, None)
        current = self._plan.get(tid)
        if current is not a or tid in self._started:
            raise SchedulingError(f"stale start event for task {tid}")
        if a.resource_id in self._offline:
            raise SchedulingError(
                f"task {tid}: planned start on offline resource {a.resource_id}"
            )
        key = a.slot_key()
        occupant = self._slot_busy.get(key)
        if occupant is not None:
            raise SchedulingError(
                f"slot {key} double-booked: {occupant} vs {tid}"
            )
        res = self.resource_by_id.get(a.resource_id)
        if res is None:
            raise SchedulingError(f"task {tid}: unknown resource {a.resource_id}")
        cap = (
            res.map_capacity
            if a.slot_kind is SlotKind.MAP
            else res.reduce_capacity
        )
        if not (0 <= a.slot_index < cap):
            raise SchedulingError(
                f"task {tid}: slot index {a.slot_index} out of range on "
                f"resource {a.resource_id}"
            )
        self._slot_busy[key] = tid
        self._started[tid] = a
        a.task.is_prev_scheduled = True
        self._m_started.inc()

        duration = a.task.duration
        fails_after: Optional[float] = None
        if self.fault_injector is not None:
            outcome = self.fault_injector.attempt_outcome(a.task)
            fails_after = outcome.fails_after
            if outcome.duration != duration:
                # Runtime reveals the actual execution time: rebase the
                # task's duration so every later layer (frozen intervals,
                # matchmaking, validation) sees the true slot occupancy,
                # and let the manager repair the now-stale plan suffix.
                if a.task.nominal_duration is None:
                    a.task.nominal_duration = duration
                if (
                    self.metrics is not None
                    and outcome.duration > duration
                ):
                    self.metrics.task_straggled()
                a.task.duration = outcome.duration
                duration = outcome.duration
                if self.on_task_perturbed is not None:
                    self.on_task_perturbed(a)
        if fails_after is not None:
            self._end_handles[tid] = self.sim.schedule(
                fails_after,
                lambda: self._fail_task(a, "failure"),
                PRIORITY_RELEASE,
            )
        else:
            self._end_handles[tid] = self.sim.schedule(
                duration, lambda: self._complete_task(a), PRIORITY_RELEASE
            )

    def _complete_task(self, a: TaskAssignment) -> None:
        tid = a.task.id
        self._end_handles.pop(tid, None)
        if tid in self._completed:
            raise SchedulingError(f"task {tid} completed twice")
        self._completed.add(tid)
        a.task.is_completed = True
        a.task.completed_at = int(self.sim.now)
        key = a.slot_key()
        if self._slot_busy.get(key) != tid:
            raise SchedulingError(f"slot {key} not held by completing task {tid}")
        del self._slot_busy[key]
        self._m_completed.inc()
        tracer = self.tracer
        if tracer.enabled:
            args = {
                "job": a.task.job_id,
                "kind": a.slot_kind.name,
                "slot": a.slot_index,
            }
            # Forensics inputs: the planned (nominal) duration when runtime
            # perturbation revealed a different actual one, and how many
            # earlier attempts of this task failed.
            if a.task.nominal_duration is not None:
                args["planned"] = a.task.nominal_duration
            if a.task.attempts:
                args["failed_attempts"] = a.task.attempts
            tracer.sim_span(
                tid,
                "task",
                a.start,
                self.sim.now,
                tid=a.resource_id,
                args=args,
            )
        if _LOG.isEnabledFor(logging.DEBUG):
            _LOG.debug(
                "task completed %s",
                kv(t=self.sim.now, task=tid, job=a.task.job_id),
            )
        if self.on_task_complete is not None:
            self.on_task_complete(a)
        job = self._jobs.get(a.task.job_id)
        if job is not None and job.is_completed:
            if self.metrics is not None:
                self.metrics.job_completed(job, self.sim.now)
            if self.on_job_complete is not None:
                self.on_job_complete(job)

    def _fail_task(self, a: TaskAssignment, reason: str) -> None:
        """A running attempt dies: free the slot, revert to unstarted.

        ``reason`` is ``"failure"`` (injected task fault) or ``"outage"``
        (the attempt's resource went down).  The task is *not* completed:
        it leaves the plan and the started set, its attempt counter is
        bumped, and ``on_task_failed`` lets the recovery policy re-queue it.
        """
        tid = a.task.id
        self._end_handles.pop(tid, None)
        if tid in self._completed or tid not in self._started:
            raise SchedulingError(f"stale failure event for task {tid}")
        key = a.slot_key()
        if self._slot_busy.get(key) != tid:
            raise SchedulingError(f"slot {key} not held by failing task {tid}")
        del self._slot_busy[key]
        del self._started[tid]
        self._plan.pop(tid, None)
        a.task.is_prev_scheduled = False
        a.task.attempts += 1
        self._m_failed.inc()
        tracer = self.tracer
        if tracer.enabled:
            # ``start``/``resource`` let forensics reconstruct the dead
            # attempt's slot occupancy (there is no completion span for it).
            tracer.instant(
                "task.failed",
                "fault",
                args={
                    "task": tid,
                    "job": a.task.job_id,
                    "reason": reason,
                    "start": a.start,
                    "resource": a.resource_id,
                    "kind": a.slot_kind.name,
                    "slot": a.slot_index,
                },
                sim_track=True,
            )
        if self.metrics is not None:
            self.metrics.task_failed(reason)
        if self.on_task_failed is not None:
            self.on_task_failed(a, reason)

    # -------------------------------------------------------------- faults
    def fail_resource(self, resource_id: int) -> List[TaskAssignment]:
        """Take a resource offline: kill its running tasks, drop its plan.

        Every task running on the node is preempted through the failure
        transition (reason ``"outage"``); pending plan entries placed on the
        node are silently un-planned (their start events are cancelled) so
        the next re-plan re-places them.  Returns the killed assignments.
        """
        if resource_id not in self.resource_by_id:
            raise SchedulingError(f"unknown resource {resource_id}")
        self._offline.add(resource_id)
        victims = [
            a
            for tid, a in list(self._started.items())
            if tid not in self._completed and a.resource_id == resource_id
        ]
        for a in victims:
            handle = self._end_handles.pop(a.task.id, None)
            if handle is not None:
                handle.cancel()
            self._fail_task(a, "outage")
        for tid, a in list(self._plan.items()):
            if tid in self._started or tid in self._completed:
                continue
            if a.resource_id != resource_id:
                continue
            handle = self._start_handles.pop(tid, None)
            if handle is not None:
                handle.cancel()
            del self._plan[tid]
        return victims

    def restore_resource(self, resource_id: int) -> None:
        """Bring a failed resource back into service (outage recovery)."""
        if resource_id not in self.resource_by_id:
            raise SchedulingError(f"unknown resource {resource_id}")
        self._offline.discard(resource_id)

    @property
    def offline_resources(self) -> Set[int]:
        """Ids of resources currently down."""
        return set(self._offline)

    def abandon_job(self, job_id: int) -> None:
        """Drop a job's pending plan entries (the job was declared failed).

        Running tasks of the job are left to finish (they hold real slots);
        they simply no longer lead to a job completion.
        """
        for tid, a in list(self._plan.items()):
            if a.task.job_id != job_id:
                continue
            if tid in self._started or tid in self._completed:
                continue
            handle = self._start_handles.pop(tid, None)
            if handle is not None:
                handle.cancel()
            del self._plan[tid]

    # ---------------------------------------------------------- checkpoint
    def resilience_state(self) -> Dict[str, object]:
        """The executor's runtime state as comparable JSON-safe data.

        Everything future transitions depend on is here: the pending plan,
        the running set, completions, slot occupancy, offline resources and
        the per-task attempt counters behind the retry budget.  Captured
        into checkpoints and strictly compared after a restore's replay.
        """
        def entry(a: TaskAssignment) -> List[int]:
            return [a.resource_id, a.slot_index, a.start]

        return {
            "jobs": sorted(self._jobs),
            "plan": {
                tid: entry(a) for tid, a in sorted(self._plan.items())
            },
            "started": sorted(self._started),
            "completed": sorted(self._completed),
            "slot_busy": {
                f"{rid}/{kind.value}/{slot}": tid
                for (rid, kind, slot), tid in sorted(
                    self._slot_busy.items(),
                    key=lambda p: (p[0][0], p[0][1].value, p[0][2]),
                )
            },
            "offline": sorted(self._offline),
            "attempts": {
                t.id: t.attempts
                for job in self._jobs.values()
                for t in job.tasks
                if t.attempts
            },
        }

    # ------------------------------------------------------------ invariant
    def assert_quiescent(self) -> None:
        """After a drained simulation: nothing running, nothing pending."""
        running = self.snapshot_running()
        if running:
            raise SchedulingError(
                f"{len(running)} tasks still running at drain: "
                f"{[a.task.id for a in running][:5]}"
            )
        pending = self.planned_unstarted()
        if pending:
            raise SchedulingError(
                f"{len(pending)} tasks never started: "
                f"{[a.task.id for a in pending][:5]}"
            )
