"""Section V.D: separating matchmaking from scheduling.

In combined mode the CP solver produces a *single-resource schedule*: start
times that respect the aggregated map/reduce slot capacities.  This module
maps that schedule onto physical resources:

1. **Unit-capacity placement** -- each (resource, slot) pair is a unit
   resource; tasks are processed in start-time order and each is placed on
   the free unit slot leaving the *smallest gap* between the slot's previous
   occupant and the task's start (the paper's best-gap rule, with its
   r1/r2 example reproduced in the tests).
2. **Regrouping** -- unit slots belong to physical resources; the helper
   :func:`regroup_unit_resources` reproduces the paper's redistribution of
   slot totals over user-specified resource counts (nm/nr example).

Feasibility is guaranteed: the combined cumulative constraint bounds the
number of simultaneously active tasks by the slot total, and -- because
every movable task starts at or after "now" while frozen tasks started in
the past -- greedy placement in start order never runs out of free slots
(interval-graph colouring).  A failure therefore raises
:class:`~repro.core.schedule.SchedulingError` as a genuine invariant
violation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.schedule import SchedulingError, SlotKind, TaskAssignment
from repro.workload.entities import Resource, Task


@dataclass
class UnitSlot:
    """One unit-capacity resource: a (resource, slot index) pair."""

    resource_id: int
    slot_index: int
    #: Sorted, non-overlapping busy windows (start, end).
    busy: List[Tuple[int, int]] = field(default_factory=list)

    def free_for(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` overlaps no existing booking."""
        i = bisect.bisect_right(self.busy, (start, float("inf")))
        if i > 0 and self.busy[i - 1][1] > start:
            return False
        if i < len(self.busy) and self.busy[i][0] < end:
            return False
        return True

    def gap_before(self, start: int) -> int:
        """Idle time between the previous occupant's end and ``start``.

        An empty prefix counts from time 0, matching the paper's example
        arithmetic (gap = start - previous end).
        """
        i = bisect.bisect_right(self.busy, (start, float("inf")))
        prev_end = self.busy[i - 1][1] if i > 0 else 0
        return start - prev_end

    def occupy(self, start: int, end: int) -> None:
        """Book ``[start, end)``; raises SchedulingError on overlap."""
        if not self.free_for(start, end):
            raise SchedulingError(
                f"slot r{self.resource_id}/{self.slot_index}: "
                f"[{start},{end}) overlaps existing booking"
            )
        bisect.insort(self.busy, (start, end))


def _slots_for_kind(
    resources: Sequence[Resource], kind: SlotKind
) -> Dict[int, List[UnitSlot]]:
    """Unit slots per resource id, for one slot kind."""
    out: Dict[int, List[UnitSlot]] = {}
    for r in resources:
        cap = r.map_capacity if kind is SlotKind.MAP else r.reduce_capacity
        out[r.id] = [UnitSlot(r.id, k) for k in range(cap)]
    return out


def _place_frozen(
    frozen: Iterable[TaskAssignment],
    slot_map: Dict[SlotKind, Dict[int, List[UnitSlot]]],
) -> None:
    """Pin running tasks to their recorded (resource, slot)."""
    for a in frozen:
        pool = slot_map[a.slot_kind].get(a.resource_id)
        if pool is None or a.slot_index >= len(pool):
            raise SchedulingError(
                f"frozen task {a.task.id}: slot "
                f"r{a.resource_id}/{a.slot_index} does not exist"
            )
        pool[a.slot_index].occupy(a.start, a.end)


def _best_gap_slot(
    candidates: Iterable[UnitSlot], start: int, end: int
) -> Optional[UnitSlot]:
    best: Optional[UnitSlot] = None
    best_gap: Optional[int] = None
    for slot in candidates:
        if not slot.free_for(start, end):
            continue
        gap = slot.gap_before(start)
        if best_gap is None or gap < best_gap:
            best, best_gap = slot, gap
    return best


def decompose_combined_schedule(
    movable: Sequence[Tuple[Task, int]],
    frozen: Sequence[TaskAssignment],
    resources: Sequence[Resource],
) -> List[TaskAssignment]:
    """Map a combined-resource schedule onto physical resources.

    ``movable`` is (task, assigned start) for every task the solver placed;
    ``frozen`` are the running tasks already pinned to slots.  Returns the
    complete assignment list -- frozen assignments pass through unchanged.
    """
    slot_map = {
        SlotKind.MAP: _slots_for_kind(resources, SlotKind.MAP),
        SlotKind.REDUCE: _slots_for_kind(resources, SlotKind.REDUCE),
    }
    _place_frozen(frozen, slot_map)

    out: List[TaskAssignment] = list(frozen)
    ordered = sorted(movable, key=lambda p: (p[1], p[0].id))
    for task, start in ordered:
        kind = SlotKind.for_task(task)
        end = start + task.duration
        all_slots = [
            slot for pool in slot_map[kind].values() for slot in pool
        ]
        slot = _best_gap_slot(all_slots, start, end)
        if slot is None:
            raise SchedulingError(
                f"no free {kind.value} slot for task {task.id} at "
                f"[{start},{end}) -- combined capacity invariant violated"
            )
        slot.occupy(start, end)
        out.append(
            TaskAssignment(
                task=task,
                resource_id=slot.resource_id,
                slot_index=slot.slot_index,
                start=start,
            )
        )
    return out


def assign_slots_within_resources(
    movable: Sequence[Tuple[Task, int, int]],
    frozen: Sequence[TaskAssignment],
    resources: Sequence[Resource],
) -> List[TaskAssignment]:
    """JOINT mode helper: the solver chose (task, start, resource); pick the
    slot index within each resource with the same best-gap rule."""
    slot_map = {
        SlotKind.MAP: _slots_for_kind(resources, SlotKind.MAP),
        SlotKind.REDUCE: _slots_for_kind(resources, SlotKind.REDUCE),
    }
    _place_frozen(frozen, slot_map)

    out: List[TaskAssignment] = list(frozen)
    ordered = sorted(movable, key=lambda p: (p[1], p[0].id))
    for task, start, resource_id in ordered:
        kind = SlotKind.for_task(task)
        end = start + task.duration
        pool = slot_map[kind].get(resource_id)
        if pool is None:
            raise SchedulingError(f"unknown resource {resource_id}")
        slot = _best_gap_slot(pool, start, end)
        if slot is None:
            raise SchedulingError(
                f"no free {kind.value} slot on resource {resource_id} for "
                f"{task.id} at [{start},{end}) -- per-resource capacity "
                f"invariant violated"
            )
        slot.occupy(start, end)
        out.append(
            TaskAssignment(
                task=task,
                resource_id=slot.resource_id,
                slot_index=slot.slot_index,
                start=start,
            )
        )
    return out


def regroup_unit_resources(
    total_map_slots: int,
    total_reduce_slots: int,
    num_map_resources: int,
    num_reduce_resources: int,
    first_resource_id: int = 0,
) -> List[Resource]:
    """The paper's V.D step 2: redistribute slot totals over resources.

    ``max(nm, nr)`` resources are created; map slots are divided evenly over
    the first ``nm``, reduce slots over the first ``nr`` (remainders spread
    one extra slot at a time, from the tail -- reproducing the paper's
    "20 of the 30 resources have 3 reduce slots and the remaining 10 have 4"
    example for 100 slots over 30 resources).
    """
    if num_map_resources < 0 or num_reduce_resources < 0:
        raise ValueError("resource counts must be non-negative")
    if total_map_slots > 0 and num_map_resources == 0:
        raise ValueError("map slots exist but no map resources requested")
    if total_reduce_slots > 0 and num_reduce_resources == 0:
        raise ValueError("reduce slots exist but no reduce resources requested")
    n = max(num_map_resources, num_reduce_resources)
    if n == 0:
        return []

    def spread(total: int, count: int) -> List[int]:
        if count == 0:
            return []
        base, extra = divmod(total, count)
        # The first (count - extra) resources get `base`, the rest base + 1.
        return [base] * (count - extra) + [base + 1] * extra

    map_caps = spread(total_map_slots, num_map_resources) + [0] * (
        n - num_map_resources
    )
    reduce_caps = spread(total_reduce_slots, num_reduce_resources) + [0] * (
        n - num_reduce_resources
    )
    return [
        Resource(first_resource_id + i, map_caps[i], reduce_caps[i])
        for i in range(n)
    ]
