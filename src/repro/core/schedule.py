"""Schedule types and validation.

A *schedule* is what MRCP-RM hands to the cluster: for every task, the
resource it runs on, the slot within the resource, and the assigned start
time (the paper's decision variables ``x_tr`` and ``a_t``).

:func:`validate_schedule` is the independent referee used by tests and by
the executor's defensive checks: capacity, slot-exclusivity, barrier and
earliest-start-time constraints are all re-verified from first principles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cp.profile import TimetableProfile
from repro.workload.entities import Job, Resource, Task, TaskKind


class SchedulingError(RuntimeError):
    """Raised when the resource manager cannot produce a valid schedule.

    Mirrors Table 2 line 24 ("throw exception"): on well-formed inputs the
    CP model is always feasible, so this indicates a bug or a malformed
    system state, not an over-constrained workload.
    """


class SlotKind(enum.Enum):
    """Which slot pool a task occupies: map or reduce."""
    MAP = "map"
    REDUCE = "reduce"

    @staticmethod
    def for_task(task: Task) -> "SlotKind":
        return SlotKind.MAP if task.kind is TaskKind.MAP else SlotKind.REDUCE


@dataclass(frozen=True)
class TaskAssignment:
    """One task placed on (resource, slot) starting at ``start``."""

    task: Task
    resource_id: int
    slot_index: int
    start: int

    @property
    def end(self) -> int:
        return self.start + self.task.duration

    @property
    def slot_kind(self) -> SlotKind:
        return SlotKind.for_task(self.task)

    def slot_key(self) -> Tuple[int, SlotKind, int]:
        """Hashable identity of the occupied slot: (resource, kind, index)."""
        return (self.resource_id, self.slot_kind, self.slot_index)


@dataclass
class Schedule:
    """A set of task assignments with convenient lookups."""

    assignments: Dict[str, TaskAssignment] = field(default_factory=dict)

    def add(self, assignment: TaskAssignment) -> None:
        """Insert or replace the assignment for its task."""
        self.assignments[assignment.task.id] = assignment

    def get(self, task_id: str) -> Optional[TaskAssignment]:
        """Assignment for ``task_id``, or None when unscheduled."""
        return self.assignments.get(task_id)

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self):
        return iter(self.assignments.values())

    def by_resource(self) -> Dict[Tuple[int, SlotKind], List[TaskAssignment]]:
        """Assignments per (resource, slot kind), sorted by start time.

        This is the per-resource "scheduled tasks sorted by start time" view
        that the Table 2 algorithm walks (lines 5-8).
        """
        out: Dict[Tuple[int, SlotKind], List[TaskAssignment]] = {}
        for a in self.assignments.values():
            out.setdefault((a.resource_id, a.slot_kind), []).append(a)
        for lst in out.values():
            lst.sort(key=lambda a: (a.start, a.task.id))
        return out

    def job_completion(self, job: Job) -> int:
        """Completion time of ``job`` under this schedule."""
        ends = [
            self.assignments[t.id].end
            for t in job.tasks
            if t.id in self.assignments
        ]
        if not ends:
            raise KeyError(f"job {job.id} has no scheduled tasks")
        return max(ends)


def validate_schedule(
    schedule: Schedule,
    jobs: Sequence[Job],
    resources: Sequence[Resource],
    now: Optional[int] = None,
    frozen_task_ids: Iterable[str] = (),
) -> List[str]:
    """Re-verify every constraint of the formulation; returns violations.

    ``frozen_task_ids`` are tasks that were already running when the
    schedule was produced -- their starts may legitimately precede job
    earliest start times (they were fixed by earlier scheduling rounds).
    """
    problems: List[str] = []
    frozen = set(frozen_task_ids)
    resource_by_id = {r.id: r for r in resources}

    # --- slot exclusivity and capacity
    slot_usage: Dict[Tuple[int, SlotKind, int], List[TaskAssignment]] = {}
    kind_profiles: Dict[Tuple[int, SlotKind], TimetableProfile] = {}
    for a in schedule:
        res = resource_by_id.get(a.resource_id)
        if res is None:
            problems.append(f"task {a.task.id}: unknown resource {a.resource_id}")
            continue
        cap = (
            res.map_capacity
            if a.slot_kind is SlotKind.MAP
            else res.reduce_capacity
        )
        if not (0 <= a.slot_index < cap):
            problems.append(
                f"task {a.task.id}: slot index {a.slot_index} outside "
                f"0..{cap - 1} on resource {a.resource_id}"
            )
        slot_usage.setdefault(a.slot_key(), []).append(a)
        prof = kind_profiles.setdefault((a.resource_id, a.slot_kind), TimetableProfile())
        prof.add(a.start, a.end, a.task.demand)

    for key, assignments in slot_usage.items():
        assignments.sort(key=lambda a: a.start)
        for prev, cur in zip(assignments, assignments[1:]):
            if cur.start < prev.end:
                problems.append(
                    f"slot {key}: tasks {prev.task.id} and {cur.task.id} overlap"
                )

    for (rid, kind), prof in kind_profiles.items():
        res = resource_by_id[rid]
        cap = res.map_capacity if kind is SlotKind.MAP else res.reduce_capacity
        peak = prof.max_height()
        if peak > cap:
            problems.append(
                f"resource {rid} {kind.value}: peak usage {peak} > capacity {cap}"
            )

    # --- per-job constraints
    for job in jobs:
        scheduled = [
            schedule.get(t.id) for t in job.tasks if schedule.get(t.id) is not None
        ]
        if not scheduled:
            continue
        # earliest start times (constraint 2) -- frozen tasks exempt
        for a in scheduled:
            if a.task.id in frozen:
                continue
            if a.start < job.earliest_start:
                problems.append(
                    f"task {a.task.id}: starts {a.start} before job {job.id} "
                    f"earliest start {job.earliest_start}"
                )
            if now is not None and a.start < now:
                problems.append(
                    f"task {a.task.id}: starts {a.start} in the past (now={now})"
                )
        # stage barriers: constraint (3) for MapReduce, per-edge for DAGs
        # (including data-transfer delays on workflow edges)
        for pred_tasks, succ_tasks, delay, tag in _stage_edges(job):
            pred_ends = [
                schedule.get(t.id).end
                for t in pred_tasks
                if schedule.get(t.id) is not None
            ]
            succ_starts = [
                schedule.get(t.id).start
                for t in succ_tasks
                if schedule.get(t.id) is not None
            ]
            if (
                pred_ends
                and succ_starts
                and min(succ_starts) < max(pred_ends) + delay
            ):
                problems.append(
                    f"job {job.id} {tag}: successor stage starts "
                    f"{min(succ_starts)} before predecessor ends "
                    f"{max(pred_ends)} (+ delay {delay})"
                )
    return problems


def _stage_edges(job):
    """Yield (pred tasks, succ tasks, transfer delay, label) per barrier edge.

    MapReduce jobs expose the single map -> reduce edge (delay 0); workflow
    jobs (anything with ``topological_structure``) expose one edge per DAG
    arc with its data-transfer delay.
    """
    if hasattr(job, "topological_structure"):
        stages, preds, delays = job.topological_structure()
        for i, ps in enumerate(preds):
            for p, d in zip(ps, delays[i]):
                yield (
                    stages[p].tasks,
                    stages[i].tasks,
                    d,
                    f"{stages[p].name}->{stages[i].name}",
                )
        return
    if job.map_tasks and job.reduce_tasks:
        yield job.map_tasks, job.reduce_tasks, 0, "map->reduce"
