"""Deterministic fault injection and recovery support.

Real MapReduce clusters lose tasks and nodes and suffer stragglers; the
paper's Table 2 algorithm is *built* for that -- any scheduling event
re-solves the CP over unstarted tasks while freezing running ones -- but a
reproduction that only ever exercises the happy path never feeds it a
failure event.  This package supplies those events:

* :class:`~repro.faults.model.FaultModel` -- the declarative description of
  what can go wrong: a per-attempt task failure hazard, straggler /
  execution-time perturbation factors, and resource outage windows (explicit
  or drawn from a per-resource Poisson process).
* :class:`~repro.faults.injector.FaultInjector` -- turns the model into
  concrete simulation outcomes, drawing every random quantity from dedicated
  :class:`~repro.sim.rng.RandomStreams` streams so a seeded run is exactly
  reproducible and independent of the workload's own streams.

The executor consumes attempt outcomes (actual duration + optional failure
point); the resource manager consumes outage windows and implements the
recovery policy (re-queue, bounded retries, re-plan, pool shrink/regrow).
With no :class:`FaultModel` configured -- the default -- nothing in the
happy path changes.
"""

from repro.faults.injector import AttemptOutcome, FaultInjector
from repro.faults.model import FaultModel, OutageWindow

__all__ = [
    "AttemptOutcome",
    "FaultInjector",
    "FaultModel",
    "OutageWindow",
]
