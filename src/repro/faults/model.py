"""Declarative fault scenario description.

A :class:`FaultModel` says *what can go wrong* during a run; it carries no
randomness of its own.  The :class:`~repro.faults.injector.FaultInjector`
turns it into concrete outcomes using seeded random streams, so two runs
with the same model (and seed) inject byte-identical fault schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class OutageWindow:
    """One resource outage: ``resource_id`` is down during ``[start, start+duration)``.

    Tasks running on the resource when the window opens are killed; the
    resource rejoins the pool at ``start + duration``.  Overlapping windows
    on the same resource compose (the resource is down while any window
    covers the current time).
    """

    resource_id: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"outage start {self.start} < 0")
        if self.duration <= 0:
            raise ValueError(f"outage duration {self.duration} must be positive")

    @property
    def end(self) -> float:
        """Recovery time of the window."""
        return self.start + self.duration


@dataclass(frozen=True)
class FaultModel:
    """Everything that can go wrong, with all knobs off by default.

    The default instance is inert (``enabled`` is False): constructing a
    resource manager with it changes nothing on the happy path.
    """

    #: Probability that one task *attempt* fails partway through execution.
    #: The failure point is drawn uniformly over the attempt's (perturbed)
    #: duration, so failures land at fractional simulation times.
    task_failure_prob: float = 0.0
    #: Probability that an attempt runs ``straggler_factor`` times longer
    #: than planned (the classic straggler: same work, slow machine).
    straggler_prob: float = 0.0
    #: Execution-time multiplier applied to straggling attempts.
    straggler_factor: float = 2.0
    #: Sigma of a LogNormal(0, sigma^2) multiplicative jitter applied to
    #: *every* attempt (0 = off).  Models run-to-run execution variance.
    jitter_sigma: float = 0.0
    #: Explicit outage windows (deterministic part of the scenario).
    outages: Tuple[OutageWindow, ...] = field(default_factory=tuple)
    #: Per-resource Poisson rate of random outage starts (0 = off).
    outage_rate: float = 0.0
    #: Duration range U[lo, hi] of randomly drawn outages.
    outage_duration_range: Tuple[float, float] = (0.0, 0.0)
    #: Random outages are drawn over ``[0, outage_horizon)``.
    outage_horizon: float = 0.0
    #: Master seed of the injector's dedicated random streams.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("task_failure_prob", "straggler_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} {p} outside [0, 1]")
        if self.straggler_factor <= 0:
            raise ValueError(f"straggler_factor {self.straggler_factor} must be positive")
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter_sigma {self.jitter_sigma} < 0")
        if self.outage_rate < 0:
            raise ValueError(f"outage_rate {self.outage_rate} < 0")
        if self.outage_rate > 0:
            lo, hi = self.outage_duration_range
            if not 0 < lo <= hi:
                raise ValueError(
                    f"outage_duration_range {self.outage_duration_range} must "
                    f"satisfy 0 < lo <= hi when outage_rate > 0"
                )
            if self.outage_horizon <= 0:
                raise ValueError(
                    "outage_rate > 0 needs a positive outage_horizon"
                )

    @property
    def enabled(self) -> bool:
        """Whether any fault mechanism is active (False for the default)."""
        return bool(
            self.task_failure_prob > 0
            or self.straggler_prob > 0
            or self.jitter_sigma > 0
            or self.outages
            or self.outage_rate > 0
        )

    @property
    def perturbs_durations(self) -> bool:
        """Whether execution times can differ from their planned values."""
        return self.straggler_prob > 0 or self.jitter_sigma > 0
