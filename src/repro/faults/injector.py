"""Turns a :class:`~repro.faults.model.FaultModel` into concrete outcomes.

Three dedicated random streams (failure coin flips, duration perturbation,
outage placement) keep the injector independent of the workload generators'
streams: enabling faults never perturbs the job stream, and varying one
fault dimension does not reshuffle the draws of the others -- the same
common-random-numbers discipline the workload generators follow.

Determinism: the simulation dispatches events in a fixed order for a given
seed, so the per-attempt draws (consumed in dispatch order) and the
pre-drawn outage windows are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.faults.model import FaultModel, OutageWindow
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.sim.rng import RandomStreams
from repro.workload.entities import Resource, Task


@dataclass(frozen=True)
class AttemptOutcome:
    """What actually happens to one task attempt.

    ``duration`` is the realised execution time (equal to the planned
    duration when no perturbation applies).  ``fails_after`` is the time
    into the attempt at which it dies, or None for a successful attempt;
    it is strictly less than ``duration`` and may be fractional.
    """

    duration: int
    fails_after: Optional[float] = None

    @property
    def fails(self) -> bool:
        """Whether this attempt ends in a failure rather than completion."""
        return self.fails_after is not None


class FaultInjector:
    """Draws per-attempt outcomes and outage schedules from seeded streams."""

    #: Stream names (stable across runs; distinct from all workload streams).
    STREAM_FAILURE = "fault.task-failure"
    STREAM_PERTURB = "fault.perturbation"
    STREAM_OUTAGE = "fault.outage"

    def __init__(
        self,
        model: FaultModel,
        resources: Iterable[Resource],
        streams: Optional[RandomStreams] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.model = model
        self.resources = list(resources)
        streams = streams if streams is not None else RandomStreams(model.seed)
        #: The stream registry, kept for checkpoint state capture.
        self.streams = streams
        self._failure = streams.distributions(self.STREAM_FAILURE)
        self._perturb = streams.distributions(self.STREAM_PERTURB)
        self._outage = streams.distributions(self.STREAM_OUTAGE)
        # Draw counters (no-ops without a registry): what the streams
        # *produced*, as opposed to the collector's what-the-run-observed.
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_attempts = registry.counter("faults.attempts_drawn")
        self._m_failures = registry.counter("faults.failures_drawn")
        self._m_stragglers = registry.counter("faults.stragglers_drawn")
        self._m_outages = registry.counter("faults.outage_windows")

    # ----------------------------------------------------------- attempts
    def attempt_outcome(self, task: Task) -> AttemptOutcome:
        """Draw the fate of one execution attempt of ``task``.

        Perturbation applies to the task's *nominal* duration (so a retried
        straggler does not compound factors across attempts), and the
        failure point is uniform over the realised duration.
        """
        m = self.model
        nominal = (
            task.nominal_duration
            if task.nominal_duration is not None
            else task.duration
        )
        self._m_attempts.inc()
        duration = float(nominal)
        if m.straggler_prob > 0 and self._perturb.bernoulli(m.straggler_prob):
            duration *= m.straggler_factor
            self._m_stragglers.inc()
        if m.jitter_sigma > 0:
            duration *= self._perturb.lognormal(0.0, m.jitter_sigma**2)
        realised = max(1, int(round(duration)))
        fails_after: Optional[float] = None
        if m.task_failure_prob > 0 and self._failure.bernoulli(
            m.task_failure_prob
        ):
            # uniform() draws from the half-open [0, realised), so the
            # attempt always dies strictly before it would have completed.
            fails_after = self._failure.uniform(0.0, float(realised))
            self._m_failures.inc()
        return AttemptOutcome(duration=realised, fails_after=fails_after)

    def rng_state(self) -> dict:
        """The injector's stream states (checkpoint comparison surface).

        Draws are consumed in event-dispatch order, so two same-seed runs
        at the same dispatch position have byte-equal stream states.
        """
        return self.streams.state_dict()

    # ------------------------------------------------------------ outages
    def outage_windows(self) -> List[OutageWindow]:
        """The run's outage schedule: explicit windows plus random draws.

        Random outages follow a per-resource Poisson process of rate
        ``outage_rate`` over ``[0, outage_horizon)`` with U[lo, hi]
        durations; a resource's next outage is drawn after the previous
        one's recovery (a machine cannot fail while already down).
        """
        windows = list(self.model.outages)
        m = self.model
        if m.outage_rate > 0:
            lo, hi = m.outage_duration_range
            for resource in self.resources:
                t = self._outage.exponential_rate(m.outage_rate)
                while t < m.outage_horizon:
                    d = self._outage.uniform(lo, hi)
                    windows.append(
                        OutageWindow(resource.id, start=t, duration=d)
                    )
                    t = t + d + self._outage.exponential_rate(m.outage_rate)
        windows.sort(key=lambda w: (w.start, w.resource_id))
        self._m_outages.inc(len(windows))
        return windows
