"""Run-scoped metrics registry: counters, gauges, histograms.

Every instrumented layer (sim kernel, executor, resource manager, fault
injector, CP solver) reports into one :class:`MetricsRegistry` per run.
Instruments are cheap mutable cells -- no locks, no label sets -- because a
run is single-threaded; the registry exists so a trace file or a test can
snapshot *all* of a run's internal counters in one call.

When observability is disabled the :data:`NULL_REGISTRY` hands out shared
no-op instruments, so hot paths can hold an instrument unconditionally and
call ``inc()`` / ``observe()`` without branching or allocating.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple, Union

#: Default histogram boundaries for wall-clock latencies in seconds
#: (scheduler invocations sit in the 1 ms .. 5 s range at paper scale).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class Counter:
    """A monotonically increasing count (events, retries, solves...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, simulated clock, pool size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram of observations (latency distributions).

    ``boundaries`` are the upper bounds of the finite buckets, strictly
    increasing; one implicit overflow bucket catches everything above the
    last boundary.  ``counts[i]`` is the number of observations ``<=
    boundaries[i]`` but greater than the previous boundary.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r}: boundaries must be strictly "
                f"increasing and non-empty, got {boundaries!r}"
            )
        self.name = name
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Snapshot: boundaries, per-bucket counts, sum and count."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by the null registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        """Discard the increment (observability disabled)."""


class _NullGauge(Gauge):
    """Shared no-op gauge handed out by the null registry."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the observation (observability disabled)."""


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by the null registry."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation (observability disabled)."""


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")

Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments for one run; get-or-create by name."""

    __slots__ = ("_instruments",)

    #: Whether instruments handed out actually record (False on the null
    #: registry) -- lets callers skip building expensive observations.
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, cls, *args) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise ValueError(
                f"instrument {name!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        return self._get(name, Histogram, boundaries)

    def instruments(self) -> Dict[str, Instrument]:
        """The live instruments by name (a copy; exporters iterate it)."""
        return dict(self._instruments)

    def as_dict(self) -> Dict[str, object]:
        """Snapshot every instrument, sorted by name.

        Counters and gauges collapse to their value; histograms to their
        :meth:`Histogram.as_dict` breakdown.
        """
        out: Dict[str, object] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                out[name] = inst.as_dict()
            else:
                out[name] = inst.value
        return out


class NullMetricsRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments.

    Used when observability is off: callers keep their instrument handles
    and the hot-path ``inc()``/``observe()`` calls do nothing, allocating
    nothing.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str) -> Counter:
        """The shared no-op counter."""
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge."""
        return NULL_GAUGE

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """The shared no-op histogram."""
        return NULL_HISTOGRAM

    def instruments(self) -> Dict[str, Instrument]:
        """Always empty: nothing is registered."""
        return {}

    def as_dict(self) -> Dict[str, object]:
        """Always empty: nothing is recorded."""
        return {}


#: Process-wide null registry (safe to share: its instruments are inert).
NULL_REGISTRY = NullMetricsRegistry()
