"""Span-based tracing with Chrome trace-event output.

One :class:`Tracer` accompanies one run.  Instrumented code opens *spans*
(``with tracer.span("scheduler.invocation"): ...``); the recorder stores one
Chrome trace-event ``X`` (complete) entry per span, loadable in Perfetto or
``chrome://tracing``.  Alongside the Chrome JSON the recorder can emit the
same events as a JSONL log (one JSON object per line) for ad-hoc ``jq``-style
analysis.

Two timebases share the file:

* **pid 1 ("wall")** -- real elapsed time (microseconds since the tracer was
  created), used for scheduler invocations and CP solver phases.  This is
  where scheduling overhead O is visible.
* **pid 2 ("sim")**  -- simulated time (simulated seconds as microseconds),
  used for task executions and job lifecycle instants, one Perfetto row per
  resource.

Determinism contract: the tracer reads clocks only through its two
injectable sources (``wall_clock``, default ``time.perf_counter``, and the
bound sim clock).  It never schedules simulation events and never draws
randomness, so enabling tracing cannot change a run's N/T/P.  When disabled
(no recorder) every call is a no-op returning the shared
:data:`NULL_SPAN` -- nothing is allocated on the fast path.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ioutil import atomic_write_text
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: Chrome trace process ids for the two timebases.
WALL_PID = 1
SIM_PID = 2


class NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        """No-op context entry."""
        return self

    def __exit__(self, *exc: object) -> bool:
        """No-op context exit; never swallows exceptions."""
        return False

    def add(self, **args: object) -> "NullSpan":
        """Discard span annotations (tracing disabled)."""
        return self


#: Singleton no-op span: reused so the disabled path never allocates.
NULL_SPAN = NullSpan()


class Span:
    """An open span; records one complete event when the ``with`` exits."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0", "_sim0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        args: Optional[Dict[str, object]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else {}
        self._t0 = 0.0
        self._sim0 = 0.0

    def add(self, **args: object) -> "Span":
        """Attach extra key/value annotations to the span."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        """Stamp the span's start on both clocks."""
        self._t0 = self._tracer.wall_us()
        self._sim0 = self._tracer.sim_clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        """Record the completed span; exceptions propagate."""
        t1 = self._tracer.wall_us()
        args = self.args
        args["sim_time"] = self._sim0
        self._tracer.recorder.complete(
            self.name, self.cat, self._t0, max(t1 - self._t0, 0.0), args=args
        )
        return False


class TraceRecorder:
    """In-memory Chrome trace-event collector.

    Events accumulate as plain dicts in emission order;
    :meth:`write_chrome` / :meth:`write_jsonl` serialise them at the end of
    the run (tracing never does file I/O mid-simulation).
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int = WALL_PID,
        tid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a complete ("X") span event at ``ts`` lasting ``dur`` us.

        Timestamps are quantised to integer microseconds: the Catapult
        trace-event spec types ``ts``/``dur`` as integers, and Perfetto's
        strict JSON path rejects floats (`tests/obs/test_trace_conformance`
        pins this).
        """
        ev: Dict[str, Any] = {
            "name": name,
            "cat": cat or "repro",
            "ph": "X",
            "ts": int(round(ts)),
            "dur": int(round(dur)),
            "pid": pid,
            "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        pid: int = WALL_PID,
        tid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an instant ("i") event -- a point-in-time marker."""
        ev: Dict[str, Any] = {
            "name": name,
            "cat": cat or "repro",
            "ph": "i",
            "s": "t",
            "ts": int(round(ts)),
            "pid": pid,
            "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def counter(
        self,
        name: str,
        ts: float,
        values: Dict[str, float],
        pid: int = WALL_PID,
    ) -> None:
        """Record a counter ("C") sample (rendered as a track in Perfetto)."""
        self.events.append(
            {
                "name": name,
                "cat": "metrics",
                "ph": "C",
                "ts": int(round(ts)),
                "pid": pid,
                "tid": 0,
                "args": dict(values),
            }
        )

    def _metadata_events(self) -> List[Dict[str, Any]]:
        names = [
            ("process_name", WALL_PID, 0, {"name": "wall (scheduler/solver)"}),
            ("process_name", SIM_PID, 0, {"name": "sim (tasks/jobs)"}),
        ]
        return [
            {"name": n, "ph": "M", "pid": pid, "tid": tid, "args": args}
            for n, pid, tid, args in names
        ]

    def chrome_trace(
        self, metrics: Optional[Dict[str, object]] = None
    ) -> Dict[str, Any]:
        """The full Chrome trace-event document as a dict."""
        doc: Dict[str, Any] = {
            "traceEvents": self._metadata_events() + self.events,
            "displayTimeUnit": "ms",
        }
        if metrics:
            doc["otherData"] = {"metrics": metrics}
        return doc

    def write_chrome(
        self, path: str, metrics: Optional[Dict[str, object]] = None
    ) -> None:
        """Write the Chrome trace JSON document to ``path`` atomically."""
        atomic_write_text(path, json.dumps(self.chrome_trace(metrics)))

    def write_jsonl(
        self, path: str, metrics: Optional[Dict[str, object]] = None
    ) -> None:
        """Write one JSON object per event to ``path`` (JSONL log).

        A final ``{"name": "metrics.snapshot", ...}`` line carries the
        metrics-registry snapshot when one is supplied.
        """
        lines = [json.dumps(ev) for ev in self.events]
        if metrics is not None:
            lines.append(
                json.dumps(
                    {"name": "metrics.snapshot", "ph": "M", "args": metrics}
                )
            )
        atomic_write_text(path, "".join(line + "\n" for line in lines))


def _zero_clock() -> float:
    """Default sim clock before a simulator is bound."""
    return 0.0


class Tracer:
    """Front-end the instrumented layers talk to.

    ``recorder=None`` builds a *disabled* tracer: ``enabled`` is False,
    :meth:`span` returns :data:`NULL_SPAN`, and the attached registry is the
    shared null registry -- the whole surface becomes no-ops while call
    sites stay branch-free.  A disabled tracer still carries the injectable
    ``wall_clock``, which the resource manager uses to measure overhead O,
    so tests can pin O deterministically with or without tracing.
    """

    __slots__ = ("recorder", "enabled", "wall_clock", "sim_clock", "registry", "_epoch")

    def __init__(
        self,
        recorder: Optional[TraceRecorder] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        sim_clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.recorder = recorder
        self.enabled = recorder is not None
        self.wall_clock = wall_clock if wall_clock is not None else time.perf_counter
        self.sim_clock = sim_clock if sim_clock is not None else _zero_clock
        if registry is None:
            registry = MetricsRegistry() if self.enabled else NULL_REGISTRY
        self.registry = registry
        self._epoch = self.wall_clock() if self.enabled else 0.0

    # ------------------------------------------------------------- clocks
    def bind_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        """Point the tracer at the simulation clock (``lambda: sim.now``)."""
        self.sim_clock = sim_clock

    def wall_us(self) -> float:
        """Wall time in microseconds since the tracer's epoch."""
        return (self.wall_clock() - self._epoch) * 1e6

    # -------------------------------------------------------------- spans
    def span(
        self,
        name: str,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> "Span | NullSpan":
        """Open a wall-clock span; use as a context manager.

        Pass annotations as a prebuilt ``args`` dict (and only build it
        under an ``if tracer.enabled:`` guard when it is expensive).
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def marker(
        self,
        name: str,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A zero-duration span (e.g. a solver phase that was skipped)."""
        if not self.enabled:
            return
        merged = dict(args) if args else {}
        merged["sim_time"] = self.sim_clock()
        self.recorder.complete(name, cat, self.wall_us(), 0.0, args=merged)

    def instant(
        self,
        name: str,
        cat: str = "",
        args: Optional[Dict[str, object]] = None,
        sim_track: bool = False,
    ) -> None:
        """A point event, on the wall track or (``sim_track=True``) sim track."""
        if not self.enabled:
            return
        if sim_track:
            self.recorder.instant(
                name, cat, self.sim_clock() * 1e6, pid=SIM_PID, args=args
            )
        else:
            merged = dict(args) if args else {}
            merged["sim_time"] = self.sim_clock()
            self.recorder.instant(name, cat, self.wall_us(), args=merged)

    def sim_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        tid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """A retroactive span on the simulated timeline (seconds in, us out).

        Used by the executor when a task completes: the span covers the
        attempt's ``[start, end)`` in simulated time, on the row of its
        resource (``tid``).
        """
        if not self.enabled:
            return
        self.recorder.complete(
            name,
            cat,
            start * 1e6,
            max(end - start, 0.0) * 1e6,
            pid=SIM_PID,
            tid=tid,
            args=args,
        )

    def counter_sample(self, name: str, values: Dict[str, float]) -> None:
        """Sample a counter track at the current wall time."""
        if not self.enabled:
            return
        self.recorder.counter(name, self.wall_us(), values)

    # ------------------------------------------------------------- output
    def write(self, path: str) -> Tuple[str, str]:
        """Write the Chrome trace to ``path`` and a JSONL log alongside.

        The JSONL path is ``path`` with its suffix replaced by ``.jsonl``
        (or appended when there is no ``.json`` suffix).  Both files embed
        the final metrics-registry snapshot.  Returns the two paths.
        """
        if not self.enabled:
            raise RuntimeError("cannot write a disabled tracer's trace")
        snapshot = self.registry.as_dict()
        jsonl = (
            path[: -len(".json")] + ".jsonl"
            if path.endswith(".json")
            else path + ".jsonl"
        )
        self.recorder.write_chrome(path, metrics=snapshot)
        self.recorder.write_jsonl(jsonl, metrics=snapshot)
        return path, jsonl


#: Process-wide disabled tracer: the default for every instrumented layer.
NULL_TRACER = Tracer(None)
