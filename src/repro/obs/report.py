"""Self-contained HTML run reports.

One MRCP-RM run -> one HTML file: inline SVG and CSS only, no scripts, no
frameworks, no network access -- the file opens anywhere and archives
alongside the trace it was rendered from.  Sections degrade gracefully
with their inputs:

* **headline tiles** -- the paper's O / N / T / P plus run shape
  (always rendered, from :class:`~repro.metrics.collector.RunMetrics`);
* **cluster Gantt** -- one lane per (resource, kind, slot) with every task
  attempt, failed attempts marked, resource outage windows shaded
  (needs the trace event stream and the resource list);
* **utilization strips** -- per-resource busy fraction over time on a
  sequential ramp (same inputs as the Gantt);
* **slack waterfall** -- per late job, the lateness-attribution
  decomposition of :mod:`repro.obs.forensics` as a stacked bar plus a
  numeric table (needs attributions);
* **solver effort** -- solves by phase, phase wall times, per-propagator
  counters (from the run metrics when solver profiling was on);
* **fault counters** -- when the run was fault-injected.

Colors are a fixed, CVD-validated categorical order (never cycled); task
kinds take the first two slots, attribution components the first four,
faults use the reserved status red, and both light and dark modes are
explicit steps of the same hues (selected, not auto-inverted).
"""

from __future__ import annotations

import html
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioutil import atomic_write_text
from repro.obs.forensics import (
    AttemptRecord,
    LatenessAttribution,
    outage_windows,
    parse_attempts,
)

if TYPE_CHECKING:  # import cycle: repro.cp -> repro.obs -> repro.metrics
    from repro.metrics.collector import RunMetrics

#: Fixed categorical assignment (validated palette, light / dark steps).
_COLORS = {
    "map": ("#2a78d6", "#3987e5"),  # slot 1: blue
    "reduce": ("#1baf7a", "#199e70"),  # slot 3: aqua (skip orange next to it)
    "contention": ("#2a78d6", "#3987e5"),  # slot 1
    "solver": ("#eb6834", "#d95926"),  # slot 2
    "fault": ("#1baf7a", "#199e70"),  # slot 3
    "residual": ("#eda100", "#c98500"),  # slot 4
    "failed": ("#e34948", "#e66767"),  # reserved status: serious
}

#: Sequential blue ramp (light mode steps 100->700) for utilization.
_SEQ = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #706f6a;
  --grid: #dddcd7; --outage: #706f6a;
  --c-map: #2a78d6; --c-reduce: #1baf7a; --c-failed: #e34948;
  --c-contention: #2a78d6; --c-solver: #eb6834; --c-fault: #1baf7a;
  --c-residual: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262625;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #96958c;
    --grid: #383835; --outage: #96958c;
    --c-map: #3987e5; --c-reduce: #199e70; --c-failed: #e66767;
    --c-contention: #3987e5; --c-solver: #d95926; --c-fault: #199e70;
    --c-residual: #c98500;
  }
}
html { background: var(--surface-1); }
body {
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary); background: var(--surface-1);
  max-width: 1020px; margin: 0 auto; padding: 24px 16px 64px;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
p.sub { color: var(--text-secondary); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-2); border-radius: 8px; padding: 10px 16px;
  min-width: 108px;
}
.tile .v { font-size: 22px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .l { font-size: 12px; color: var(--text-secondary); }
table { border-collapse: collapse; margin: 8px 0; }
th, td {
  text-align: right; padding: 3px 12px; font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
th:first-child, td:first-child { text-align: left; }
tbody tr { border-top: 1px solid var(--grid); }
svg text { fill: var(--text-secondary); font-size: 10px; }
svg .lane-label { fill: var(--text-muted); }
.legend { display: flex; gap: 16px; font-size: 12px;
  color: var(--text-secondary); margin: 4px 0 8px; align-items: center; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.note { color: var(--text-muted); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float, digits: int = 1) -> str:
    return f"{value:,.{digits}f}"


def _tile(value: str, label: str) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
    )


def _tiles(metrics: RunMetrics) -> str:
    tiles = [
        _tile(f"{metrics.avg_sched_overhead * 1000:.2f} ms", "O · overhead/job"),
        _tile(str(metrics.late_jobs), "N · late jobs"),
        _tile(_fmt(metrics.avg_turnaround), "T · avg turnaround (s)"),
        _tile(f"{metrics.percent_late:.1f}%", "P · percent late"),
        _tile(
            f"{metrics.jobs_completed}/{metrics.jobs_arrived}",
            "jobs completed/arrived",
        ),
        _tile(_fmt(float(metrics.makespan), 0), "makespan (s)"),
        _tile(str(metrics.scheduler_invocations), "scheduler invocations"),
    ]
    if metrics.jobs_failed:
        tiles.append(_tile(str(metrics.jobs_failed), "jobs failed"))
    if metrics.late_jobs:
        tiles.append(
            _tile(_fmt(metrics.mean_tardiness), "mean tardiness (s)")
        )
        tiles.append(
            _tile(_fmt(float(metrics.max_tardiness), 0), "max tardiness (s)")
        )
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _ticks(span: float, n: int = 6) -> List[float]:
    if span <= 0:
        return [0.0]
    raw = span / n
    magnitude = 10 ** max(len(str(int(raw))) - 1, 0)
    step = max(int(round(raw / magnitude)) * magnitude, 1)
    return [t for t in range(0, int(span) + 1, int(step))]


def _time_axis(x0: float, width: float, span: float, y: float) -> str:
    parts = []
    for t in _ticks(span):
        x = x0 + (t / span) * width if span else x0
        parts.append(
            f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{x:.1f}" y="{y + 12:.1f}" text-anchor="middle">'
            f"{t:,}</text>"
        )
    return "".join(parts)


_MAX_GANTT_LANES = 96


def _gantt(
    attempts: Sequence[AttemptRecord],
    resources: Sequence,
    outages: Sequence[Mapping[str, float]],
    span: float,
) -> str:
    """Per-resource Gantt: map/reduce slot lanes, faults, outage shading."""
    if not attempts or not resources or span <= 0:
        return '<p class="note">no task attempts in the trace.</p>'
    lanes: List[tuple] = []  # (resource_id, kind, slot)
    for r in resources:
        for slot in range(r.map_capacity):
            lanes.append((r.id, "MAP", slot))
        for slot in range(r.reduce_capacity):
            lanes.append((r.id, "REDUCE", slot))
    truncated = len(lanes) > _MAX_GANTT_LANES
    lanes = lanes[:_MAX_GANTT_LANES]
    lane_index = {key: i for i, key in enumerate(lanes)}
    lane_h, x0, width = 14, 90, 860
    height = len(lanes) * lane_h
    svg = [
        f'<svg viewBox="0 0 {x0 + width + 10} {height + 20}" '
        f'width="100%" role="img" aria-label="cluster Gantt">'
    ]
    svg.append(_time_axis(x0, width, span, height))

    def x(t: float) -> float:
        return x0 + (t / span) * width

    # outage shading behind the bars, across the resource's lanes
    for w in outages:
        rows = [i for (rid, _, _), i in lane_index.items() if rid == w["resource"]]
        if not rows:
            continue
        y = min(rows) * lane_h
        h = (max(rows) - min(rows) + 1) * lane_h
        svg.append(
            f'<rect x="{x(w["start"]):.1f}" y="{y:.1f}" '
            f'width="{max(x(w["end"]) - x(w["start"]), 1):.1f}" h'
            f'eight="{h:.1f}" fill="var(--outage)" opacity="0.18">'
            f"<title>outage: resource {int(w['resource'])}, "
            f"{w['start']:.0f}-{w['end']:.0f}s</title></rect>"
        )
    # lane separators + labels per resource block
    prev_rid = None
    for (rid, kind, slot), i in lane_index.items():
        y = i * lane_h
        if rid != prev_rid:
            svg.append(
                f'<line x1="{x0}" y1="{y}" x2="{x0 + width}" y2="{y}" '
                f'stroke="var(--grid)" stroke-width="1"/>'
            )
            prev_rid = rid
        svg.append(
            f'<text class="lane-label" x="{x0 - 6}" y="{y + lane_h - 4}" '
            f'text-anchor="end">r{rid} {kind.lower()[:3]}{slot}</text>'
        )
    for a in attempts:
        key = (a.resource_id, a.kind, a.slot)
        i = lane_index.get(key)
        if i is None:
            continue
        y = i * lane_h + 2
        fill = (
            "var(--c-failed)"
            if a.outcome != "completed"
            else ("var(--c-map)" if a.kind == "MAP" else "var(--c-reduce)")
        )
        w = max(x(a.end) - x(a.start), 1.5)
        state = "" if a.outcome == "completed" else f" [{a.outcome}]"
        svg.append(
            f'<rect x="{x(a.start):.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{lane_h - 4:.1f}" rx="2" fill="{fill}" '
            f'stroke="var(--surface-1)" stroke-width="1">'
            f"<title>{_esc(a.task_id)}{state}: job {a.job_id}, "
            f"{a.start:.0f}-{a.end:.0f}s on r{a.resource_id} "
            f"{a.kind.lower()} slot {a.slot}</title></rect>"
        )
    svg.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--c-map)"></span>'
        "map task</span>"
        '<span><span class="sw" style="background:var(--c-reduce)"></span>'
        "reduce task</span>"
        '<span><span class="sw" style="background:var(--c-failed)"></span>'
        "failed/killed attempt</span>"
        '<span><span class="sw" style="background:var(--outage);'
        'opacity:.4"></span>resource outage</span></div>'
    )
    note = (
        f'<p class="note">showing the first {_MAX_GANTT_LANES} slot lanes.</p>'
        if truncated
        else ""
    )
    return legend + "".join(svg) + note


def _utilization(
    attempts: Sequence[AttemptRecord],
    resources: Sequence,
    span: float,
    bins: int = 72,
) -> str:
    """One strip per resource: busy fraction per time bin, sequential ramp."""
    if not attempts or not resources or span <= 0:
        return ""
    slots_of = {r.id: r.map_capacity + r.reduce_capacity for r in resources}
    busy: Dict[int, List[float]] = {r.id: [0.0] * bins for r in resources}
    bin_w = span / bins
    for a in attempts:
        if a.resource_id not in busy:
            continue
        b0 = min(int(a.start / bin_w), bins - 1)
        b1 = min(int(max(a.end - 1e-9, a.start) / bin_w), bins - 1)
        for b in range(b0, b1 + 1):
            lo, hi = b * bin_w, (b + 1) * bin_w
            overlap = min(a.end, hi) - max(a.start, lo)
            if overlap > 0:
                busy[a.resource_id][b] += overlap
    strip_h, x0, width = 16, 90, 860
    rows = [r for r in resources if slots_of[r.id]][:32]
    height = len(rows) * strip_h
    cell_w = width / bins
    svg = [
        f'<svg viewBox="0 0 {x0 + width + 10} {height + 20}" width="100%" '
        f'role="img" aria-label="utilization strips">'
    ]
    for row, r in enumerate(rows):
        y = row * strip_h
        svg.append(
            f'<text class="lane-label" x="{x0 - 6}" y="{y + strip_h - 5}" '
            f'text-anchor="end">r{r.id}</text>'
        )
        for b in range(bins):
            frac = busy[r.id][b] / (slots_of[r.id] * bin_w)
            frac = min(max(frac, 0.0), 1.0)
            if frac <= 0:
                continue
            color = _SEQ[min(int(frac * (len(_SEQ) - 1) + 0.5), len(_SEQ) - 1)]
            svg.append(
                f'<rect x="{x0 + b * cell_w:.1f}" y="{y + 2:.1f}" '
                f'width="{cell_w + 0.2:.1f}" height="{strip_h - 4:.1f}" '
                f'fill="{color}"><title>r{r.id} '
                f"{b * bin_w:.0f}-{(b + 1) * bin_w:.0f}s: "
                f"{100 * frac:.0f}% busy</title></rect>"
            )
    svg.append(_time_axis(x0, width, span, height))
    svg.append("</svg>")
    return (
        '<p class="note">busy slot-fraction per resource over time '
        "(darker = busier; sequential single-hue ramp).</p>" + "".join(svg)
    )


_MAX_WATERFALL_JOBS = 25
_COMPONENT_ORDER = ("contention", "solver", "fault", "residual")
_COMPONENT_LABEL = {
    "contention": "slot contention",
    "solver": "solver delay",
    "fault": "fault recovery",
    "residual": "residual execution",
}


def _waterfall(attributions: Sequence[LatenessAttribution]) -> str:
    """Stacked per-late-job decomposition bars plus the numeric table."""
    if not attributions:
        return (
            '<p class="note">no late jobs: every deadline was met, nothing '
            "to attribute.</p>"
        )
    shown = sorted(
        attributions, key=lambda a: a.tardiness_us, reverse=True
    )[:_MAX_WATERFALL_JOBS]
    max_t = max(a.tardiness for a in shown) or 1.0
    bar_h, x0, width = 20, 70, 760
    height = len(shown) * bar_h
    svg = [
        f'<svg viewBox="0 0 {x0 + width + 110} {height + 6}" width="100%" '
        f'role="img" aria-label="lateness attribution waterfall">'
    ]
    for row, a in enumerate(shown):
        y = row * bar_h + 2
        svg.append(
            f'<text class="lane-label" x="{x0 - 6}" y="{y + bar_h - 8}" '
            f'text-anchor="end">job {a.job_id}</text>'
        )
        cx = float(x0)
        comp = a.components
        for name in _COMPONENT_ORDER:
            seconds = comp[name]
            if seconds <= 0:
                continue
            w = max((seconds / max_t) * width, 1.0)
            svg.append(
                f'<rect x="{cx:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{bar_h - 6:.1f}" rx="2" fill="var(--c-{name})" '
                f'stroke="var(--surface-1)" stroke-width="1">'
                f"<title>job {a.job_id} {_COMPONENT_LABEL[name]}: "
                f"{seconds:.1f}s of {a.tardiness:.1f}s tardiness"
                f"</title></rect>"
            )
            cx += w
        svg.append(
            f'<text x="{cx + 6:.1f}" y="{y + bar_h - 8}">'
            f"{a.tardiness:.0f}s · {_esc(a.dominant())}</text>"
        )
    svg.append("</svg>")
    legend = ['<div class="legend">']
    for name in _COMPONENT_ORDER:
        legend.append(
            f'<span><span class="sw" style="background:var(--c-{name})">'
            f"</span>{_COMPONENT_LABEL[name]}</span>"
        )
    legend.append("</div>")
    rows = []
    for a in sorted(attributions, key=lambda x: x.job_id):
        comp = a.components
        rows.append(
            f"<tr><td>job {a.job_id}</td><td>{a.tardiness:.1f}</td>"
            + "".join(f"<td>{comp[n]:.3f}</td>" for n in _COMPONENT_ORDER)
            + f"<td>{_esc(a.dominant())}</td></tr>"
        )
    table = (
        "<table><thead><tr><th>late job</th><th>tardiness (s)</th>"
        + "".join(f"<th>{_COMPONENT_LABEL[n]} (s)</th>" for n in _COMPONENT_ORDER)
        + "<th>dominant</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )
    note = (
        f'<p class="note">bars show the {len(shown)} latest jobs; '
        "the table lists all late jobs. Components are a capped-waterfall "
        "decomposition and sum exactly to each job's tardiness.</p>"
        if len(shown) < len(attributions)
        else '<p class="note">Components are a capped-waterfall '
        "decomposition and sum exactly to each job's tardiness.</p>"
    )
    return "".join(legend) + "".join(svg) + note + table


#: Telemetry fields drawn as sparkline strips, in display order.  Probe
#: fields use a ``probes.`` prefix; absent fields are skipped silently so
#: baseline runs (no scheduler probes) still render.
_TIMELINE_FIELDS = (
    ("jobs_completed", "jobs completed"),
    ("calendar_size", "event calendar size"),
    ("probes.scheduler.queue_depth", "scheduler queue depth"),
    ("probes.executor.slot_utilization", "slot utilization"),
    ("P", "P · percent late"),
)


def _sample_value(sample: Mapping[str, Any], field: str) -> Optional[float]:
    if field.startswith("probes."):
        value = (sample.get("probes") or {}).get(field[len("probes."):])
    else:
        value = sample.get(field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _timeline_section(
    samples: Sequence[Mapping[str, Any]],
    alerts: Sequence[Mapping[str, Any]] = (),
) -> str:
    """Sparkline strips of the sampled telemetry series + SLO alert marks."""
    if not samples:
        return ""
    span = max(float(s.get("sim_time", 0.0)) for s in samples)
    if span <= 0:
        return ""
    strip_h, x0, width = 36, 150, 800

    def x(t: float) -> float:
        return x0 + (t / span) * width

    strips: List[str] = []
    for row, (field, label) in enumerate(_TIMELINE_FIELDS):
        points = [
            (float(s.get("sim_time", 0.0)), v)
            for s in samples
            if (v := _sample_value(s, field)) is not None
        ]
        if not points:
            continue
        top = len(strips) * strip_h
        hi = max(v for _, v in points)
        lo = min(v for _, v in points)
        scale = (hi - lo) or 1.0
        coords = " ".join(
            f"{x(t):.1f},{top + strip_h - 6 - ((v - lo) / scale) * (strip_h - 12):.1f}"
            for t, v in points
        )
        strips.append(
            f'<text class="lane-label" x="{x0 - 6}" '
            f'y="{top + strip_h / 2 + 3:.1f}" text-anchor="end">'
            f"{_esc(label)}</text>"
            f'<polyline points="{coords}" fill="none" stroke="var(--c-map)" '
            f'stroke-width="1.5"><title>{_esc(label)}: '
            f"min {lo:g}, max {hi:g}</title></polyline>"
        )
    if not strips:
        return ""
    height = len(strips) * strip_h
    marks: List[str] = []
    for alert in alerts:
        if alert.get("state") != "fired":
            continue
        t = float(alert.get("sim_time", 0.0))
        marks.append(
            f'<line x1="{x(t):.1f}" y1="0" x2="{x(t):.1f}" '
            f'y2="{height:.1f}" stroke="var(--c-failed)" stroke-width="1.5" '
            f'stroke-dasharray="3 3"><title>SLO alert '
            f"{_esc(alert.get('name', ''))} fired at t={t:g}s "
            f"(burn {float(alert.get('burn_short', 0.0)):.2f}x)"
            f"</title></line>"
        )
    svg = (
        f'<svg viewBox="0 0 {x0 + width + 10} {height + 20}" width="100%" '
        f'role="img" aria-label="live telemetry timeline">'
        + _time_axis(x0, width, span, height)
        + "".join(strips)
        + "".join(marks)
        + "</svg>"
    )
    fired = sum(1 for a in alerts if a.get("state") == "fired")
    note = (
        f'<p class="note">{len(samples)} samples; each strip is min-max '
        "scaled independently. Dashed red lines mark fired SLO burn-rate "
        f"alerts ({fired} in this run).</p>"
    )
    return note + svg


def _kv_table(title_row: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in title_row)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _solver_section(metrics: RunMetrics) -> str:
    parts: List[str] = []
    if metrics.solves_by_phase:
        parts.append("<h2>Solver: which phase produced the plan</h2>")
        parts.append(
            _kv_table(
                ("phase", "solves"),
                sorted(metrics.solves_by_phase.items()),
            )
        )
    phase_times = [
        ("propagate", metrics.solver_propagate_time),
        ("warm start", metrics.solver_warm_start_time),
        ("tree search", metrics.solver_tree_time),
        ("lns", metrics.solver_lns_time),
    ]
    if any(t > 0 for _, t in phase_times):
        parts.append("<h2>Solver: where the overhead O went</h2>")
        parts.append(
            _kv_table(
                ("phase", "wall seconds"),
                [(n, f"{t:.4f}") for n, t in phase_times],
            )
        )
    if metrics.solver_propagators:
        parts.append("<h2>Solver: propagator effort</h2>")
        parts.append(
            _kv_table(
                ("propagator", "runs", "prunes", "fails"),
                [
                    (name, c["runs"], c["prunes"], c["fails"])
                    for name, c in sorted(
                        metrics.solver_propagators.items(),
                        key=lambda kv: kv[1]["runs"],
                        reverse=True,
                    )
                ],
            )
        )
    return "".join(parts)


def _fault_section(metrics: RunMetrics) -> str:
    if not (metrics.faults_enabled or metrics.fallback_solves):
        return ""
    rows = [
        ("task failures injected", metrics.failures_injected),
        ("tasks killed by outages", metrics.tasks_killed),
        ("stragglers injected", metrics.stragglers_injected),
        ("outage windows", metrics.outages),
        ("retries", metrics.retries),
        ("replans on failure", metrics.replans_on_failure),
        ("fallback solves", metrics.fallback_solves),
        ("jobs failed", metrics.jobs_failed),
    ]
    return "<h2>Fault injection</h2>" + _kv_table(("counter", "value"), rows)


def _resilience_section(metrics: RunMetrics) -> str:
    """Degradation-ladder attribution: which rung planned, breakers opened."""
    if not metrics.solves_by_rung:
        return ""
    rows: List[Tuple[str, object]] = [
        (f"rung: {rung}", metrics.solves_by_rung[rung])
        for rung in ("cp_full", "cp_limited", "edf", "greedy")
        if rung in metrics.solves_by_rung
    ]
    degraded = sum(
        n for rung, n in metrics.solves_by_rung.items() if rung != "cp_full"
    )
    rows.append(("degraded solves (below cp_full)", degraded))
    rows.append(("circuit breakers opened", metrics.breaker_opens))
    return (
        "<h2>Resilience: degradation ladder</h2>"
        + _kv_table(("counter", "value"), rows)
    )


def _plan_history_section(plan_history: Optional[Sequence]) -> str:
    if not plan_history:
        return ""
    by_trigger: Dict[str, int] = {}
    by_outcome: Dict[str, int] = {}
    by_rung: Dict[str, int] = {}
    for rec in plan_history:
        by_trigger[rec.trigger] = by_trigger.get(rec.trigger, 0) + 1
        by_outcome[rec.outcome] = by_outcome.get(rec.outcome, 0) + 1
        rung = getattr(rec, "rung", None)
        if rung is not None:
            by_rung[rung] = by_rung.get(rung, 0) + 1
    total = sum(rec.overhead for rec in plan_history)
    rows = [
        (f"trigger: {k}", v) for k, v in sorted(by_trigger.items())
    ] + [(f"outcome: {k}", v) for k, v in sorted(by_outcome.items())]
    # Rung attribution only says something once a plan came from below
    # the full CP solve (the common all-cp_full case would be noise).
    if set(by_rung) - {"cp_full"}:
        rows += [(f"rung: {k}", v) for k, v in sorted(by_rung.items())]
    rows.append(("total overhead (wall s)", f"{total:.4f}"))
    return (
        "<h2>Plan history</h2>"
        + _kv_table(("invocations", "count"), rows)
    )


def render_report(
    metrics: RunMetrics,
    *,
    resources: Optional[Sequence] = None,
    events: Optional[Iterable[Mapping[str, Any]]] = None,
    attributions: Optional[Sequence[LatenessAttribution]] = None,
    plan_history: Optional[Sequence] = None,
    series: Optional[Sequence[Mapping[str, Any]]] = None,
    alerts: Optional[Sequence[Mapping[str, Any]]] = None,
    title: str = "MRCP-RM run report",
) -> str:
    """Render one run as a single self-contained HTML document (a string).

    Only ``metrics`` is required; the Gantt/utilization sections need
    ``events`` (trace event stream) and ``resources``, the waterfall needs
    ``attributions`` (see :func:`repro.obs.forensics.attribute_lateness`),
    the live timeline needs ``series`` (telemetry samples, see
    :func:`repro.obs.timeseries.read_series_jsonl`) and optionally
    ``alerts`` (SLO alert dicts to mark on the strips).
    """
    events = list(events) if events is not None else []
    attempts = parse_attempts(events) if events else []
    outages = outage_windows(events) if events else []
    span = float(metrics.makespan)
    if attempts:
        span = max(span, max(a.end for a in attempts))

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<p class="sub">single-file report · inline SVG/CSS · '
        "no scripts, no network</p>",
        _tiles(metrics),
    ]
    if series:
        timeline = _timeline_section(series, alerts or ())
        if timeline:
            parts.append("<h2>Live timeline</h2>")
            parts.append(timeline)
    if attempts and resources is not None:
        parts.append("<h2>Cluster Gantt</h2>")
        parts.append(_gantt(attempts, resources, outages, span))
        parts.append("<h2>Utilization</h2>")
        parts.append(_utilization(attempts, resources, span))
    if attributions is not None:
        parts.append("<h2>Why were the late jobs late?</h2>")
        parts.append(_waterfall(attributions))
    parts.append(_solver_section(metrics))
    parts.append(_fault_section(metrics))
    parts.append(_resilience_section(metrics))
    parts.append(_plan_history_section(plan_history))
    parts.append("</body></html>")
    return "\n".join(p for p in parts if p)


def write_report(path: str, metrics: RunMetrics, **kwargs: Any) -> str:
    """Render and atomically write the HTML report to ``path``."""
    document = render_report(metrics, **kwargs)
    atomic_write_text(path, document)
    return path


# ------------------------------------------------------------ sweep report
def utilization_strip(
    events: Iterable[Mapping[str, Any]], resources: Sequence, span: float
) -> str:
    """Public wrapper: per-resource utilization strips from a raw event
    stream (Chrome metadata events are filtered out before parsing)."""
    attempts = parse_attempts([e for e in events if e.get("ph") != "M"])
    return _utilization(attempts, resources, span)


def render_sweep_report(
    *,
    title: str,
    factor: str,
    summary_rows: Sequence[Mapping[str, Any]],
    cell_rows: Sequence[Mapping[str, Any]],
    strips: Sequence[tuple] = (),
) -> str:
    """Render a sweep as one self-contained HTML document.

    ``summary_rows`` feed the per-label aggregate table, ``cell_rows`` the
    per-cell table, ``strips`` is ``(label, svg_html)`` pairs -- one
    utilization strip block per captured cell (may be empty when the sweep
    ran without trace capture).
    """
    ok = sum(1 for r in cell_rows if r.get("status") == "ok")
    failed = len(cell_rows) - ok
    tiles = [
        (str(len(summary_rows)), "configurations"),
        (str(len(cell_rows)), "cells"),
        (str(ok), "ok"),
        (str(failed), "failed"),
    ]
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<p class="sub">single-file sweep report · inline SVG/CSS · '
        "no scripts, no network</p>",
        '<div class="tiles">'
        + "".join(_tile(v, label) for v, label in tiles)
        + "</div>",
        "<h2>Sweep summary</h2>",
        _kv_table(
            (factor, "scheduler", "ok/cells", "O (ms)", "N", "T (s)", "P (%)"),
            [
                (
                    r.get("label", ""),
                    r.get("scheduler", ""),
                    f"{r.get('ok', 0):g}/{r.get('cells', 0):g}",
                    _fmt(1000.0 * r["O"], 2) if "O" in r else "-",
                    _fmt(r["N"], 2) if "N" in r else "-",
                    _fmt(r["T"], 1) if "T" in r else "-",
                    _fmt(r["P"], 1) if "P" in r else "-",
                )
                for r in summary_rows
            ],
        ),
        "<h2>Cells</h2>",
        _kv_table(
            ("cell", "replication", "seed", "status", "attempts", "error"),
            [
                (
                    r.get("label", ""),
                    r.get("replication", ""),
                    r.get("seed", ""),
                    r.get("status", ""),
                    r.get("attempts", ""),
                    r.get("error", "") or "-",
                )
                for r in cell_rows
            ],
        ),
    ]
    if strips:
        parts.append("<h2>Per-cell utilization</h2>")
        for label, strip_html in strips:
            parts.append(f"<h2>{_esc(label)}</h2>")
            parts.append(strip_html or '<p class="note">no trace.</p>')
    parts.append("</body></html>")
    return "\n".join(p for p in parts if p)
