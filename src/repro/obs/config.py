"""Per-run observability configuration.

:class:`ObsConfig` is the declarative surface the CLI and
:class:`~repro.experiments.runner.RunConfig` expose: which log level to
install, where to write the trace, and whether to profile the CP solver's
propagators.  :meth:`ObsConfig.make_tracer` turns it into the live
:class:`~repro.obs.trace.Tracer` a run threads through its layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.logs import configure_logging
from repro.obs.trace import NULL_TRACER, Tracer, TraceRecorder


@dataclass
class ObsConfig:
    """Observability knobs of one run (all off by default)."""

    #: Install the repro log handler at this level (None = leave logging
    #: untouched; library code stays silent under the default NullHandler).
    log_level: Optional[str] = None
    #: Write a Chrome trace-event JSON here (a ``.jsonl`` event log is
    #: written alongside).  Setting this enables tracing.
    trace_out: Optional[str] = None
    #: Collect trace events in memory even without a ``trace_out`` path
    #: (tests and notebooks inspect ``tracer.recorder.events`` directly).
    trace: bool = False
    #: Per-propagator-class prune/fail counters and per-call propagation
    #: timing inside the CP engine (implied by tracing; this turns it on
    #: for untraced runs too).
    profile_solver: bool = False
    #: Record one :class:`~repro.core.mrcp_rm.PlanRecord` per scheduler
    #: invocation (MRCP-RM only).  Forensics -- per-job lateness
    #: attribution -- and the HTML run report consume the history.
    plan_history: bool = False
    #: Injectable wall-clock source (None = ``time.perf_counter``).  Tests
    #: inject a deterministic clock here to pin the overhead metric O.
    wall_clock: Optional[Callable[[], float]] = None

    @property
    def tracing_enabled(self) -> bool:
        """Whether a recorder should be attached to the run's tracer."""
        return self.trace or self.trace_out is not None

    def make_tracer(self) -> Tracer:
        """Build the run's tracer (and configure logging when asked).

        Disabled observability with a default clock returns the shared
        :data:`~repro.obs.trace.NULL_TRACER`; otherwise a fresh tracer is
        built so concurrent runs never share recorders.
        """
        if self.log_level is not None:
            configure_logging(self.log_level)
        if not self.tracing_enabled and self.wall_clock is None:
            return NULL_TRACER
        recorder = TraceRecorder() if self.tracing_enabled else None
        return Tracer(recorder, wall_clock=self.wall_clock)
