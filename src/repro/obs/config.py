"""Per-run observability configuration.

:class:`ObsConfig` is the declarative surface the CLI and
:class:`~repro.experiments.runner.RunConfig` expose: which log level to
install, where to write the trace, whether to profile the CP solver's
propagators, and -- via :class:`~repro.obs.timeseries.TelemetryConfig` --
whether to sample a live telemetry series with SLO burn-rate alerting.
:meth:`ObsConfig.make_tracer` turns it into the live
:class:`~repro.obs.trace.Tracer` a run threads through its layers;
:meth:`ObsConfig.make_sampler` builds the telemetry sampler (or hands out
the shared null sampler when telemetry is off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.obs.logs import configure_logging
from repro.obs.timeseries import (
    NULL_SAMPLER,
    TelemetryConfig,
    TimeSeriesSampler,
)
from repro.obs.slo import SloSpec
from repro.obs.trace import NULL_TRACER, Tracer, TraceRecorder


@dataclass
class ObsConfig:
    """Observability knobs of one run (all off by default)."""

    #: Install the repro log handler at this level (None = leave logging
    #: untouched; library code stays silent under the default NullHandler).
    log_level: Optional[str] = None
    #: Write a Chrome trace-event JSON here (a ``.jsonl`` event log is
    #: written alongside).  Setting this enables tracing.
    trace_out: Optional[str] = None
    #: Collect trace events in memory even without a ``trace_out`` path
    #: (tests and notebooks inspect ``tracer.recorder.events`` directly).
    trace: bool = False
    #: Per-propagator-class prune/fail counters and per-call propagation
    #: timing inside the CP engine (implied by tracing; this turns it on
    #: for untraced runs too).
    profile_solver: bool = False
    #: Record one :class:`~repro.core.mrcp_rm.PlanRecord` per scheduler
    #: invocation (MRCP-RM only).  Forensics -- per-job lateness
    #: attribution -- and the HTML run report consume the history.
    plan_history: bool = False
    #: Injectable wall-clock source (None = ``time.perf_counter``).  Tests
    #: inject a deterministic clock here to pin the overhead metric O.
    wall_clock: Optional[Callable[[], float]] = None
    #: Live telemetry sampling (None or ``enabled=False`` = off; the run
    #: then pays nothing -- the shared null sampler is handed out).
    telemetry: Optional[TelemetryConfig] = None
    #: SLO specs evaluated against the telemetry samples (None = the
    #: stock :func:`repro.obs.slo.default_slos` set when telemetry is on).
    slo: Optional[Tuple[SloSpec, ...]] = None

    @property
    def tracing_enabled(self) -> bool:
        """Whether a recorder should be attached to the run's tracer."""
        return self.trace or self.trace_out is not None

    @property
    def telemetry_enabled(self) -> bool:
        """Whether the run samples a live telemetry series."""
        return self.telemetry is not None and self.telemetry.enabled

    def make_tracer(self) -> Tracer:
        """Build the run's tracer (and configure logging when asked).

        Disabled observability with a default clock returns the shared
        :data:`~repro.obs.trace.NULL_TRACER`; otherwise a fresh tracer is
        built so concurrent runs never share recorders.  Telemetry without
        tracing still gets a real registry -- the sampler scrapes it.
        """
        if self.log_level is not None:
            configure_logging(self.log_level)
        if (
            not self.tracing_enabled
            and self.wall_clock is None
            and not self.telemetry_enabled
        ):
            return NULL_TRACER
        recorder = TraceRecorder() if self.tracing_enabled else None
        registry = None
        if recorder is None and self.telemetry_enabled:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        return Tracer(recorder, wall_clock=self.wall_clock, registry=registry)

    def make_sampler(self) -> TimeSeriesSampler:
        """Build the run's telemetry sampler (the null one when off)."""
        if not self.telemetry_enabled:
            return NULL_SAMPLER
        return TimeSeriesSampler(self.telemetry)
