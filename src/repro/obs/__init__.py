"""Observability: tracing, metrics registry, structured logging.

The paper's evaluation hinges on knowing *where* scheduling overhead O is
spent -- CP propagation vs. tree search vs. LNS vs. matchmaking.  This
package provides the three primitives the rest of the system reports into:

* :class:`~repro.obs.trace.Tracer` -- span-based tracing emitting Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``) plus a JSONL event
  log; zero-overhead no-op when disabled.
* :class:`~repro.obs.metrics.MetricsRegistry` -- run-scoped counters,
  gauges and fixed-bucket histograms.
* :mod:`repro.obs.logs` -- structured ``logging`` under the ``repro.*``
  namespace with an idempotent :func:`~repro.obs.logs.configure_logging`.

See ``docs/OBSERVABILITY.md`` for how to capture and read a trace.
"""

from repro.obs.config import ObsConfig
from repro.obs.logs import configure_logging, get_logger, kv
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SIM_PID,
    WALL_PID,
    NullSpan,
    Span,
    TraceRecorder,
    Tracer,
)

__all__ = [
    "ObsConfig",
    "Tracer",
    "TraceRecorder",
    "Span",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    "WALL_PID",
    "SIM_PID",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "configure_logging",
    "get_logger",
    "kv",
]
