"""Observability: tracing, metrics registry, structured logging.

The paper's evaluation hinges on knowing *where* scheduling overhead O is
spent -- CP propagation vs. tree search vs. LNS vs. matchmaking.  This
package provides the three primitives the rest of the system reports into:

* :class:`~repro.obs.trace.Tracer` -- span-based tracing emitting Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``) plus a JSONL event
  log; zero-overhead no-op when disabled.
* :class:`~repro.obs.metrics.MetricsRegistry` -- run-scoped counters,
  gauges and fixed-bucket histograms.
* :mod:`repro.obs.logs` -- structured ``logging`` under the ``repro.*``
  namespace with an idempotent :func:`~repro.obs.logs.configure_logging`.

Built on top of those primitives:

* :mod:`repro.obs.forensics` -- per-job lateness attribution (why was each
  late job late: contention vs solver vs faults vs execution).
* :mod:`repro.obs.report` -- a self-contained zero-dependency HTML run
  report (Gantt, utilization, slack waterfall, solver tables).
* :mod:`repro.obs.conformance` -- strict Chrome trace-event validation.
* :mod:`repro.obs.timeseries` -- a deterministic sim-time telemetry sampler
  writing bounded in-memory series and series JSONL files.
* :mod:`repro.obs.export` -- OpenMetrics/Prometheus text rendering of the
  metrics registry and sampled series, plus a strict format validator.
* :mod:`repro.obs.slo` -- declarative SLOs with multi-window burn-rate
  alerting over the sampled series.
* :mod:`repro.obs.structdiff` -- shared leaf-level structural diff over
  JSON-like values (checkpoint compare, bench deltas, run diffs).
* :mod:`repro.obs.diff` -- the deterministic run-diff engine: event
  alignment with first-divergence localisation, checkpoint bisection,
  per-job delta waterfalls, sweep and series diffs (exported lazily --
  it imports the run machinery, which imports this package).
* :mod:`repro.obs.diffreport` -- the self-contained HTML diff report
  (also lazy, for the same reason).

See ``docs/OBSERVABILITY.md`` for how to capture and read a trace and
how to diff two runs.
"""

from repro.obs.config import ObsConfig
from repro.obs.conformance import validate_trace_document, validate_trace_events
from repro.obs.forensics import (
    AttemptRecord,
    LatenessAttribution,
    attribute_lateness,
    attributions_csv,
    format_attributions,
    load_trace_events,
    outage_windows,
    parse_attempts,
    write_attributions_csv,
)
from repro.obs.export import (
    render_openmetrics,
    render_series_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.report import render_report, write_report
from repro.obs.logs import configure_logging, get_logger, kv
from repro.obs.slo import (
    BurnWindow,
    SloAlert,
    SloMonitor,
    SloSpec,
    default_slos,
)
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullTimeSeriesSampler,
    SeriesStore,
    TelemetryConfig,
    TimeSeriesSampler,
    read_series_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.structdiff import (
    DiffEntry,
    diff_paths,
    first_mismatch,
    format_entries,
    structural_diff,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SIM_PID,
    WALL_PID,
    NullSpan,
    Span,
    TraceRecorder,
    Tracer,
)

# The diff engine imports repro.experiments.runner, which imports this
# package -- so its surface is re-exported lazily (PEP 562), the same
# pattern the runner uses for the sweep-pool API.
_DIFF_EXPORTS = {
    "DIFF_SCHEMA": "repro.obs.diff",
    "BisectionResult": "repro.obs.diff",
    "EventAlignment": "repro.obs.diff",
    "RunArtifacts": "repro.obs.diff",
    "RunDiff": "repro.obs.diff",
    "align_events": "repro.obs.diff",
    "bisect_divergence": "repro.obs.diff",
    "canonicalize_events": "repro.obs.diff",
    "capture_run_dir": "repro.obs.diff",
    "default_diff_config": "repro.obs.diff",
    "delta_waterfalls": "repro.obs.diff",
    "diff_run_dirs": "repro.obs.diff",
    "diff_runs": "repro.obs.diff",
    "diff_series": "repro.obs.diff",
    "diff_sweeps": "repro.obs.diff",
    "first_divergent_plan": "repro.obs.diff",
    "load_run_dir": "repro.obs.diff",
    "metrics_delta": "repro.obs.diff",
    "write_diff_json": "repro.obs.diff",
    "render_diff_report": "repro.obs.diffreport",
    "write_diff_report": "repro.obs.diffreport",
}


def __getattr__(name: str):
    module_name = _DIFF_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_DIFF_EXPORTS))


__all__ = [
    "ObsConfig",
    "Tracer",
    "TraceRecorder",
    "Span",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    "WALL_PID",
    "SIM_PID",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "configure_logging",
    "get_logger",
    "kv",
    "AttemptRecord",
    "LatenessAttribution",
    "attribute_lateness",
    "attributions_csv",
    "format_attributions",
    "load_trace_events",
    "outage_windows",
    "parse_attempts",
    "write_attributions_csv",
    "render_report",
    "write_report",
    "validate_trace_events",
    "validate_trace_document",
    "TelemetryConfig",
    "TimeSeriesSampler",
    "NullTimeSeriesSampler",
    "NULL_SAMPLER",
    "SeriesStore",
    "read_series_jsonl",
    "render_openmetrics",
    "render_series_openmetrics",
    "validate_openmetrics",
    "write_openmetrics",
    "SloSpec",
    "SloMonitor",
    "SloAlert",
    "BurnWindow",
    "default_slos",
    "DiffEntry",
    "structural_diff",
    "diff_paths",
    "format_entries",
    "first_mismatch",
    *sorted(_DIFF_EXPORTS),
]
