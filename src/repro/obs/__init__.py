"""Observability: tracing, metrics registry, structured logging.

The paper's evaluation hinges on knowing *where* scheduling overhead O is
spent -- CP propagation vs. tree search vs. LNS vs. matchmaking.  This
package provides the three primitives the rest of the system reports into:

* :class:`~repro.obs.trace.Tracer` -- span-based tracing emitting Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``) plus a JSONL event
  log; zero-overhead no-op when disabled.
* :class:`~repro.obs.metrics.MetricsRegistry` -- run-scoped counters,
  gauges and fixed-bucket histograms.
* :mod:`repro.obs.logs` -- structured ``logging`` under the ``repro.*``
  namespace with an idempotent :func:`~repro.obs.logs.configure_logging`.

Built on top of those primitives:

* :mod:`repro.obs.forensics` -- per-job lateness attribution (why was each
  late job late: contention vs solver vs faults vs execution).
* :mod:`repro.obs.report` -- a self-contained zero-dependency HTML run
  report (Gantt, utilization, slack waterfall, solver tables).
* :mod:`repro.obs.conformance` -- strict Chrome trace-event validation.
* :mod:`repro.obs.timeseries` -- a deterministic sim-time telemetry sampler
  writing bounded in-memory series and series JSONL files.
* :mod:`repro.obs.export` -- OpenMetrics/Prometheus text rendering of the
  metrics registry and sampled series, plus a strict format validator.
* :mod:`repro.obs.slo` -- declarative SLOs with multi-window burn-rate
  alerting over the sampled series.

See ``docs/OBSERVABILITY.md`` for how to capture and read a trace.
"""

from repro.obs.config import ObsConfig
from repro.obs.conformance import validate_trace_document, validate_trace_events
from repro.obs.forensics import (
    AttemptRecord,
    LatenessAttribution,
    attribute_lateness,
    attributions_csv,
    format_attributions,
    load_trace_events,
    outage_windows,
    parse_attempts,
    write_attributions_csv,
)
from repro.obs.export import (
    render_openmetrics,
    render_series_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.report import render_report, write_report
from repro.obs.logs import configure_logging, get_logger, kv
from repro.obs.slo import (
    BurnWindow,
    SloAlert,
    SloMonitor,
    SloSpec,
    default_slos,
)
from repro.obs.timeseries import (
    NULL_SAMPLER,
    NullTimeSeriesSampler,
    SeriesStore,
    TelemetryConfig,
    TimeSeriesSampler,
    read_series_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    SIM_PID,
    WALL_PID,
    NullSpan,
    Span,
    TraceRecorder,
    Tracer,
)

__all__ = [
    "ObsConfig",
    "Tracer",
    "TraceRecorder",
    "Span",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    "WALL_PID",
    "SIM_PID",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "configure_logging",
    "get_logger",
    "kv",
    "AttemptRecord",
    "LatenessAttribution",
    "attribute_lateness",
    "attributions_csv",
    "format_attributions",
    "load_trace_events",
    "outage_windows",
    "parse_attempts",
    "write_attributions_csv",
    "render_report",
    "write_report",
    "validate_trace_events",
    "validate_trace_document",
    "TelemetryConfig",
    "TimeSeriesSampler",
    "NullTimeSeriesSampler",
    "NULL_SAMPLER",
    "SeriesStore",
    "read_series_jsonl",
    "render_openmetrics",
    "render_series_openmetrics",
    "validate_openmetrics",
    "write_openmetrics",
    "SloSpec",
    "SloMonitor",
    "SloAlert",
    "BurnWindow",
    "default_slos",
]
