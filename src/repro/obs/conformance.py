"""Chrome trace-event (Catapult) conformance checking.

Perfetto-loadability of our traces is asserted, not assumed: the emitter in
:mod:`repro.obs.trace` is held to the Catapult trace-event field spec by
:func:`validate_trace_events`, which returns a list of human-readable
problems (empty = conformant).  The checks cover the subset of the spec our
traces exercise plus the duration-event pairing rules, so a future emitter
that switches from complete ("X") to begin/end ("B"/"E") events stays
validated:

* ``ph`` must be a known phase character;
* ``ts`` (and ``dur`` on complete events) must be *integers* -- the spec
  types timestamps as int64 microseconds and Perfetto's strict JSON path
  rejects floats;
* ``pid``/``tid`` must be integers;
* instant events need a valid scope ``s`` in {"g", "p", "t"};
* ``B``/``E`` events must nest stack-like per ``(pid, tid)``;
* ``args``, when present, must be a JSON-serialisable mapping.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

#: Phase characters defined by the Catapult trace-event format spec.
VALID_PHASES = frozenset(
    {
        "B", "E",  # duration begin/end
        "X",  # complete
        "i", "I",  # instant (I is the legacy spelling)
        "C",  # counter
        "b", "n", "e",  # async
        "s", "t", "f",  # flow
        "P",  # sample
        "N", "O", "D",  # object created/snapshot/destroyed
        "M",  # metadata
        "V", "v",  # memory dumps
        "R",  # mark
        "c",  # clock sync
        "(", ")",  # context
    }
)

#: Valid scopes for instant events.
INSTANT_SCOPES = frozenset({"g", "p", "t"})

#: Phases that are timestamped samples in the timeline (need ``ts``).
_TIMESTAMPED = frozenset({"B", "E", "X", "i", "I", "C"})


def _is_int(value: Any) -> bool:
    """True for genuine integers (bool is int in Python; reject it)."""
    return isinstance(value, int) and not isinstance(value, bool)


def validate_trace_events(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Check ``events`` against the Catapult field spec; returns problems.

    ``events`` is the ``traceEvents`` array (or the recorder's in-memory
    event list).  An empty return value means the trace is conformant.
    """
    problems: List[str] = []
    # open B-event stacks per (pid, tid)
    stacks: Dict[Tuple[int, int], List[str]] = {}
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or non-string name")
        else:
            where = f"event {i} ({name!r})"
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: invalid ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if key in ev and not _is_int(ev[key]):
                problems.append(f"{where}: {key} {ev[key]!r} is not an int")
        if ph in _TIMESTAMPED:
            if "ts" not in ev:
                problems.append(f"{where}: ph {ph!r} requires ts")
            elif not _is_int(ev["ts"]):
                problems.append(f"{where}: ts {ev['ts']!r} is not an int")
        if ph == "X":
            if "dur" not in ev:
                problems.append(f"{where}: complete event requires dur")
            elif not _is_int(ev["dur"]):
                problems.append(f"{where}: dur {ev['dur']!r} is not an int")
            elif ev["dur"] < 0:
                problems.append(f"{where}: negative dur {ev['dur']}")
        if ph in ("i", "I"):
            scope = ev.get("s", "t")
            if scope not in INSTANT_SCOPES:
                problems.append(f"{where}: instant scope {scope!r} invalid")
        if ph in ("B", "E"):
            key = (ev.get("pid", 0), ev.get("tid", 0))
            stack = stacks.setdefault(key, [])
            if ph == "B":
                stack.append(name if isinstance(name, str) else "?")
            elif not stack:
                problems.append(f"{where}: E without matching B on {key}")
            else:
                stack.pop()
        if "args" in ev:
            args = ev["args"]
            if not isinstance(args, dict):
                problems.append(f"{where}: args is not an object")
            else:
                try:
                    json.dumps(args)
                except (TypeError, ValueError) as exc:
                    problems.append(f"{where}: args not serialisable: {exc}")
    for (pid, tid), stack in stacks.items():
        if stack:
            problems.append(
                f"unclosed B events on pid={pid} tid={tid}: {stack[:5]}"
            )
    return problems


def validate_trace_document(doc: Dict[str, Any]) -> List[str]:
    """Validate a full Chrome trace JSON document (object form)."""
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents array"]
    return validate_trace_events(events)
