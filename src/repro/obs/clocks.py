"""Injectable clocks: the pinned wall clock and the service clock family.

Two distinct time axes run through the codebase:

* The **wall clock** measures real elapsed seconds (the overhead metric O,
  span durations, admission solve latency).  It is injectable everywhere --
  :class:`PinnedClock` replaces it with a deterministic tick counter so
  benchmark and checkpoint runs are byte-identical across machines.
* The **service clock** drives the online front-end (:mod:`repro.service`):
  where the simulator's calendar advances simulated time, a long-running
  service advances *wall* time.  :class:`ServiceClock` is the small
  interface the service code programs against; :class:`WallServiceClock`
  backs it with real time and :class:`ManualServiceClock` with an
  explicitly advanced counter, which is what makes the arrival-batching
  determinism contract testable (same arrivals, any batch size, identical
  verdicts).

``PinnedClock`` historically lived in :mod:`repro.experiments.pool`; it is
re-exported there so existing imports keep working.
"""

from __future__ import annotations

import time


class PinnedClock:
    """Deterministic wall clock: every call advances by a fixed tick.

    Injected as :attr:`repro.obs.config.ObsConfig.wall_clock` so the
    overhead metric O counts clock samples instead of real seconds.  The
    call sequence of an event-driven run is deterministic, hence so is O.
    Picklable (plain attributes) so configs carrying it cross the process
    boundary; workers restart it from zero for every attempt.
    """

    def __init__(self, tick: float = 0.001) -> None:
        self.tick = tick
        self.count = 0

    def __call__(self) -> float:
        self.count += 1
        return self.count * self.tick

    def __repr__(self) -> str:
        # Stable across instances (no id()): configs carrying a pinned
        # clock repr identically, which checkpoint fingerprints rely on.
        return f"PinnedClock(tick={self.tick})"


class ServiceClock:
    """The time source the online service schedules against.

    Deliberately tiny: ``now()`` is all the batching and admission layers
    consume, so a test (or the deterministic load harness) can swap in a
    :class:`ManualServiceClock` and replay an arrival trace exactly.
    """

    def now(self) -> float:
        """Current service time in seconds (monotonic)."""
        raise NotImplementedError


class WallServiceClock(ServiceClock):
    """Real time (``time.monotonic``), for a service facing actual traffic."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()


class ManualServiceClock(ServiceClock):
    """Explicitly advanced time, for deterministic replay.

    ``advance_to`` enforces monotonicity so a shuffled arrival trace fails
    loudly instead of silently time-travelling the admission controller.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (never backwards)."""
        if t < self._now:
            raise ValueError(
                f"manual clock cannot move backwards: {t} < {self._now}"
            )
        self._now = float(t)
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds."""
        return self.advance_to(self._now + dt)

    def __repr__(self) -> str:
        return f"ManualServiceClock(now={self._now})"
