"""Self-contained HTML diff reports for two captured runs.

One :class:`~repro.obs.diff.RunDiff` -> one HTML file, in the same
no-scripts/no-network idiom as :mod:`repro.obs.report` (whose CSS and
layout helpers this module reuses):

* **side-by-side tiles** -- the paper's O / N / T / P for both runs with
  the signed delta under each pair;
* **divergence timeline** -- the shared simulated-time axis with the
  first divergent trace event and the first divergent scheduler
  invocation marked, so the eye lands on *when* the runs forked;
* **per-job delta waterfall** -- a diverging bar per moved job (later
  right, earlier left) with the component decomposition in the table;
* **series overlays** -- the most-diverged telemetry fields drawn as
  paired lines (run A solid, run B dashed) over simulated time;
* **first-divergence detail tables** -- both sides' event and
  PlanRecord at the fork, path by path.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Sequence

from repro.ioutil import atomic_write_text
from repro.obs.diff import _COMPONENTS, _US, RunDiff
from repro.obs.report import _CSS, _esc, _fmt, _kv_table, _tile, _time_axis

#: Bars drawn in the delta waterfall (the table still lists every job).
_MAX_WATERFALL_JOBS = 25

#: Overlay strips drawn (ordered by how far the field diverged).
_MAX_OVERLAY_STRIPS = 4

_COMPONENT_LABEL = {
    "contention": "slot contention",
    "solver": "solver delay",
    "fault": "fault recovery",
    "residual": "residual execution",
}


def _metric_tiles(diff: RunDiff) -> str:
    tiles: List[str] = []
    for key, label in (
        ("O", "O · overhead/job (s)"),
        ("N", "N · late jobs"),
        ("T", "T · avg turnaround (s)"),
        ("P", "P · percent late"),
    ):
        entry = diff.metrics.get(key)
        if entry is None or entry["a"] is None or entry["b"] is None:
            continue
        delta = entry["delta"] or 0.0
        arrow = "=" if delta == 0 else ("▲" if delta > 0 else "▼")
        tiles.append(
            _tile(f"{entry['a']:g} → {entry['b']:g}", f"{label} {arrow}")
        )
    tiles.append(_tile(diff.verdict, "verdict"))
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _span_of(diff: RunDiff) -> float:
    spans = [
        float(art.run.get("counts", {}).get("makespan") or 0.0)
        for art in (diff.a, diff.b)
    ]
    return max(spans + [0.0])


def _timeline(diff: RunDiff) -> str:
    """Shared time axis with the first-divergence markers."""
    span = _span_of(diff)
    if span <= 0:
        return ""
    x0, width, height = 90, 860, 56

    def x(t: float) -> float:
        return x0 + (min(t, span) / span) * width

    marks: List[str] = []
    fd = diff.alignment.first_divergence
    if fd is not None:
        t = float(fd["sim_time"])
        marks.append(
            f'<line x1="{x(t):.1f}" y1="0" x2="{x(t):.1f}" '
            f'y2="{height}" stroke="var(--c-failed)" stroke-width="2" '
            f'stroke-dasharray="4 3"><title>first divergent event: '
            f"index {fd['index']} at t={t:g}s</title></line>"
            f'<text x="{x(t) + 4:.1f}" y="12">event #{fd["index"]} '
            f"@ {t:g}s</text>"
        )
    inv = diff.invocation
    if inv is not None:
        t = float(inv["sim_time"])
        marks.append(
            f'<line x1="{x(t):.1f}" y1="0" x2="{x(t):.1f}" '
            f'y2="{height}" stroke="var(--c-solver)" stroke-width="2">'
            f"<title>first divergent plan: invocation {inv['index']} "
            f"at t={t:g}s</title></line>"
            f'<text x="{x(t) + 4:.1f}" y="28">plan inv {inv["index"]} '
            f"@ {t:g}s</text>"
        )
    if not marks:
        return (
            '<p class="note">no divergence marker: the canonical event '
            "streams and plan histories are identical.</p>"
        )
    svg = (
        f'<svg viewBox="0 0 {x0 + width + 10} {height + 20}" width="100%" '
        f'role="img" aria-label="divergence timeline">'
        + _time_axis(x0, width, span, height)
        + "".join(marks)
        + "</svg>"
    )
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--c-failed)"></span>'
        "first divergent trace event</span>"
        '<span><span class="sw" style="background:var(--c-solver)"></span>'
        "first divergent scheduler invocation</span></div>"
    )
    return legend + svg


def _delta_waterfall(waterfalls: Sequence[Mapping[str, Any]]) -> str:
    """Diverging per-job bars: tardiness growth right, shrinkage left."""
    if not waterfalls:
        return (
            '<p class="note">no per-job movement: every job is exactly as '
            "late (or punctual) in both runs.</p>"
        )
    shown = sorted(waterfalls, key=lambda w: abs(w["delta_us"]), reverse=True)
    shown = shown[:_MAX_WATERFALL_JOBS]
    max_abs = max(abs(w["delta_us"]) for w in shown) or 1
    bar_h, x0, width = 20, 70, 760
    mid = x0 + width / 2
    height = len(shown) * bar_h
    svg = [
        f'<svg viewBox="0 0 {x0 + width + 110} {height + 6}" width="100%" '
        f'role="img" aria-label="per-job delta waterfall">',
        f'<line x1="{mid:.1f}" y1="0" x2="{mid:.1f}" y2="{height}" '
        f'stroke="var(--grid)" stroke-width="1"/>',
    ]
    for row, w in enumerate(shown):
        y = row * bar_h + 2
        delta = w["delta_us"]
        bar_w = max((abs(delta) / max_abs) * (width / 2), 1.5)
        bx = mid if delta >= 0 else mid - bar_w
        fill = "var(--c-failed)" if delta > 0 else "var(--c-reduce)"
        parts = ", ".join(
            f"{name} {w['components_us'][name] / _US:+.1f}s"
            for name in _COMPONENTS
            if w["components_us"][name]
        )
        svg.append(
            f'<text class="lane-label" x="{x0 - 6}" y="{y + bar_h - 8}" '
            f'text-anchor="end">job {w["job_id"]}</text>'
            f'<rect x="{bx:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
            f'height="{bar_h - 6:.1f}" rx="2" fill="{fill}" '
            f'stroke="var(--surface-1)" stroke-width="1">'
            f"<title>job {w['job_id']} ({w['direction']}): "
            f"{delta / _US:+.1f}s ({parts or 'no component moved'})"
            f"</title></rect>"
            f'<text x="{(mid + bar_w + 6) if delta >= 0 else x0 + width + 6:.1f}" '
            f'y="{y + bar_h - 8}">{delta / _US:+.1f}s · '
            f"{_esc(w['direction'])}</text>"
        )
    svg.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--c-failed)"></span>'
        "later in B</span>"
        '<span><span class="sw" style="background:var(--c-reduce)"></span>'
        "earlier in B</span></div>"
    )
    rows = []
    for w in sorted(waterfalls, key=lambda w: w["job_id"]):
        rows.append(
            [
                f"job {w['job_id']}",
                _fmt(w["tardiness_a_us"] / _US),
                _fmt(w["tardiness_b_us"] / _US),
                f"{w['delta_us'] / _US:+.1f}",
            ]
            + [f"{w['components_us'][n] / _US:+.3f}" for n in _COMPONENTS]
            + [w["direction"]]
        )
    table = _kv_table(
        ("job", "tardiness A (s)", "tardiness B (s)", "Δ (s)")
        + tuple(f"Δ {_COMPONENT_LABEL[n]} (s)" for n in _COMPONENTS)
        + ("direction",),
        rows,
    )
    note = (
        '<p class="note">component deltas are integer-microsecond exact '
        "and sum to each job's tardiness delta; bars show the "
        f"{len(shown)} largest movements.</p>"
    )
    return legend + "".join(svg) + note + table


def _series_overlays(diff: RunDiff) -> str:
    """Paired A/B lines for the most-diverged telemetry fields."""
    changed = diff.series.get("changed", {})
    overlays = diff.series.get("overlays", {})
    if not changed:
        return ""
    ranked = sorted(
        changed, key=lambda k: changed[k]["max_abs_delta"], reverse=True
    )[:_MAX_OVERLAY_STRIPS]
    strip_h, x0, width = 48, 150, 800
    strips: List[str] = []
    span = max(
        (float(p[0]) for name in ranked for p in overlays.get(name, ())),
        default=0.0,
    )
    if span <= 0:
        return ""

    def x(t: float) -> float:
        return x0 + (t / span) * width

    for row, name in enumerate(ranked):
        points = overlays.get(name, [])
        values = [
            v for p in points for v in (p[1], p[2]) if v is not None
        ]
        if not values:
            continue
        top = len(strips) * strip_h
        hi, lo = max(values), min(values)
        scale = (hi - lo) or 1.0

        def coords(side: int) -> str:
            return " ".join(
                f"{x(float(p[0])):.1f},"
                f"{top + strip_h - 8 - ((p[side] - lo) / scale) * (strip_h - 16):.1f}"
                for p in points
                if p[side] is not None
            )

        info = changed[name]
        strips.append(
            f'<text class="lane-label" x="{x0 - 6}" '
            f'y="{top + strip_h / 2 + 3:.1f}" text-anchor="end">'
            f"{_esc(name)}</text>"
            f'<polyline points="{coords(1)}" fill="none" '
            f'stroke="var(--c-map)" stroke-width="1.5">'
            f"<title>{_esc(name)} (run A)</title></polyline>"
            f'<polyline points="{coords(2)}" fill="none" '
            f'stroke="var(--c-solver)" stroke-width="1.5" '
            f'stroke-dasharray="5 3"><title>{_esc(name)} (run B); '
            f"max |Δ| {info['max_abs_delta']:g}, first diverged at "
            f"t={info['first_divergence_t']:g}s</title></polyline>"
        )
    if not strips:
        return ""
    height = len(strips) * strip_h
    svg = (
        f'<svg viewBox="0 0 {x0 + width + 10} {height + 20}" width="100%" '
        f'role="img" aria-label="series overlays">'
        + _time_axis(x0, width, span, height)
        + "".join(strips)
        + "</svg>"
    )
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--c-map)"></span>'
        "run A (solid)</span>"
        '<span><span class="sw" style="background:var(--c-solver)"></span>'
        "run B (dashed)</span></div>"
    )
    note = (
        f'<p class="note">{len(changed)} series field(s) diverged; showing '
        f"the {len(strips)} with the largest absolute delta, each min-max "
        "scaled independently.</p>"
    )
    return legend + note + svg


def _event_detail(diff: RunDiff) -> str:
    fd = diff.alignment.first_divergence
    al = diff.alignment
    rows = [
        ("canonical events", al.total_a, al.total_b),
        ("aligned (LCS)", al.matched, al.matched),
        ("unmatched", al.only_a, al.only_b),
    ]
    parts = [_kv_table(("event streams", "run A", "run B"), rows)]
    if fd is not None:
        detail_rows = []
        keys = sorted(
            set((fd["a"] or {}).keys()) | set((fd["b"] or {}).keys())
        )
        for key in keys:
            va = (fd["a"] or {}).get(key)
            vb = (fd["b"] or {}).get(key)
            detail_rows.append((key, repr(va), repr(vb)))
        parts.append(
            f"<p>first divergent event: index <b>{fd['index']}</b> at "
            f"t=<b>{fd['sim_time']:g}s</b></p>"
        )
        parts.append(_kv_table(("field", "run A", "run B"), detail_rows))
    if al.problems:
        parts.append(
            '<p class="note">conformance problems: '
            + "; ".join(_esc(p) for p in al.problems[:5])
            + "</p>"
        )
    return "".join(parts)


def _plan_detail(diff: RunDiff) -> str:
    inv = diff.invocation
    if inv is None:
        return '<p class="note">plan histories are identical.</p>'
    parts = [
        f"<p>first divergent scheduler invocation: index "
        f"<b>{inv['index']}</b> at t=<b>{inv['sim_time']:g}s</b></p>"
    ]
    rows = []
    for entry in inv["changed"]:
        rows.append((entry["path"], repr(entry["a"]), repr(entry["b"])))
    parts.append(_kv_table(("changed path", "run A", "run B"), rows))
    return "".join(parts)


def render_diff_report(diff: RunDiff, title: str = "MRCP-RM run diff") -> str:
    """Render a :class:`RunDiff` as one self-contained HTML document."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">A = {_esc(diff.a.label)} '
        f"(seed {_esc(diff.a.run.get('seed'))}) · "
        f"B = {_esc(diff.b.label)} "
        f"(seed {_esc(diff.b.run.get('seed'))}) · "
        "single-file diff · inline SVG/CSS · no scripts, no network</p>",
        _metric_tiles(diff),
        "<h2>Divergence timeline</h2>",
        _timeline(diff),
        "<h2>Per-job delta waterfall</h2>",
        _delta_waterfall(diff.waterfalls),
    ]
    overlays = _series_overlays(diff)
    if overlays:
        parts.append("<h2>Series overlays</h2>")
        parts.append(overlays)
    parts.append("<h2>Event streams</h2>")
    parts.append(_event_detail(diff))
    parts.append("<h2>Plan histories</h2>")
    parts.append(_plan_detail(diff))
    parts.append("</body></html>")
    return "\n".join(p for p in parts if p)


def write_diff_report(path: str, diff: RunDiff, **kwargs: Any) -> str:
    """Render and atomically write the HTML diff report to ``path``."""
    atomic_write_text(path, render_diff_report(diff, **kwargs))
    return path
