"""SLA forensics: per-job lateness attribution.

The paper interprets every figure through *why* jobs miss deadlines --
resource contention delaying starts past :math:`s_j`, scheduling overhead,
deadline tightness -- but O/N/T/P only count the misses.  This module
answers "why was job 17 late?" for a traced run: each late job's tardiness
``C_j - d_j`` is decomposed into four nonnegative additive components that
**provably sum to the measured tardiness**:

* ``contention`` -- slot-contention wait: time the job's first task start
  slipped past the SLA earliest start :math:`s_j` while the job was
  eligible (the paper's primary explanation of lateness);
* ``solver`` -- solver-induced delay: wall-clock scheduling overhead spent
  on invocations between the job's arrival and its first task start (the
  share of the paper's O metric the job waited through);
* ``fault`` -- fault-induced delay: slot time burned by failed/killed
  attempts of the job's tasks plus straggler inflation (actual duration
  beyond the planned one) on completed attempts;
* ``residual`` -- residual execution: the remainder -- lateness explained
  by the job's execution span against its slack (deadline tightness)
  rather than by anything the cluster did to it.

Inputs are the run's trace event stream (the executor's per-attempt sim
spans and ``task.failed`` instants, the scheduler's invocation spans) plus,
optionally, the :class:`~repro.core.mrcp_rm.PlanRecord` history, which
carries per-invocation overhead stamped with simulated time and is the
preferred source for the solver component.

Attribution is a *capped waterfall*: the raw (independently measured)
delays are applied against the tardiness in the fixed order contention ->
solver -> fault, each capped by what remains, and the residual takes the
rest.  All arithmetic is done in integer microseconds, so
``sum(components_us.values()) == tardiness_us`` holds exactly -- the
property test in ``tests/integration`` enforces it across seeded fault and
fault-free runs.  The raw uncapped measures are kept on the result for
transparency (they may overlap and may exceed the tardiness; the capping
is what makes the decomposition additive).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.ioutil import atomic_write_text
from repro.obs.trace import SIM_PID, WALL_PID

if TYPE_CHECKING:  # import cycle: repro.cp -> repro.obs -> repro.metrics
    from repro.metrics.collector import RunMetrics

_US = 1_000_000


@dataclass(frozen=True)
class AttemptRecord:
    """One task execution attempt reconstructed from the trace stream."""

    task_id: str
    job_id: int
    resource_id: int
    kind: str  # "MAP" | "REDUCE"
    slot: int
    start: float  # simulated seconds
    end: float  # simulated seconds (completion or death)
    outcome: str  # "completed" | "failed" | "outage"
    #: planned (nominal) duration when runtime perturbation changed it
    planned: Optional[int] = None

    @property
    def duration(self) -> float:
        """Simulated seconds the attempt occupied its slot."""
        return self.end - self.start

    @property
    def inflation(self) -> float:
        """Straggler inflation: actual minus planned duration (>= 0)."""
        if self.planned is None:
            return 0.0
        return max(self.duration - self.planned, 0.0)


def load_trace_events(path: str) -> List[Dict[str, Any]]:
    """Load trace events from a Chrome trace JSON or a JSONL event log.

    ``.jsonl`` files are read line by line (the trailing
    ``metrics.snapshot`` line is skipped); anything else is parsed as the
    Chrome document and its ``traceEvents`` array returned.
    """
    if path.endswith(".jsonl"):
        events: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                ev = json.loads(line)
                if ev.get("name") == "metrics.snapshot":
                    continue
                events.append(ev)
        return events
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return list(doc.get("traceEvents", []))


def parse_attempts(events: Iterable[Mapping[str, Any]]) -> List[AttemptRecord]:
    """Reconstruct every task attempt from the trace event stream.

    Completed attempts come from the executor's sim-timeline spans (``cat
    == "task"``); failed/killed attempts from ``task.failed`` instants,
    whose args carry the attempt's start and placement (the attempt has no
    completion span).
    """
    attempts: List[AttemptRecord] = []
    for ev in events:
        args = ev.get("args") or {}
        if ev.get("ph") == "X" and ev.get("cat") == "task":
            start = ev["ts"] / _US
            attempts.append(
                AttemptRecord(
                    task_id=str(ev.get("name")),
                    job_id=int(args["job"]),
                    resource_id=int(ev.get("tid", 0)),
                    kind=str(args.get("kind", "MAP")),
                    slot=int(args.get("slot", 0)),
                    start=start,
                    end=(ev["ts"] + ev.get("dur", 0)) / _US,
                    outcome="completed",
                    planned=args.get("planned"),
                )
            )
        elif ev.get("ph") == "i" and ev.get("name") == "task.failed":
            attempts.append(
                AttemptRecord(
                    task_id=str(args.get("task")),
                    job_id=int(args["job"]),
                    resource_id=int(args.get("resource", -1)),
                    kind=str(args.get("kind", "MAP")),
                    slot=int(args.get("slot", 0)),
                    start=float(args.get("start", ev["ts"] / _US)),
                    end=ev["ts"] / _US,
                    outcome=str(args.get("reason", "failed")),
                )
            )
    attempts.sort(key=lambda a: (a.start, a.task_id))
    return attempts


def outage_windows(
    events: Iterable[Mapping[str, Any]],
) -> List[Dict[str, float]]:
    """Pair ``fault.outage`` / ``fault.recovery`` instants per resource.

    Returns ``{"resource", "start", "end"}`` dicts; an outage without a
    recovery in the trace is left open-ended (``end`` = last event time).
    """
    opens: Dict[int, float] = {}
    windows: List[Dict[str, float]] = []
    horizon = 0.0
    for ev in events:
        if ev.get("pid") == SIM_PID and "ts" in ev:
            horizon = max(horizon, (ev["ts"] + ev.get("dur", 0)) / _US)
        if ev.get("ph") != "i":
            continue
        args = ev.get("args") or {}
        if ev.get("name") == "fault.outage":
            opens[int(args.get("resource", -1))] = ev["ts"] / _US
        elif ev.get("name") == "fault.recovery":
            rid = int(args.get("resource", -1))
            start = opens.pop(rid, None)
            if start is not None:
                windows.append(
                    {"resource": rid, "start": start, "end": ev["ts"] / _US}
                )
    for rid, start in opens.items():
        windows.append({"resource": rid, "start": start, "end": horizon})
    windows.sort(key=lambda w: (w["start"], w["resource"]))
    return windows


@dataclass(frozen=True)
class LatenessAttribution:
    """Why one late job was late: an additive tardiness decomposition.

    The four ``*_us`` components are integer microseconds and sum exactly
    to ``tardiness_us``; the ``raw_*`` fields are the uncapped measured
    delays they were derived from (kept for transparency -- they may
    overlap and exceed the tardiness).
    """

    job_id: int
    tardiness_us: int
    contention_us: int
    solver_us: int
    fault_us: int
    residual_us: int
    raw_contention: float  # seconds, uncapped
    raw_solver: float
    raw_fault: float
    first_start: Optional[float]  # simulated seconds; None if untraced
    completion: float  # simulated seconds
    #: Plan-history invocations between arrival and completion whose plan
    #: came from a degradation-ladder rung below the full CP solve -- a
    #: late job shaped by degraded planning is flagged, not just timed.
    degraded_plans: int = 0

    @property
    def tardiness(self) -> float:
        """Measured tardiness in seconds (completion minus deadline)."""
        return self.tardiness_us / _US

    @property
    def components_us(self) -> Dict[str, int]:
        """The decomposition in integer microseconds (sums exactly)."""
        return {
            "contention": self.contention_us,
            "solver": self.solver_us,
            "fault": self.fault_us,
            "residual": self.residual_us,
        }

    @property
    def components(self) -> Dict[str, float]:
        """The decomposition in seconds (floating-point view)."""
        return {k: v / _US for k, v in self.components_us.items()}

    def dominant(self) -> str:
        """Name of the largest component (ties break in waterfall order)."""
        parts = self.components_us
        return max(parts, key=lambda k: parts[k])

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (round-trips via :func:`attribution_from_dict`).

        This is the shape persisted into a run directory's
        ``forensics.json`` so two runs can be diffed without re-parsing
        their traces (:mod:`repro.obs.diff`).
        """
        return {
            "job_id": self.job_id,
            "tardiness_us": self.tardiness_us,
            "contention_us": self.contention_us,
            "solver_us": self.solver_us,
            "fault_us": self.fault_us,
            "residual_us": self.residual_us,
            "raw_contention": self.raw_contention,
            "raw_solver": self.raw_solver,
            "raw_fault": self.raw_fault,
            "first_start": self.first_start,
            "completion": self.completion,
            "degraded_plans": self.degraded_plans,
        }


def attribution_from_dict(row: Mapping[str, Any]) -> LatenessAttribution:
    """Rebuild a :class:`LatenessAttribution` from its :meth:`as_dict` form."""
    return LatenessAttribution(
        job_id=int(row["job_id"]),
        tardiness_us=int(row["tardiness_us"]),
        contention_us=int(row["contention_us"]),
        solver_us=int(row["solver_us"]),
        fault_us=int(row["fault_us"]),
        residual_us=int(row["residual_us"]),
        raw_contention=float(row["raw_contention"]),
        raw_solver=float(row["raw_solver"]),
        raw_fault=float(row["raw_fault"]),
        first_start=(
            None if row.get("first_start") is None else float(row["first_start"])
        ),
        completion=float(row["completion"]),
        degraded_plans=int(row.get("degraded_plans", 0)),
    )


def _first_starts(attempts: Sequence[AttemptRecord]) -> Dict[int, float]:
    starts: Dict[int, float] = {}
    for a in attempts:
        prev = starts.get(a.job_id)
        if prev is None or a.start < prev:
            starts[a.job_id] = a.start
    return starts


def _solver_overhead_us(
    job_arrival: int,
    first_start: Optional[float],
    plan_history: Optional[Sequence] = None,
    events: Optional[Iterable[Mapping[str, Any]]] = None,
) -> int:
    """Wall overhead (µs) of invocations between arrival and first start."""
    if first_start is None:
        return 0
    total = 0
    if plan_history:
        for rec in plan_history:
            if job_arrival <= rec.t <= first_start:
                total += int(round(rec.overhead * _US))
        return total
    if events is None:
        return 0
    for ev in events:
        if (
            ev.get("ph") == "X"
            and ev.get("name") == "scheduler.invocation"
            and ev.get("pid") == WALL_PID
        ):
            sim_time = (ev.get("args") or {}).get("sim_time")
            if sim_time is None:
                continue
            if job_arrival <= sim_time <= first_start:
                total += int(ev.get("dur", 0))
    return total


def attribute_lateness(
    metrics: RunMetrics,
    jobs: Sequence,
    events: Iterable[Mapping[str, Any]],
    plan_history: Optional[Sequence] = None,
) -> List[LatenessAttribution]:
    """Decompose every late job's tardiness into its four components.

    ``metrics`` supplies completions and tardiness, ``jobs`` the SLAs,
    ``events`` the trace stream (in-memory recorder events, or loaded via
    :func:`load_trace_events`), and ``plan_history`` -- when the run kept
    one -- the per-invocation overhead samples for the solver component.
    Returns one :class:`LatenessAttribution` per late job, sorted by id.
    """
    events = list(events)
    attempts = parse_attempts(events)
    first_start = _first_starts(attempts)
    job_by_id = {job.id: job for job in jobs}

    # Raw fault time per job: failed-attempt occupancy + straggler
    # inflation on completed attempts, both in microseconds.
    fault_us: Dict[int, int] = {}
    for a in attempts:
        lost = 0.0
        if a.outcome != "completed":
            lost = a.duration
        elif a.planned is not None:
            lost = a.inflation
        if lost > 0:
            fault_us[a.job_id] = fault_us.get(a.job_id, 0) + int(
                round(lost * _US)
            )

    out: List[LatenessAttribution] = []
    for job_id in sorted(metrics.tardiness_by_job):
        job = job_by_id.get(job_id)
        if job is None:
            continue
        tardiness_us = int(metrics.tardiness_by_job[job_id]) * _US
        completion = job.earliest_start + metrics.turnarounds[job_id]
        fs = first_start.get(job_id)
        raw_contention_us = (
            max(int(round((fs - job.earliest_start) * _US)), 0)
            if fs is not None
            else 0
        )
        raw_solver_us = _solver_overhead_us(
            job.arrival_time, fs, plan_history, events
        )
        raw_fault_us = fault_us.get(job_id, 0)
        degraded = 0
        if plan_history:
            degraded = sum(
                1
                for rec in plan_history
                if job.arrival_time <= rec.t <= completion
                and getattr(rec, "rung", "cp_full") != "cp_full"
            )

        remaining = tardiness_us
        contention = min(raw_contention_us, remaining)
        remaining -= contention
        solver = min(raw_solver_us, remaining)
        remaining -= solver
        fault = min(raw_fault_us, remaining)
        remaining -= fault

        out.append(
            LatenessAttribution(
                job_id=job_id,
                tardiness_us=tardiness_us,
                contention_us=contention,
                solver_us=solver,
                fault_us=fault,
                residual_us=remaining,
                raw_contention=raw_contention_us / _US,
                raw_solver=raw_solver_us / _US,
                raw_fault=raw_fault_us / _US,
                first_start=fs,
                completion=float(completion),
                degraded_plans=degraded,
            )
        )
    return out


def attributions_csv(attributions: Sequence[LatenessAttribution]) -> str:
    """CSV of the decomposition: one row per late job, seconds columns."""
    lines = [
        "job_id,tardiness,contention,solver,fault,residual,"
        "raw_contention,raw_solver,raw_fault,degraded_plans"
    ]
    for a in attributions:
        c = a.components
        lines.append(
            f"{a.job_id},{a.tardiness:.6f},{c['contention']:.6f},"
            f"{c['solver']:.6f},{c['fault']:.6f},{c['residual']:.6f},"
            f"{a.raw_contention:.6f},{a.raw_solver:.6f},{a.raw_fault:.6f},"
            f"{a.degraded_plans}"
        )
    return "\n".join(lines) + "\n"


def write_attributions_csv(
    attributions: Sequence[LatenessAttribution], path: str
) -> str:
    """Atomically write :func:`attributions_csv` to ``path``."""
    atomic_write_text(path, attributions_csv(attributions))
    return path


def format_attributions(attributions: Sequence[LatenessAttribution]) -> str:
    """Console table of the decomposition (seconds, one late job per row)."""
    if not attributions:
        return "no late jobs: nothing to attribute"
    header = (
        f"{'job':>5s} {'tardy':>9s} {'contention':>11s} {'solver':>9s} "
        f"{'fault':>9s} {'residual':>9s}  dominant"
    )
    lines = [header, "-" * len(header)]
    for a in attributions:
        c = a.components
        flag = f" [degraded x{a.degraded_plans}]" if a.degraded_plans else ""
        lines.append(
            f"{a.job_id:>5d} {a.tardiness:>9.1f} {c['contention']:>11.1f} "
            f"{c['solver']:>9.3f} {c['fault']:>9.1f} {c['residual']:>9.1f}"
            f"  {a.dominant()}{flag}"
        )
    return "\n".join(lines)
