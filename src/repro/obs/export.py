"""OpenMetrics/Prometheus text-format export and validation.

Two render paths share one formatting core:

* :func:`render_openmetrics` -- a point-in-time scrape of a
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms with cumulative ``_bucket``/``_sum``/``_count`` lines);
* :func:`render_series_openmetrics` -- the sampled time series of
  :mod:`repro.obs.timeseries` as gauge families with sim-time timestamps,
  one line per sample.

Instrument names use dots internally (``scheduler.overhead_seconds``);
the exporter sanitizes them to the OpenMetrics charset
(``scheduler_overhead_seconds``) and escapes label values.  The pure-python
:func:`validate_openmetrics` mirrors :mod:`repro.obs.conformance` for
traces: it returns a list of problem strings (empty = conformant) and is
what CI runs against every emitted ``.prom`` artifact.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Sequence, Tuple

from repro.ioutil import atomic_write_text

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Legal OpenMetrics metric-family name (also used by the validator).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Legal label name.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One sample line: name, optional {labels}, value, optional timestamp.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)
#: One ``k="v"`` pair inside a label set.
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)

#: Metric types this exporter emits (a subset of the OpenMetrics set).
_TYPES = frozenset({"counter", "gauge", "histogram"})


def sanitize_metric_name(name: str) -> str:
    """Map an internal instrument name onto the OpenMetrics charset.

    Dots and other illegal characters become underscores; a leading digit
    gets an underscore prefix.  The mapping is deterministic so the same
    registry always exports the same families.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if f != f or f in (float("inf"), float("-inf")):
        raise ValueError(f"non-finite sample value {value!r}")
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(str(value))}"' for name, value in pairs
    )
    return "{" + body + "}"


def _histogram_lines(
    name: str, snapshot: Mapping[str, Any]
) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one histogram."""
    boundaries = list(snapshot["boundaries"])
    counts = list(snapshot["counts"])
    lines: List[str] = []
    cumulative = 0
    for boundary, count in zip(boundaries, counts):
        cumulative += count
        lines.append(
            f"{name}_bucket{_labels([('le', _fmt_value(boundary))])} "
            f"{cumulative}"
        )
    total = sum(counts)
    lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
    lines.append(f"{name}_sum {_fmt_value(snapshot['sum'])}")
    lines.append(f"{name}_count {total}")
    return lines


def render_openmetrics(registry: "MetricsRegistry") -> str:
    """Render a registry scrape in OpenMetrics text format.

    Families are sorted by name; counters get the mandatory ``_total``
    suffix; histograms expose cumulative buckets with a ``+Inf`` bound.
    The output always terminates with ``# EOF``.
    """
    from repro.obs.metrics import Counter, Gauge, Histogram

    lines: List[str] = []
    for raw_name, instrument in sorted(registry.instruments().items()):
        name = sanitize_metric_name(raw_name)
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} histogram")
            lines.extend(_histogram_lines(name, instrument.as_dict()))
        elif isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {_fmt_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt_value(instrument.value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Sample-record keys exported as series families (scalar, deterministic).
_SERIES_SCALARS = (
    "O",
    "N",
    "T",
    "P",
    "sim_time",
    "events_dispatched",
    "calendar_size",
    "jobs_arrived",
    "jobs_completed",
    "jobs_failed",
    "invocations",
)


def render_series_openmetrics(
    samples: Sequence[Mapping[str, Any]], prefix: str = "telemetry"
) -> str:
    """Render sampled series as gauge families with sim-time timestamps.

    Each scalar field becomes one ``<prefix>_<field>`` gauge family with
    one line per sample (value, then the sample's sim time as the
    timestamp).  Probe values export under ``<prefix>_probe_<name>``.
    """
    families: Dict[str, List[Tuple[float, float]]] = {}

    def put(key: str, value: Any, ts: float) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        families.setdefault(sanitize_metric_name(key), []).append(
            (float(value), ts)
        )

    for sample in samples:
        ts = float(sample.get("sim_time", 0.0))
        for key in _SERIES_SCALARS:
            if key in sample:
                put(f"{prefix}_{key}", sample[key], ts)
        for name, value in sorted(dict(sample.get("probes", {})).items()):
            put(f"{prefix}_probe_{name}", value, ts)
    lines: List[str] = []
    for name in sorted(families):
        lines.append(f"# TYPE {name} gauge")
        for value, ts in families[name]:
            lines.append(f"{name} {_fmt_value(value)} {_fmt_value(ts)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, text: str) -> str:
    """Validate and atomically write an OpenMetrics document.

    Raises ``ValueError`` listing the problems when the document does not
    conform -- the exporter refuses to persist an invalid scrape.
    """
    problems = validate_openmetrics(text)
    if problems:
        raise ValueError(
            "invalid OpenMetrics output: " + "; ".join(problems[:5])
        )
    atomic_write_text(path, text)
    return path


# ---------------------------------------------------------------- validator
def _parse_value(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    return float(token)


def validate_openmetrics(text: str) -> List[str]:
    """Validate OpenMetrics text; returns problem strings (empty = ok).

    Checks the rules this exporter relies on: a terminal ``# EOF`` with
    nothing after it, ``# TYPE`` metadata preceding every family's
    samples, legal metric/label names, parseable values and timestamps,
    counter samples carrying the ``_total`` suffix, histogram families
    with ordered ``le`` bounds, monotone cumulative bucket counts, a
    ``+Inf`` bucket agreeing with ``_count``, and family contiguity
    (a family's samples never resume after another family starts).
    """
    problems: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        problems.append("document must end with a '# EOF' line")
    eof_seen = False
    types: Dict[str, str] = {}
    finished_families: set = set()
    current_family: str = ""
    histogram_state: Dict[str, Any] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
            base = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and base in types:
                return base
        return sample_name

    def close_histogram(line_no: int) -> None:
        if not histogram_state:
            return
        name = histogram_state["name"]
        if not histogram_state.get("inf_seen"):
            problems.append(
                f"line {line_no}: histogram {name!r} has no '+Inf' bucket"
            )
        count = histogram_state.get("count")
        inf_count = histogram_state.get("inf_count")
        if (
            count is not None
            and inf_count is not None
            and count != inf_count
        ):
            problems.append(
                f"histogram {name!r}: _count {count} != +Inf bucket "
                f"{inf_count}"
            )
        histogram_state.clear()

    for i, line in enumerate(lines, start=1):
        if eof_seen:
            problems.append(f"line {i}: content after '# EOF'")
            break
        if line == "# EOF":
            eof_seen = True
            close_histogram(i)
            continue
        if not line.strip():
            problems.append(f"line {i}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"line {i}: malformed TYPE line {line!r}")
                    continue
                _, _, name, mtype = parts
                if not _NAME_RE.match(name):
                    problems.append(
                        f"line {i}: illegal metric name {name!r}"
                    )
                if mtype not in _TYPES:
                    problems.append(
                        f"line {i}: unknown metric type {mtype!r}"
                    )
                if name in types:
                    problems.append(
                        f"line {i}: duplicate TYPE for {name!r}"
                    )
                close_histogram(i)
                if current_family:
                    finished_families.add(current_family)
                types[name] = mtype
                current_family = name
                if mtype == "histogram":
                    histogram_state.update(
                        {"name": name, "prev_le": None, "prev_cum": None}
                    )
            # other comment lines (# HELP, # UNIT, plain comments) pass
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {i}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = family_of(name)
        if family not in types:
            problems.append(
                f"line {i}: sample {name!r} has no preceding TYPE"
            )
            continue
        if family in finished_families:
            problems.append(
                f"line {i}: family {family!r} resumes after another "
                "family started (families must be contiguous)"
            )
        mtype = types[family]
        labels_raw = match.group("labels")
        label_pairs: Dict[str, str] = {}
        if labels_raw:
            consumed = _LABEL_PAIR_RE.findall(labels_raw)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != labels_raw:
                problems.append(
                    f"line {i}: malformed label set {{{labels_raw}}}"
                )
            for k, v in consumed:
                if not _LABEL_RE.match(k):
                    problems.append(f"line {i}: illegal label name {k!r}")
                label_pairs[k] = v
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {i}: unparseable value {match.group('value')!r}"
            )
            continue
        ts_token = match.group("timestamp")
        if ts_token is not None:
            try:
                float(ts_token)
            except ValueError:
                problems.append(
                    f"line {i}: unparseable timestamp {ts_token!r}"
                )
        if mtype == "counter":
            if not (
                name.endswith("_total") or name.endswith("_created")
            ):
                problems.append(
                    f"line {i}: counter sample {name!r} must end in "
                    "'_total'"
                )
            elif value < 0:
                problems.append(
                    f"line {i}: counter {name!r} is negative ({value})"
                )
        if mtype == "histogram" and histogram_state.get("name") == family:
            if name.endswith("_bucket"):
                le = label_pairs.get("le")
                if le is None:
                    problems.append(
                        f"line {i}: histogram bucket without 'le' label"
                    )
                else:
                    try:
                        bound = _parse_value(le)
                    except ValueError:
                        problems.append(
                            f"line {i}: unparseable le bound {le!r}"
                        )
                        bound = None
                    if bound is not None:
                        prev_le = histogram_state.get("prev_le")
                        if prev_le is not None and bound <= prev_le:
                            problems.append(
                                f"line {i}: le bounds not increasing "
                                f"({bound} after {prev_le})"
                            )
                        histogram_state["prev_le"] = bound
                        if bound == float("inf"):
                            histogram_state["inf_seen"] = True
                            histogram_state["inf_count"] = value
                prev_cum = histogram_state.get("prev_cum")
                if prev_cum is not None and value < prev_cum:
                    problems.append(
                        f"line {i}: cumulative bucket count decreased "
                        f"({value} after {prev_cum})"
                    )
                histogram_state["prev_cum"] = value
            elif name.endswith("_count"):
                histogram_state["count"] = value
    return problems
