"""Live telemetry: a deterministic sim-time sampler and ring-buffer store.

The post-hoc observability stack (traces, the metrics registry, forensics)
only speaks after :meth:`~repro.metrics.collector.MetricsCollector.finalize`;
this module watches the run *while it executes*.  A
:class:`TimeSeriesSampler` rides the simulation calendar itself: every
``interval`` simulated seconds it snapshots the kernel, the metrics
collector, the metrics registry, and any component-registered probes into a
bounded ring-buffer :class:`SeriesStore`.  Consumers -- the SLO monitor
(:mod:`repro.obs.slo`), the OpenMetrics exporter (:mod:`repro.obs.export`),
the HTML report's live timeline -- read the store or subscribe as
listeners.

Determinism contract (mirrors the tracer's dual-timeline discipline):

* the cadence is **simulated** time, so same-seed runs sample at the same
  instants and see the same state -- the series is byte-identical across
  reruns once wall-clock fields are quarantined;
* the sampler never touches the tracer's wall clock (a pinned clock's draw
  count feeds the overhead metric O); an optional *separate* injectable
  wall clock fills the quarantined ``wall`` field only;
* sampling events ride the calendar at :data:`SAMPLE_PRIORITY` (after
  every same-instant state transition) and re-arm only while real work is
  pending, so the run still drains and O/N/T/P are untouched;
* telemetry off hands out the shared :data:`NULL_SAMPLER` -- the same
  zero-overhead null-object pattern as ``NULL_REGISTRY``.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.ioutil import atomic_write_text

if TYPE_CHECKING:  # avoid the repro.sim -> repro.obs import cycle
    from repro.metrics.collector import MetricsCollector
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.kernel import Simulator

#: Same-timestamp ordering: samples fire after every state transition at
#: their instant (releases=0, default=5, acquires=9), so a sample observes
#: the post-transition state, never a half-applied one.
SAMPLE_PRIORITY = 10

#: Sample fields that only replay identically under a pinned wall clock;
#: the JSONL writer drops them by default (the sweeps' quarantine rule).
QUARANTINED_KEYS = frozenset({"wall", "phase_times"})

#: Schema tag stamped on the series JSONL meta line.
SERIES_SCHEMA = "repro-telemetry/1"


@dataclass
class TelemetryConfig:
    """Knobs for the live telemetry sampler (``ObsConfig.telemetry``)."""

    #: Master switch; off hands out :data:`NULL_SAMPLER` (zero overhead).
    enabled: bool = False
    #: Sampling cadence in **simulated** seconds (grid-aligned: samples
    #: land at multiples of the interval, not ``start + k*interval``).
    interval: float = 5.0
    #: Ring-buffer capacity; the oldest samples drop past it.
    capacity: int = 4096
    #: When set, the run writes the sampled series here as JSONL.
    series_out: Optional[str] = None
    #: When set, fired/resolved SLO alerts are written here as JSONL.
    alerts_out: Optional[str] = None
    #: Include quarantined wall-clock fields in the JSONL output.
    include_wall: bool = False
    #: Injectable wall clock for the quarantined ``wall`` field only.
    #: Never the tracer's clock -- sampling must not consume its ticks.
    wall_clock: Optional[Callable[[], float]] = None

    def validate(self) -> None:
        """Reject unusable settings before a run starts."""
        if self.interval <= 0:
            raise ValueError(f"telemetry interval must be > 0: {self.interval}")
        if self.capacity <= 0:
            raise ValueError(f"telemetry capacity must be > 0: {self.capacity}")


class SeriesStore:
    """Bounded ring buffer of telemetry samples, in sampling order."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0: {capacity}")
        self.capacity = capacity
        self._samples: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        #: Samples ever appended (``dropped = total - len(store)``).
        self.total = 0

    def append(self, sample: Dict[str, Any]) -> None:
        """Add one sample; the oldest is evicted past ``capacity``."""
        self._samples.append(sample)
        self.total += 1

    @property
    def dropped(self) -> int:
        """Samples evicted by the ring buffer."""
        return self.total - len(self._samples)

    @property
    def samples(self) -> List[Dict[str, Any]]:
        """The retained samples, oldest first (a fresh list)."""
        return list(self._samples)

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        """The most recent sample, or None before the first one."""
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)


class TimeSeriesSampler:
    """Samples kernel/collector/registry state on a sim-time cadence.

    Wire-up order: :meth:`attach` binds the run's simulator, collector and
    registry; components contribute :meth:`add_probe` callables (queue
    depth, slot utilization, breaker state); consumers subscribe with
    :meth:`add_listener`; :meth:`start` takes the first sample and arms
    the cadence.  After the calendar drains, :meth:`finalize` records the
    closing sample -- its O/N/T/P match ``RunMetrics.as_dict()`` exactly.
    """

    #: Real samplers record; the shared null sampler overrides to False.
    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig(
            enabled=True
        )
        self.config.validate()
        self.store = SeriesStore(self.config.capacity)
        self._sim: Optional["Simulator"] = None
        self._collector: Optional["MetricsCollector"] = None
        self._registry: Optional["MetricsRegistry"] = None
        self._probes: Dict[str, Callable[[], float]] = {}
        self._listeners: List[Callable[[Mapping[str, Any]], object]] = []
        self._handle = None
        self._seq = 0
        self._overhead_boundaries: Optional[Tuple[float, ...]] = None

    # ------------------------------------------------------------- wiring
    def attach(
        self,
        sim: "Simulator",
        collector: Optional["MetricsCollector"] = None,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        """Bind the run's simulator (required), collector and registry."""
        self._sim = sim
        self._collector = collector
        self._registry = registry

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a named gauge callable, read at every sample."""
        self._probes[name] = fn

    def add_listener(self, fn: Callable[[Mapping[str, Any]], object]) -> None:
        """Call ``fn(sample)`` after each sample is stored (SLO monitor)."""
        self._listeners.append(fn)

    # ----------------------------------------------------------- sampling
    def start(self) -> None:
        """Take the opening sample and arm the sim-time cadence."""
        if self._sim is None:
            raise RuntimeError("attach() must be called before start()")
        self.sample()
        self._arm()

    def _arm(self) -> None:
        """Schedule the next tick -- only while real work is pending.

        The guard (``sim.peek() is not None``) is what lets the run drain:
        the sampler never keeps the calendar alive on its own, so at most
        one trailing sample fires after the last real event.
        """
        sim = self._sim
        if sim is None or sim.peek() is None:
            return
        interval = self.config.interval
        next_t = (math.floor(sim.now / interval + 1e-9) + 1) * interval
        self._handle = sim.schedule_at(
            next_t, self._tick, priority=SAMPLE_PRIORITY
        )

    def _tick(self) -> None:
        self._handle = None
        self.sample()
        self._arm()

    def sample(self, final: bool = False) -> Dict[str, Any]:
        """Snapshot the run into one sample record and store it."""
        sim = self._sim
        record: Dict[str, Any] = {
            "seq": self._seq,
            "final": bool(final),
        }
        self._seq += 1
        if sim is not None:
            sim.sync_gauges()
            record.update(sim.telemetry_snapshot())
        collector = self._collector
        if collector is not None:
            record.update(collector.live_summary())
            record["jobs_arrived"] = collector.jobs_arrived
            record["jobs_completed"] = collector.jobs_completed
            record["jobs_failed"] = collector.jobs_failed
            record["invocations"] = collector.invocations
            record["phase_times"] = {
                "propagate": collector.solver_propagate_time,
                "warm_start": collector.solver_warm_start_time,
                "tree": collector.solver_tree_time,
                "lns": collector.solver_lns_time,
            }
        registry = self._registry
        if registry is not None:
            counters: Dict[str, float] = {}
            for name, value in registry.as_dict().items():
                if isinstance(value, dict):  # histogram snapshot
                    if name == "scheduler.overhead_seconds":
                        record["overhead_buckets"] = list(value["counts"])
                        self._overhead_boundaries = tuple(value["boundaries"])
                else:
                    counters[name] = value
            record["counters"] = counters
        probes: Dict[str, float] = {}
        for name in sorted(self._probes):
            probes[name] = self._probes[name]()
        record["probes"] = probes
        if self.config.wall_clock is not None:
            record["wall"] = float(self.config.wall_clock())
        self.store.append(record)
        for listener in self._listeners:
            listener(record)
        return record

    def finalize(self) -> Optional[Dict[str, Any]]:
        """Cancel any pending tick and take the closing sample."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._sim is None:
            return None
        return self.sample(final=True)

    # ------------------------------------------------------------- output
    @property
    def overhead_boundaries(self) -> Optional[Tuple[float, ...]]:
        """Bucket boundaries of the sampled overhead histogram, if seen."""
        return self._overhead_boundaries

    def write_series(
        self, path: str, include_wall: Optional[bool] = None
    ) -> str:
        """Write the stored series as JSONL (meta line + one per sample).

        Wall-clock fields (:data:`QUARANTINED_KEYS`) are dropped unless
        ``include_wall`` -- the same quarantine rule that keeps sweep
        outputs byte-identical across machines.
        """
        if include_wall is None:
            include_wall = self.config.include_wall
        meta: Dict[str, Any] = {
            "schema": SERIES_SCHEMA,
            "interval": self.config.interval,
            "capacity": self.config.capacity,
            "samples": len(self.store),
            "total_samples": self.store.total,
            "dropped": self.store.dropped,
        }
        if self._overhead_boundaries is not None:
            meta["overhead_boundaries"] = list(self._overhead_boundaries)
        lines = [json.dumps(meta, sort_keys=True)]
        for sample in self.store.samples:
            if include_wall:
                row = dict(sample)
            else:
                row = {
                    k: v for k, v in sample.items()
                    if k not in QUARANTINED_KEYS
                }
            lines.append(json.dumps(row, sort_keys=True))
        atomic_write_text(path, "\n".join(lines) + "\n")
        return path


class WallSeriesSampler:
    """Probe sampler on a *wall/service* time axis (no simulator).

    The admission service has no simulation calendar to ride, so this
    sampler is driven by its caller: the service's batch loop calls
    :meth:`maybe_sample` with the current service-clock reading and a
    sample is taken whenever at least ``interval`` seconds have elapsed
    since the previous one.  Samples reuse :class:`SeriesStore` and the
    ``repro-telemetry/1`` JSONL layout (meta carries ``axis: "wall"``),
    so the existing readers and the diff tooling apply unchanged.

    Under a :class:`~repro.obs.clocks.ManualServiceClock` the cadence --
    and therefore the whole series minus quarantined fields -- is as
    deterministic as the sim-time sampler's.
    """

    def __init__(
        self,
        interval: float = 1.0,
        capacity: int = 4096,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0: {interval}")
        self.interval = interval
        self.store = SeriesStore(capacity)
        self._registry = registry
        self._probes: Dict[str, Callable[[], float]] = {}
        self._listeners: List[Callable[[Mapping[str, Any]], object]] = []
        self._seq = 0
        self._next_due: Optional[float] = None

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a named gauge callable, read at every sample."""
        self._probes[name] = fn

    def add_listener(self, fn: Callable[[Mapping[str, Any]], object]) -> None:
        """Call ``fn(sample)`` after each sample is stored."""
        self._listeners.append(fn)

    def maybe_sample(self, now: float) -> Optional[Dict[str, Any]]:
        """Take a sample iff the cadence is due at ``now`` (else None)."""
        if self._next_due is not None and now < self._next_due:
            return None
        return self.sample(now)

    def sample(self, now: float, final: bool = False) -> Dict[str, Any]:
        """Snapshot probes + registry counters at service time ``now``."""
        record: Dict[str, Any] = {
            "seq": self._seq,
            "t": float(now),
            "final": bool(final),
        }
        self._seq += 1
        registry = self._registry
        if registry is not None:
            record["counters"] = {
                name: value
                for name, value in registry.as_dict().items()
                if not isinstance(value, dict)  # histograms stay out
            }
        record["probes"] = {
            name: self._probes[name]() for name in sorted(self._probes)
        }
        self.store.append(record)
        self._next_due = now + self.interval
        for listener in self._listeners:
            listener(record)
        return record

    def write_series(self, path: str) -> str:
        """Write the stored series as JSONL (same layout as sim series)."""
        meta: Dict[str, Any] = {
            "schema": SERIES_SCHEMA,
            "axis": "wall",
            "interval": self.interval,
            "capacity": self.store.capacity,
            "samples": len(self.store),
            "total_samples": self.store.total,
            "dropped": self.store.dropped,
        }
        lines = [json.dumps(meta, sort_keys=True)]
        for sample in self.store.samples:
            lines.append(json.dumps(sample, sort_keys=True))
        atomic_write_text(path, "\n".join(lines) + "\n")
        return path


class NullTimeSeriesSampler(TimeSeriesSampler):
    """Inert sampler handed out when telemetry is off (shared singleton).

    Every method is a no-op; hot paths hold a sampler unconditionally and
    pay one attribute load on the disabled path (the ``NULL_REGISTRY``
    pattern).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(TelemetryConfig(enabled=False, capacity=1))

    def attach(self, sim, collector=None, registry=None) -> None:
        """No-op."""

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """No-op."""

    def add_listener(self, fn: Callable[[Mapping[str, Any]], object]) -> None:
        """No-op."""

    def start(self) -> None:
        """No-op."""

    def sample(self, final: bool = False) -> Dict[str, Any]:
        """No-op; returns an empty record and stores nothing."""
        return {}

    def finalize(self) -> Optional[Dict[str, Any]]:
        """No-op."""
        return None

    def write_series(
        self, path: str, include_wall: Optional[bool] = None
    ) -> str:
        """Refuse: a disabled sampler has nothing to write."""
        raise RuntimeError("telemetry is disabled: no series to write")


#: The shared inert sampler (telemetry off) -- never mutated.
NULL_SAMPLER = NullTimeSeriesSampler()


def read_series_jsonl(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a series JSONL file back into (meta, samples).

    The first line must be a JSON object carrying the
    :data:`SERIES_SCHEMA` marker (``repro-telemetry/1``); anything else --
    a non-JSON header, a non-object meta line, a missing or unknown schema
    tag -- raises a :class:`ValueError` naming the problem rather than
    silently parsing a file this reader does not understand.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty series file: {path}")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"series file {path} has a non-JSON meta line "
            f"(expected a {SERIES_SCHEMA!r} header): {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise ValueError(
            f"series file {path} meta line is "
            f"{type(meta).__name__}, not an object with a "
            f"{SERIES_SCHEMA!r} schema marker"
        )
    schema = meta.get("schema")
    if schema is None:
        raise ValueError(
            f"series file {path} meta line has no 'schema' marker; "
            f"expected {SERIES_SCHEMA!r}"
        )
    if schema != SERIES_SCHEMA:
        raise ValueError(
            f"unknown series schema {schema!r} in {path}; "
            f"this reader understands {SERIES_SCHEMA!r}"
        )
    try:
        samples = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as exc:
        raise ValueError(f"series file {path} has a corrupt sample line: {exc}") from exc
    return meta, samples
