"""Declarative SLOs with multi-window burn-rate alerting, evaluated live.

An :class:`SloSpec` names an error budget over a *bad / total* ratio that
the telemetry samples carry cumulatively:

* ``late_jobs`` -- completions past their deadline over all completions
  (the paper's N/P, watched online instead of at ``finalize()``);
* ``slow_invocations`` -- scheduler invocations whose wall overhead
  exceeded ``threshold`` seconds, over all invocations, read from the
  sampled ``scheduler.overhead_seconds`` bucket counts (a p99 target of
  ``threshold`` is ``budget=0.01``);
* ``degraded_solves`` -- plans produced below the ``cp_full`` ladder rung
  over all ladder solves (``resilience.rung_used.*`` counters).

The :class:`SloMonitor` subscribes to the sampler and applies the
multi-window burn-rate rule: for each :class:`BurnWindow` the burn rate is
``(bad/total over the window) / budget``, and the window *trips* when both
its long and short burns reach ``factor`` (the short window gates on
recency so a stale burst cannot alert forever).  Alerts are edge-triggered
-- one ``fired`` record when any window trips, one ``resolved`` when none
does -- and land in four places at once: the in-memory alert list, the
trace as ``slo.alert`` instants, the registry (``slo.alerts_fired`` plus a
per-SLO counter), and a structured warning log.  Every input is simulated
time or deterministic counts, so same-seed runs alert identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ioutil import atomic_write_text
from repro.obs.logs import get_logger, kv
from repro.obs.trace import NULL_TRACER, Tracer

_LOG = get_logger("obs.slo")

#: SLO kinds the monitor can evaluate.
KINDS = ("late_jobs", "slow_invocations", "degraded_solves")


@dataclass(frozen=True)
class BurnWindow:
    """One long/short burn-rate window pair, in simulated seconds."""

    #: Long lookback: sets how much budget the alert tolerates burning.
    long_window: float
    #: Short lookback: gates on recency (the burn must still be happening).
    short_window: float
    #: Burn-rate multiple of the budget at which the pair trips.
    factor: float

    def validate(self) -> None:
        """Reject inverted or non-positive windows."""
        if self.long_window <= 0 or self.short_window <= 0:
            raise ValueError(f"windows must be positive: {self}")
        if self.short_window > self.long_window:
            raise ValueError(f"short window exceeds long window: {self}")
        if self.factor <= 0:
            raise ValueError(f"factor must be positive: {self}")


#: Fast burn (page-worthy) and slow burn (budget-exhausting) pairs.
DEFAULT_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(long_window=60.0, short_window=15.0, factor=2.0),
    BurnWindow(long_window=300.0, short_window=60.0, factor=1.0),
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative SLO: a budgeted bad/total ratio plus windows."""

    #: Alert name (also the registry counter suffix ``slo.alert.<name>``).
    name: str
    #: One of :data:`KINDS`.
    kind: str
    #: Allowed bad fraction (error budget), in (0, 1].
    budget: float
    #: ``slow_invocations`` only: overhead seconds above which an
    #: invocation counts as bad.
    threshold: float = 0.0
    #: Burn-rate window pairs; any pair tripping fires the alert.
    windows: Tuple[BurnWindow, ...] = DEFAULT_WINDOWS

    def validate(self) -> None:
        """Reject malformed specs before a run starts."""
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r} (expected one of {KINDS})"
            )
        if not 0 < self.budget <= 1:
            raise ValueError(
                f"budget must be in (0, 1]: {self.name} has {self.budget}"
            )
        if not self.windows:
            raise ValueError(f"SLO {self.name!r} has no burn windows")
        for window in self.windows:
            window.validate()


def default_slos() -> Tuple[SloSpec, ...]:
    """The stock SLO set: late-job budget, p99 overhead, rung ceiling."""
    return (
        SloSpec(name="late-jobs", kind="late_jobs", budget=0.10),
        SloSpec(
            name="scheduling-overhead-p99",
            kind="slow_invocations",
            budget=0.01,
            threshold=1.0,
        ),
        SloSpec(name="degraded-solves", kind="degraded_solves", budget=0.25),
    )


@dataclass
class SloAlert:
    """One edge-triggered alert transition (``fired`` or ``resolved``)."""

    #: The SLO's name.
    name: str
    #: The SLO's kind.
    kind: str
    #: ``"fired"`` or ``"resolved"``.
    state: str
    #: Simulated time of the transition.
    sim_time: float
    #: Burn rates of the tripping window pair (zeros on resolve).
    burn_long: float = 0.0
    burn_short: float = 0.0
    #: The tripping pair's windows (zeros on resolve).
    long_window: float = 0.0
    short_window: float = 0.0
    #: Bad/total deltas over the tripping long window.
    bad: float = 0.0
    total: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe record (one alert-log line)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "sim_time": self.sim_time,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "bad": self.bad,
            "total": self.total,
        }


def _bad_total(
    spec: SloSpec,
    sample: Mapping[str, Any],
    boundaries: Optional[Sequence[float]],
) -> Optional[Tuple[float, float]]:
    """Cumulative (bad, total) counts for ``spec`` at ``sample``."""
    if spec.kind == "late_jobs":
        completed = sample.get("jobs_completed")
        late = sample.get("N")
        if completed is None or late is None:
            return None
        return float(late), float(completed)
    if spec.kind == "slow_invocations":
        counts = sample.get("overhead_buckets")
        if counts is None or boundaries is None:
            return None
        total = float(sum(counts))
        # counts[i] holds observations <= boundaries[i]; the final entry
        # is the overflow bucket.  Bad = observations in buckets whose
        # upper bound exceeds the threshold (conservative: a bucket
        # straddling the threshold counts as slow).
        bad = float(
            sum(
                count
                for count, bound in zip(
                    counts, list(boundaries) + [float("inf")]
                )
                if bound > spec.threshold
            )
        )
        return bad, total
    # degraded_solves
    counters = sample.get("counters")
    if counters is None:
        return None
    total = bad = 0.0
    for name, value in counters.items():
        if name.startswith("resilience.rung_used."):
            total += float(value)
            if name != "resilience.rung_used.cp_full":
                bad += float(value)
    return bad, total


class SloMonitor:
    """Evaluates SLO burn rates against the live telemetry samples.

    Subscribe it to a sampler
    (``sampler.add_listener(monitor.observe)``); each sample advances the
    per-SLO cumulative history and re-evaluates every window pair.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        tracer: Optional[Tracer] = None,
    ) -> None:
        for spec in specs:
            spec.validate()
        self.specs = tuple(specs)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: All alert transitions, in firing order.
        self.alerts: List[SloAlert] = []
        self._active: Dict[str, bool] = {spec.name: False for spec in specs}
        # Per-spec history of (sim_time, bad, total) cumulative points.
        self._history: Dict[str, List[Tuple[float, float, float]]] = {
            spec.name: [] for spec in specs
        }
        self._overhead_boundaries: Optional[Tuple[float, ...]] = None
        registry = self.tracer.registry
        self._m_fired = registry.counter("slo.alerts_fired")
        self._m_by_name = {
            spec.name: registry.counter(f"slo.alert.{spec.name}")
            for spec in specs
        }

    # ----------------------------------------------------------- evaluate
    def subscribe(self, sampler) -> None:
        """Attach to a sampler: every sample is evaluated as it lands."""
        if not getattr(sampler, "enabled", False):
            return

        def _listen(sample: Mapping[str, Any]) -> None:
            self.set_overhead_boundaries(sampler.overhead_boundaries)
            self.observe(sample)

        sampler.add_listener(_listen)

    def set_overhead_boundaries(
        self, boundaries: Optional[Sequence[float]]
    ) -> None:
        """Tell the monitor the overhead histogram's bucket bounds."""
        if boundaries is not None:
            self._overhead_boundaries = tuple(boundaries)

    def observe(self, sample: Mapping[str, Any]) -> List[SloAlert]:
        """Fold one telemetry sample in; returns new alert transitions."""
        now = float(sample.get("sim_time", 0.0))
        transitions: List[SloAlert] = []
        for spec in self.specs:
            point = _bad_total(spec, sample, self._overhead_boundaries)
            if point is None:
                continue
            bad, total = point
            history = self._history[spec.name]
            history.append((now, bad, total))
            tripping = self._evaluate(spec, history, now, bad, total)
            active = self._active[spec.name]
            if tripping is not None and not active:
                alert = self._transition(spec, "fired", now, tripping)
                transitions.append(alert)
            elif tripping is None and active:
                alert = self._transition(spec, "resolved", now, None)
                transitions.append(alert)
        return transitions

    def _window_delta(
        self,
        history: List[Tuple[float, float, float]],
        now: float,
        window: float,
        bad: float,
        total: float,
    ) -> Tuple[float, float]:
        """Bad/total deltas over the trailing ``window`` sim-seconds.

        The baseline is the latest history point at or before
        ``now - window``; a window reaching past the series start is
        clamped to the first sample (partial-window evaluation, so short
        runs still alert).
        """
        cutoff = now - window
        baseline = history[0]
        for point in history:
            if point[0] <= cutoff:
                baseline = point
            else:
                break
        return bad - baseline[1], total - baseline[2]

    def _evaluate(
        self,
        spec: SloSpec,
        history: List[Tuple[float, float, float]],
        now: float,
        bad: float,
        total: float,
    ) -> Optional[Tuple[BurnWindow, float, float, float, float]]:
        """First tripping window pair, or None when the SLO is healthy."""
        for window in spec.windows:
            d_bad_l, d_total_l = self._window_delta(
                history, now, window.long_window, bad, total
            )
            d_bad_s, d_total_s = self._window_delta(
                history, now, window.short_window, bad, total
            )
            if d_total_l <= 0 or d_total_s <= 0:
                continue
            burn_long = (d_bad_l / d_total_l) / spec.budget
            burn_short = (d_bad_s / d_total_s) / spec.budget
            if burn_long >= window.factor and burn_short >= window.factor:
                return window, burn_long, burn_short, d_bad_l, d_total_l
        return None

    def _transition(
        self,
        spec: SloSpec,
        state: str,
        now: float,
        tripping: Optional[Tuple[BurnWindow, float, float, float, float]],
    ) -> SloAlert:
        self._active[spec.name] = state == "fired"
        if tripping is not None:
            window, burn_long, burn_short, bad, total = tripping
            alert = SloAlert(
                name=spec.name,
                kind=spec.kind,
                state=state,
                sim_time=now,
                burn_long=burn_long,
                burn_short=burn_short,
                long_window=window.long_window,
                short_window=window.short_window,
                bad=bad,
                total=total,
            )
        else:
            alert = SloAlert(
                name=spec.name, kind=spec.kind, state=state, sim_time=now
            )
        self.alerts.append(alert)
        if state == "fired":
            self._m_fired.inc()
            self._m_by_name[spec.name].inc()
            _LOG.warning(
                "slo alert fired %s",
                kv(
                    name=spec.name,
                    kind=spec.kind,
                    sim_time=now,
                    burn_long=round(alert.burn_long, 4),
                    burn_short=round(alert.burn_short, 4),
                ),
            )
        else:
            _LOG.info(
                "slo alert resolved %s", kv(name=spec.name, sim_time=now)
            )
        self.tracer.instant(
            "slo.alert",
            "slo",
            args={
                "name": spec.name,
                "state": state,
                "burn_long": alert.burn_long,
                "burn_short": alert.burn_short,
            },
            sim_track=True,
        )
        return alert

    # ------------------------------------------------------------- output
    @property
    def fired(self) -> List[SloAlert]:
        """Only the ``fired`` transitions."""
        return [a for a in self.alerts if a.state == "fired"]

    def write_alerts(self, path: str) -> str:
        """Write the alert log as JSONL (one transition per line)."""
        lines = [
            json.dumps(alert.as_dict(), sort_keys=True)
            for alert in self.alerts
        ]
        atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
        return path
