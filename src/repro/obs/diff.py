"""Differential observability: a deterministic run-diff engine.

The repo's gates can *detect* drift -- the bench suite flags a changed
pinned metric, the checkpoint restore path flags a forked replay -- but
could not *localise or explain* one.  This module closes that gap: it
takes two runs (two seeds, two configs, or two code versions replaying
the same pinned config) and produces a structured explanation of how they
differ, in four layers:

1. **Event-stream alignment** -- Chrome-trace events are canonicalised
   (metadata dropped, wall-timeline timestamps quarantined the same way
   the sweep artifacts quarantine wall clocks) and aligned with a
   longest-common-subsequence diff, localising the *first divergent
   event*: its stream index, simulated time, and both sides' events.
2. **Divergence bisection** -- for two configs replaying the same pinned
   scenario, :func:`bisect_divergence` drives
   :func:`~repro.resilience.checkpoint.run_with_checkpoints` on both and
   binary-searches the checkpoint ladder for the first snapshot whose
   compared state differs, then pins the earliest scheduler invocation
   whose plan differs via the :class:`~repro.core.mrcp_rm.PlanRecord`
   histories.
3. **Delta forensics** -- the per-job lateness attributions of
   :mod:`repro.obs.forensics` become per-job *delta waterfalls*: which
   jobs got later or earlier and which component (contention, solver,
   fault, residual) moved, in integer microseconds that sum exactly to
   each job's tardiness delta.  Telemetry series (queue depth, slot
   utilization) are aligned by simulated time into overlay deltas.
4. **Surfaces** -- a machine-readable ``diff.json`` (schema
   ``repro-diff/1``), the ``mrcp-rm diff`` CLI subcommand, and a
   self-contained HTML diff report (:mod:`repro.obs.diffreport`).

Both run directories (written by :func:`capture_run_dir`) and merged
sweep artifacts (``sweep.json`` vs ``sweep.json``, per-cell verdicts) can
be diffed.  A same-seed self-diff reports zero divergence; any future
perf or sharding PR runs this engine to prove "no semantic drift" -- or
to explain intentional drift, job by job.

Heavy run machinery (:mod:`repro.experiments.runner`,
:mod:`repro.resilience.checkpoint`) is imported lazily inside the
functions that need it, so this module stays importable from
``repro.obs`` without cycles.
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.ioutil import atomic_write_text
from repro.obs.conformance import validate_trace_events
from repro.obs.forensics import attribute_lateness, load_trace_events
from repro.obs.structdiff import DiffEntry, structural_diff
from repro.obs.timeseries import read_series_jsonl
from repro.obs.trace import SIM_PID

#: Schema tag stamped on every diff document this engine emits.
DIFF_SCHEMA = "repro-diff/1"

#: Schema tags of the per-run artifacts inside a captured run directory.
RUN_SCHEMA = "repro-run/1"
FORENSICS_SCHEMA = "repro-forensics/1"
PLANS_SCHEMA = "repro-plans/1"

#: Merged sweep artifact schema (mirrors repro.experiments.pool).
_SWEEP_SCHEMA = "repro-sweep/1"

_US = 1_000_000

#: The four additive lateness components, in waterfall order.
_COMPONENTS = ("contention", "solver", "fault", "residual")

#: PlanRecord fields that define the *plan* (overhead is wall-clock
#: bookkeeping, not plan semantics -- two budgets trivially differ in it).
_PLAN_COMPARED = ("t", "outcome", "trigger", "rung", "planned_starts")

#: Trace event args quarantined from canonical comparison (wall seconds).
_QUARANTINED_EVENT_ARGS = frozenset({"overhead", "wall"})

#: Verbose metric keys excluded from canonical comparison.  The four time
#: keys are raw ``perf_counter`` readings (the solver phase profile): unlike
#: O -- measured through the *pinned* wall clock -- they never replay
#: identically.  ``solver_propagations`` counts fixpoint *effort* (how many
#: propagator executions reached the fixpoint), which any change to wake
#: scheduling or propagator incrementality legitimately alters without
#: moving a single plan; the diff contract compares plan semantics
#: (O/N/T/P, plans, forensics, the event spine), so effort counters are
#: quarantined alongside the clocks.  ``solver_fails``/``solver_branches``
#: stay compared -- they pin the search *tree*, not the effort.
QUARANTINED_METRIC_KEYS = frozenset(
    {
        "solver_propagate_time",
        "solver_warm_start_time",
        "solver_tree_time",
        "solver_lns_time",
        "solver_propagations",
    }
)

#: Stored overlay points per series field are capped so diff.json stays a
#: reviewable CI artifact even for long runs.
_MAX_OVERLAY_POINTS = 500


class DiffError(RuntimeError):
    """An input is unreadable or not something this engine can diff."""


# --------------------------------------------------------------------------
# Layer 1: event-stream canonicalisation and alignment
# --------------------------------------------------------------------------


def canonicalize_events(
    events: Iterable[Mapping[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Optional[float]]]:
    """Canonical comparison forms of a trace stream, plus sim-time hints.

    Canonicalisation applies the determinism quarantine: Chrome metadata
    events (``ph == "M"``) are dropped, wall-timeline events lose their
    ``ts``/``dur`` (real clock readings never replay identically; the
    pinned-clock case loses nothing semantic because the same information
    is in the event *order*), and wall-second arg keys are removed.
    Sim-timeline events keep their integer timestamps -- they are the
    deterministic spine the first divergence is located on.

    Returns ``(canonical, sim_times)`` -- parallel lists; ``sim_times[i]``
    is the event's own simulated time in seconds when it has one.
    """
    canonical: List[Dict[str, Any]] = []
    sim_times: List[Optional[float]] = []
    for ev in events:
        if ev.get("ph") == "M" or ev.get("name") == "metrics.snapshot":
            continue
        canon: Dict[str, Any] = {
            k: ev[k] for k in ("name", "cat", "ph", "pid", "tid", "s") if k in ev
        }
        sim_time: Optional[float] = None
        if ev.get("pid") == SIM_PID:
            for k in ("ts", "dur"):
                if k in ev:
                    canon[k] = ev[k]
            if "ts" in ev:
                sim_time = ev["ts"] / _US
        args = ev.get("args")
        if isinstance(args, dict):
            canon["args"] = {
                k: v
                for k, v in args.items()
                if k not in _QUARANTINED_EVENT_ARGS
            }
            if sim_time is None and isinstance(
                args.get("sim_time"), (int, float)
            ):
                sim_time = float(args["sim_time"])
        canonical.append(canon)
        sim_times.append(sim_time)
    return canonical, sim_times


@dataclass
class EventAlignment:
    """Outcome of aligning two canonicalised trace streams."""

    total_a: int
    total_b: int
    #: Events matched by the LCS (equal canonical forms, in order).
    matched: int
    #: Canonical events only in a / only in b (LCS insertions/deletions).
    only_a: int
    only_b: int
    #: First stream index where the canonical streams differ (common
    #: prefix length); None when one stream is a prefix of the other and
    #: both are equal, i.e. no divergence.
    first_divergence: Optional[Dict[str, Any]] = None
    #: Conformance problems found while validating either stream.
    problems: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.first_divergence is None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the alignment statistics."""
        return {
            "total_a": self.total_a,
            "total_b": self.total_b,
            "matched": self.matched,
            "only_a": self.only_a,
            "only_b": self.only_b,
            "identical": self.identical,
            "first_divergence": self.first_divergence,
            "problems": list(self.problems),
        }


def align_events(
    events_a: Iterable[Mapping[str, Any]],
    events_b: Iterable[Mapping[str, Any]],
    validate: bool = True,
) -> EventAlignment:
    """Align two trace streams; localise the first divergent event.

    The first divergence is the common-prefix length of the canonical
    streams; the LCS (via :class:`difflib.SequenceMatcher`) additionally
    yields how much of the streams still matches *after* the divergence --
    "one extra re-plan, everything else identical" reads very differently
    from "nothing aligns past event 312".
    """
    events_a = list(events_a)
    events_b = list(events_b)
    problems: List[str] = []
    if validate:
        problems += [f"a: {p}" for p in validate_trace_events(events_a)]
        problems += [f"b: {p}" for p in validate_trace_events(events_b)]
    canon_a, times_a = canonicalize_events(events_a)
    canon_b, times_b = canonicalize_events(events_b)
    keys_a = [json.dumps(e, sort_keys=True) for e in canon_a]
    keys_b = [json.dumps(e, sort_keys=True) for e in canon_b]

    matcher = difflib.SequenceMatcher(None, keys_a, keys_b, autojunk=False)
    matched = sum(size for _, _, size in matcher.get_matching_blocks())

    prefix = 0
    for ka, kb in zip(keys_a, keys_b):
        if ka != kb:
            break
        prefix += 1
    divergence: Optional[Dict[str, Any]] = None
    if prefix < max(len(keys_a), len(keys_b)) and not (
        prefix == min(len(keys_a), len(keys_b)) == max(len(keys_a), len(keys_b))
    ):
        # Sim time of the divergence: the diverging events' own sim time
        # when they carry one, else the last sim instant of the common
        # prefix (the divergence happened "at or after" that time).
        t_candidates = [
            t
            for t in (
                times_a[prefix] if prefix < len(times_a) else None,
                times_b[prefix] if prefix < len(times_b) else None,
            )
            if t is not None
        ]
        if not t_candidates:
            prior = [t for t in times_a[:prefix] if t is not None]
            t_candidates = [prior[-1]] if prior else [0.0]
        divergence = {
            "index": prefix,
            "sim_time": min(t_candidates),
            "a": canon_a[prefix] if prefix < len(canon_a) else None,
            "b": canon_b[prefix] if prefix < len(canon_b) else None,
        }
    return EventAlignment(
        total_a=len(canon_a),
        total_b=len(canon_b),
        matched=matched,
        only_a=len(canon_a) - matched,
        only_b=len(canon_b) - matched,
        first_divergence=divergence,
        problems=problems,
    )


# --------------------------------------------------------------------------
# Layer 3a: per-job delta waterfalls
# --------------------------------------------------------------------------


def delta_waterfalls(
    rows_a: Sequence[Mapping[str, Any]],
    rows_b: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-job tardiness deltas decomposed by lateness component.

    ``rows_a``/``rows_b`` are attribution rows
    (:meth:`~repro.obs.forensics.LatenessAttribution.as_dict`).  A job
    late in only one run contributes its full (dis)appearing tardiness.
    Each entry's ``components_us`` sum *exactly* to its ``delta_us`` --
    both sides' components sum exactly to their tardiness, so the
    integer-microsecond differences inherit the property.  Jobs with a
    zero delta and identical components are omitted.
    """
    by_a = {int(r["job_id"]): r for r in rows_a}
    by_b = {int(r["job_id"]): r for r in rows_b}
    out: List[Dict[str, Any]] = []
    for job_id in sorted(set(by_a) | set(by_b)):
        a = by_a.get(job_id)
        b = by_b.get(job_id)
        ta = int(a["tardiness_us"]) if a else 0
        tb = int(b["tardiness_us"]) if b else 0
        components = {
            name: (int(b[f"{name}_us"]) if b else 0)
            - (int(a[f"{name}_us"]) if a else 0)
            for name in _COMPONENTS
        }
        delta = tb - ta
        if delta == 0 and not any(components.values()):
            continue
        if a is None:
            direction = "appeared"
        elif b is None:
            direction = "disappeared"
        elif delta > 0:
            direction = "later"
        elif delta < 0:
            direction = "earlier"
        else:
            direction = "shifted"  # same tardiness, different composition
        out.append(
            {
                "job_id": job_id,
                "tardiness_a_us": ta,
                "tardiness_b_us": tb,
                "delta_us": delta,
                "components_us": components,
                "direction": direction,
            }
        )
    return out


# --------------------------------------------------------------------------
# Layer 3b: series overlay deltas
# --------------------------------------------------------------------------


def _flatten_sample(sample: Mapping[str, Any]) -> Dict[str, float]:
    """Numeric fields of one telemetry sample, probes/counters prefixed."""
    flat: Dict[str, float] = {}
    for key, value in sample.items():
        if key in ("seq", "final"):
            continue
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[key] = float(value)
        elif key in ("probes", "counters") and isinstance(value, dict):
            for sub, v in value.items():
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    flat[f"{key}.{sub}"] = float(v)
    return flat


def diff_series(
    samples_a: Sequence[Mapping[str, Any]],
    samples_b: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Align two telemetry series by simulated time; report field deltas.

    Returns ``{"aligned", "only_a", "only_b", "changed", "overlays"}``:
    ``changed`` maps each diverging field to its max |delta| and the first
    simulated time it diverged at; ``overlays`` carries bounded
    ``[t, a, b]`` point lists for the HTML report's overlay strips.
    """
    by_t_a = {float(s.get("sim_time", 0.0)): _flatten_sample(s) for s in samples_a}
    by_t_b = {float(s.get("sim_time", 0.0)): _flatten_sample(s) for s in samples_b}
    shared = sorted(set(by_t_a) & set(by_t_b))
    fields = set()
    for flat in list(by_t_a.values()) + list(by_t_b.values()):
        fields.update(flat)
    changed: Dict[str, Dict[str, float]] = {}
    overlays: Dict[str, List[List[float]]] = {}
    for name in sorted(fields):
        points: List[List[float]] = []
        max_abs = 0.0
        first_t: Optional[float] = None
        for t in shared:
            va = by_t_a[t].get(name)
            vb = by_t_b[t].get(name)
            if va is None and vb is None:
                continue
            points.append([t, va, vb])
            if va != vb:
                delta = abs((vb or 0.0) - (va or 0.0))
                max_abs = max(max_abs, delta)
                if first_t is None:
                    first_t = t
        if first_t is not None:
            changed[name] = {"max_abs_delta": max_abs, "first_divergence_t": first_t}
            overlays[name] = points[:_MAX_OVERLAY_POINTS]
    return {
        "aligned": len(shared),
        "only_a": len(by_t_a) - len(shared),
        "only_b": len(by_t_b) - len(shared),
        "changed": changed,
        "overlays": overlays,
    }


# --------------------------------------------------------------------------
# Metrics and plan deltas
# --------------------------------------------------------------------------


def metrics_delta(
    metrics_a: Mapping[str, Any], metrics_b: Mapping[str, Any]
) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-key (a, b, delta) over the union of two metric dicts."""
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for key in sorted(set(metrics_a) | set(metrics_b)):
        va = metrics_a.get(key)
        vb = metrics_b.get(key)
        entry: Dict[str, Optional[float]] = {
            "a": float(va) if isinstance(va, (int, float)) else None,
            "b": float(vb) if isinstance(vb, (int, float)) else None,
        }
        entry["delta"] = (
            entry["b"] - entry["a"]
            if entry["a"] is not None and entry["b"] is not None
            else None
        )
        out[key] = entry
    return out


def plan_record_dict(record: Any) -> Dict[str, Any]:
    """JSON-safe rendering of one :class:`~repro.core.mrcp_rm.PlanRecord`."""
    return {
        "t": record.t,
        "outcome": record.outcome,
        "overhead": record.overhead,
        "trigger": record.trigger,
        "rung": getattr(record, "rung", "cp_full"),
        "planned_starts": {str(k): v for k, v in record.planned_starts.items()},
    }


def first_divergent_plan(
    plans_a: Sequence[Mapping[str, Any]],
    plans_b: Sequence[Mapping[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The earliest scheduler invocation whose *plan* differs.

    Compares the semantic fields (:data:`_PLAN_COMPARED`) of each
    invocation's PlanRecord in order; overhead is reported as context but
    never decides divergence.  Returns None when the histories agree.
    """
    for index, (ra, rb) in enumerate(zip(plans_a, plans_b)):
        ka = {k: ra.get(k) for k in _PLAN_COMPARED}
        kb = {k: rb.get(k) for k in _PLAN_COMPARED}
        if ka != kb:
            entries = structural_diff(ka, kb)
            return {
                "index": index,
                "sim_time": float(min(ra.get("t", 0), rb.get("t", 0))),
                "a": dict(ra),
                "b": dict(rb),
                "changed": [e.as_dict() for e in entries],
            }
    if len(plans_a) != len(plans_b):
        index = min(len(plans_a), len(plans_b))
        longer = plans_a if len(plans_a) > len(plans_b) else plans_b
        return {
            "index": index,
            "sim_time": float(longer[index].get("t", 0)),
            "a": dict(plans_a[index]) if index < len(plans_a) else None,
            "b": dict(plans_b[index]) if index < len(plans_b) else None,
            "changed": [
                DiffEntry(
                    "invocations", "length", len(plans_a), len(plans_b)
                ).as_dict()
            ],
        }
    return None


# --------------------------------------------------------------------------
# Run directories: capture and load
# --------------------------------------------------------------------------


@dataclass
class RunArtifacts:
    """One captured run, loaded back from its directory (or in memory)."""

    path: str
    run: Dict[str, Any]
    events: List[Dict[str, Any]]
    attributions: List[Dict[str, Any]]
    plans: List[Dict[str, Any]]
    series: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def label(self) -> str:
        return str(self.run.get("label") or self.path)


def capture_run_dir(
    config: Any,
    out_dir: str,
    label: str = "",
    replication: int = 0,
    interval: float = 5.0,
) -> RunArtifacts:
    """Run ``config`` deterministically and persist the diffable artifacts.

    The run is pinned (:func:`~repro.resilience.checkpoint.deterministic_run_config`:
    pinned wall clock, fail-limited LNS-off solver) so a same-seed capture
    is byte-reproducible, then executed with tracing, plan history and
    telemetry on.  The directory holds ``run.json`` (metrics + job SLAs),
    ``trace.json``/``trace.jsonl``, ``series.jsonl``, ``forensics.json``
    (per-job lateness attributions) and ``plans.json`` (the PlanRecord
    history) -- everything :func:`diff_run_dirs` needs, with no object
    graph to reconstruct.
    """
    from dataclasses import replace

    from repro.experiments.runner import build_live_run
    from repro.obs.config import ObsConfig
    from repro.obs.timeseries import TelemetryConfig
    from repro.resilience.checkpoint import (
        config_fingerprint,
        deterministic_run_config,
        fresh_run_config,
    )

    os.makedirs(out_dir, exist_ok=True)
    config = fresh_run_config(deterministic_run_config(config))
    obs = replace(
        config.obs,
        trace=True,
        trace_out=os.path.join(out_dir, "trace.json"),
        plan_history=True,
        telemetry=TelemetryConfig(
            enabled=True,
            interval=interval,
            series_out=os.path.join(out_dir, "series.jsonl"),
        ),
    )
    if not isinstance(obs, ObsConfig):  # pragma: no cover - defensive
        raise DiffError(f"config.obs is {type(obs).__name__}, not ObsConfig")
    config = replace(config, obs=obs)

    run = build_live_run(config, replication)
    metrics = run.finish()

    events = list(run.tracer.recorder.events)
    plan_history = run.manager.plan_history if run.manager is not None else []
    attributions = attribute_lateness(
        metrics, run.jobs, events, plan_history=plan_history
    )
    attribution_rows = [a.as_dict() for a in attributions]
    plan_rows = [plan_record_dict(r) for r in plan_history]

    run_doc = {
        "schema": RUN_SCHEMA,
        "label": label,
        "seed": config.seed,
        "replication": replication,
        "fingerprint": config_fingerprint(config, replication),
        "scheduler": config.scheduler,
        "metrics": {
            k: v
            for k, v in metrics.as_dict(verbose=True).items()
            if k not in QUARANTINED_METRIC_KEYS
        },
        "counts": {
            "jobs_arrived": metrics.jobs_arrived,
            "jobs_completed": metrics.jobs_completed,
            "jobs_failed": metrics.jobs_failed,
            "scheduler_invocations": metrics.scheduler_invocations,
            "makespan": metrics.makespan,
        },
        "jobs": [
            {
                "id": job.id,
                "arrival_time": job.arrival_time,
                "earliest_start": job.earliest_start,
                "deadline": job.deadline,
            }
            for job in run.jobs
        ],
    }
    _write_json(os.path.join(out_dir, "run.json"), run_doc)
    _write_json(
        os.path.join(out_dir, "forensics.json"),
        {"schema": FORENSICS_SCHEMA, "attributions": attribution_rows},
    )
    _write_json(
        os.path.join(out_dir, "plans.json"),
        {"schema": PLANS_SCHEMA, "plans": plan_rows},
    )
    # Match the on-disk form: the series writer quarantines wall-clock
    # keys, so the in-memory artifacts must too or a capture would not
    # equal its own reload.
    from repro.obs.timeseries import QUARANTINED_KEYS

    series = [
        {k: v for k, v in sample.items() if k not in QUARANTINED_KEYS}
        for sample in run.sampler.store.samples
    ]
    return RunArtifacts(
        path=out_dir,
        run=run_doc,
        events=events,
        attributions=attribution_rows,
        plans=plan_rows,
        series=series,
    )


def _write_json(path: str, payload: Mapping[str, Any]) -> str:
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return path


def _read_json(path: str, expect_schema: Optional[str] = None) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise DiffError(f"cannot read {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise DiffError(f"{path} is {type(doc).__name__}, not an object")
    if expect_schema is not None and doc.get("schema") != expect_schema:
        raise DiffError(
            f"{path} has schema {doc.get('schema')!r}, expected "
            f"{expect_schema!r}"
        )
    return doc


def load_run_dir(path: str) -> RunArtifacts:
    """Load a run directory written by :func:`capture_run_dir`."""
    if not os.path.isdir(path):
        raise DiffError(f"run directory {path!r} does not exist")
    run_doc = _read_json(os.path.join(path, "run.json"), RUN_SCHEMA)
    metrics = run_doc.get("metrics")
    if isinstance(metrics, dict):
        # Captures written before a key joined the quarantine must not
        # report divergence against captures written after.
        run_doc["metrics"] = {
            k: v for k, v in metrics.items() if k not in QUARANTINED_METRIC_KEYS
        }
    trace_path = os.path.join(path, "trace.jsonl")
    events = load_trace_events(trace_path) if os.path.exists(trace_path) else []
    forensics_path = os.path.join(path, "forensics.json")
    attributions: List[Dict[str, Any]] = []
    if os.path.exists(forensics_path):
        attributions = list(
            _read_json(forensics_path, FORENSICS_SCHEMA)["attributions"]
        )
    plans_path = os.path.join(path, "plans.json")
    plans: List[Dict[str, Any]] = []
    if os.path.exists(plans_path):
        plans = list(_read_json(plans_path, PLANS_SCHEMA)["plans"])
    series_path = os.path.join(path, "series.jsonl")
    series: List[Dict[str, Any]] = []
    if os.path.exists(series_path):
        _, series = read_series_jsonl(series_path)
    return RunArtifacts(
        path=path,
        run=run_doc,
        events=events,
        attributions=attributions,
        plans=plans,
        series=series,
    )


# --------------------------------------------------------------------------
# Run diff
# --------------------------------------------------------------------------


@dataclass
class RunDiff:
    """The full structured diff of two captured runs."""

    a: RunArtifacts
    b: RunArtifacts
    alignment: EventAlignment
    metrics: Dict[str, Dict[str, Optional[float]]]
    invocation: Optional[Dict[str, Any]]
    waterfalls: List[Dict[str, Any]]
    series: Dict[str, Any]

    @property
    def divergent(self) -> bool:
        return bool(
            not self.alignment.identical
            or self.invocation is not None
            or self.waterfalls
            or self.series.get("changed")
            or any(
                e["delta"] not in (0, 0.0, None) for e in self.metrics.values()
            )
        )

    @property
    def verdict(self) -> str:
        return "divergent" if self.divergent else "identical"

    def to_json_dict(self) -> Dict[str, Any]:
        """The machine-readable ``repro-diff/1`` document (kind ``run``)."""
        return {
            "schema": DIFF_SCHEMA,
            "kind": "run",
            "verdict": self.verdict,
            "a": {
                "path": self.a.path,
                "label": self.a.label,
                "seed": self.a.run.get("seed"),
                "fingerprint": self.a.run.get("fingerprint"),
            },
            "b": {
                "path": self.b.path,
                "label": self.b.label,
                "seed": self.b.run.get("seed"),
                "fingerprint": self.b.run.get("fingerprint"),
            },
            "metrics": self.metrics,
            "events": self.alignment.as_dict(),
            "invocation": self.invocation,
            "waterfalls": self.waterfalls,
            "series": self.series,
        }


def diff_runs(a: RunArtifacts, b: RunArtifacts) -> RunDiff:
    """Diff two loaded runs (all four layers that apply offline)."""
    return RunDiff(
        a=a,
        b=b,
        alignment=align_events(a.events, b.events),
        metrics=metrics_delta(
            a.run.get("metrics", {}), b.run.get("metrics", {})
        ),
        invocation=first_divergent_plan(a.plans, b.plans),
        waterfalls=delta_waterfalls(a.attributions, b.attributions),
        series=diff_series(a.series, b.series),
    )


def diff_run_dirs(path_a: str, path_b: str) -> RunDiff:
    """Load two run directories and diff them."""
    return diff_runs(load_run_dir(path_a), load_run_dir(path_b))


def write_diff_json(path: str, doc: Mapping[str, Any]) -> str:
    """Atomically write a diff document (CI artifact surface)."""
    return _write_json(path, doc)


# --------------------------------------------------------------------------
# Sweep diff
# --------------------------------------------------------------------------


def diff_sweeps(path_a: str, path_b: str) -> Dict[str, Any]:
    """Diff two merged ``sweep.json`` artifacts with per-cell verdicts.

    Cells pair by index (the sweeps' deterministic merge order).  A cell
    is ``identical`` when its status, metrics and counts match exactly,
    ``divergent`` otherwise; unpaired cells are ``only_in_a``/``only_in_b``.
    The document verdict is ``identical`` only when every cell is.
    """
    doc_a = _read_json(path_a, _SWEEP_SCHEMA)
    doc_b = _read_json(path_b, _SWEEP_SCHEMA)
    cells_a = {int(c["index"]): c for c in doc_a.get("cells", [])}
    cells_b = {int(c["index"]): c for c in doc_b.get("cells", [])}
    cell_rows: List[Dict[str, Any]] = []
    divergent_cells = 0
    for index in sorted(set(cells_a) | set(cells_b)):
        ca = cells_a.get(index)
        cb = cells_b.get(index)
        if ca is None or cb is None:
            present = ca or cb
            cell_rows.append(
                {
                    "index": index,
                    "label": present.get("label", ""),
                    "replication": present.get("replication"),
                    "verdict": "only_in_a" if cb is None else "only_in_b",
                    "changed": [],
                }
            )
            divergent_cells += 1
            continue
        compared_a = {
            k: ca.get(k) for k in ("status", "metrics", "counts", "seed")
        }
        compared_b = {
            k: cb.get(k) for k in ("status", "metrics", "counts", "seed")
        }
        entries = structural_diff(compared_a, compared_b)
        if entries:
            divergent_cells += 1
        cell_rows.append(
            {
                "index": index,
                "label": ca.get("label", ""),
                "replication": ca.get("replication"),
                "verdict": "divergent" if entries else "identical",
                "changed": [e.as_dict() for e in entries],
            }
        )
    summary_delta = {
        label: metrics_delta(
            doc_a.get("summary", {}).get(label, {}),
            doc_b.get("summary", {}).get(label, {}),
        )
        for label in sorted(
            set(doc_a.get("summary", {})) | set(doc_b.get("summary", {}))
        )
    }
    return {
        "schema": DIFF_SCHEMA,
        "kind": "sweep",
        "verdict": "divergent" if divergent_cells else "identical",
        "a": {"path": path_a, "name": doc_a.get("sweep", {}).get("name")},
        "b": {"path": path_b, "name": doc_b.get("sweep", {}).get("name")},
        "cells_total": len(cell_rows),
        "cells_divergent": divergent_cells,
        "cells": cell_rows,
        "summary": summary_delta,
    }


# --------------------------------------------------------------------------
# Layer 2: divergence bisection over checkpoint boundaries
# --------------------------------------------------------------------------


@dataclass
class BisectionResult:
    """Where two configs' executions first fork, at two granularities.

    ``checkpoint_index``/``checkpoint_events`` localise the fork on the
    checkpoint ladder (event-count granularity); ``invocation`` pins the
    earliest scheduler invocation whose plan differs, with both
    PlanRecords as context.  ``divergent`` is False when the two configs
    replay identically at both granularities.
    """

    checkpoint_index: Optional[int]
    checkpoint_events: Optional[int]
    state_changed: List[Dict[str, Any]]
    invocation: Optional[Dict[str, Any]]
    metrics: Dict[str, Dict[str, Optional[float]]]
    checkpoints_compared: int

    @property
    def divergent(self) -> bool:
        return self.checkpoint_index is not None or self.invocation is not None

    def as_dict(self) -> Dict[str, Any]:
        """The machine-readable ``repro-diff/1`` document (kind ``bisection``)."""
        return {
            "schema": DIFF_SCHEMA,
            "kind": "bisection",
            "verdict": "divergent" if self.divergent else "identical",
            "checkpoint_index": self.checkpoint_index,
            "checkpoint_events": self.checkpoint_events,
            "checkpoints_compared": self.checkpoints_compared,
            "state_changed": self.state_changed,
            "invocation": self.invocation,
            "metrics": self.metrics,
        }


def _compared_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic sections of a checkpoint snapshot.

    Fingerprints differ between the two configs by construction, and the
    pinned clock count lives inside ``state`` -- two budgets legitimately
    consume different clock samples, which is itself a divergence signal,
    so ``state`` is compared whole.
    """
    return {
        "position": snapshot["position"],
        "state": snapshot["state"],
    }


def bisect_divergence(
    config_a: Any,
    config_b: Any,
    every_events: int = 25,
    replication: int = 0,
    max_state_paths: int = 10,
) -> BisectionResult:
    """Find where two configs' executions of the same scenario fork.

    Both configs run under :func:`~repro.resilience.checkpoint.run_with_checkpoints`
    at the same event cadence, giving two aligned snapshot ladders; a
    binary search over the ladder finds the first checkpoint whose
    compared state (position + run state) differs.  Divergence is
    monotone here -- the runs are deterministic, so once their states
    differ they never re-converge to *identical* state -- which is what
    makes bisection sound.  The scheduler-invocation pin then comes from
    replaying both configs with plan history on and taking the earliest
    PlanRecord whose plan differs.
    """
    from dataclasses import replace

    from repro.experiments.runner import build_live_run
    from repro.resilience.checkpoint import (
        CheckpointConfig,
        fresh_run_config,
        run_with_checkpoints,
    )

    ckpt = CheckpointConfig(every_events=every_events)
    run_a = run_with_checkpoints(config_a, ckpt, replication=replication)
    run_b = run_with_checkpoints(config_b, ckpt, replication=replication)

    paired = min(len(run_a.snapshots), len(run_b.snapshots))
    first_diverged: Optional[int] = None
    if paired:
        lo, hi = 0, paired - 1
        if _compared_snapshot(run_a.snapshots[hi]) != _compared_snapshot(
            run_b.snapshots[hi]
        ):
            while lo < hi:
                mid = (lo + hi) // 2
                if _compared_snapshot(
                    run_a.snapshots[mid]
                ) != _compared_snapshot(run_b.snapshots[mid]):
                    hi = mid
                else:
                    lo = mid + 1
            first_diverged = lo
    if first_diverged is None and len(run_a.snapshots) != len(run_b.snapshots):
        first_diverged = paired

    state_changed: List[Dict[str, Any]] = []
    checkpoint_events: Optional[int] = None
    if first_diverged is not None and first_diverged < paired:
        snap_a = run_a.snapshots[first_diverged]
        snap_b = run_b.snapshots[first_diverged]
        checkpoint_events = int(snap_a["position"]["events_dispatched"])
        state_changed = [
            e.as_dict()
            for e in structural_diff(
                _compared_snapshot(snap_a),
                _compared_snapshot(snap_b),
                max_entries=max_state_paths,
            )
        ]
    elif first_diverged is not None:
        longer = run_a if len(run_a.snapshots) > len(run_b.snapshots) else run_b
        checkpoint_events = int(
            longer.snapshots[first_diverged]["position"]["events_dispatched"]
        )
        state_changed = [
            DiffEntry(
                "snapshots",
                "length",
                len(run_a.snapshots),
                len(run_b.snapshots),
            ).as_dict()
        ]

    def _with_history(config: Any) -> Any:
        return replace(
            config, mrcp=replace(config.mrcp, record_plan_history=True)
        )

    live_a = build_live_run(
        _with_history(fresh_run_config(config_a)), replication
    )
    metrics_a = live_a.finish()
    live_b = build_live_run(
        _with_history(fresh_run_config(config_b)), replication
    )
    metrics_b = live_b.finish()
    plans_a = [
        plan_record_dict(r)
        for r in (live_a.manager.plan_history if live_a.manager else [])
    ]
    plans_b = [
        plan_record_dict(r)
        for r in (live_b.manager.plan_history if live_b.manager else [])
    ]

    return BisectionResult(
        checkpoint_index=first_diverged,
        checkpoint_events=checkpoint_events,
        state_changed=state_changed,
        invocation=first_divergent_plan(plans_a, plans_b),
        metrics=metrics_delta(metrics_a.as_dict(), metrics_b.as_dict()),
        checkpoints_compared=paired,
    )


# --------------------------------------------------------------------------
# Canonical diff scenario (CLI capture mode, CI smoke, tests)
# --------------------------------------------------------------------------


def default_diff_config(
    seed: int = 3,
    fail_limit: Optional[int] = None,
    num_jobs: int = 14,
) -> Any:
    """A deterministic, contention-heavy scenario for diff drills.

    Tight deadlines on a scarce two-resource cluster guarantee late jobs
    (so delta waterfalls have content) and make the CP search tree deep
    enough that the fail-limited budget actually decides the plan: the
    warm-start incumbent is not optimal, so two captures differing only
    in ``fail_limit`` (e.g. the default 200 vs 1) install different
    plans, giving the engine a genuine divergence to localise.  The
    default seed is one where that perturbation demonstrably forks the
    plan history.
    """
    from repro.core import MrcpRmConfig
    from repro.cp.solver import SolverParams
    from repro.experiments.runner import RunConfig, SystemConfig
    from repro.workload import SyntheticWorkloadParams

    return RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=num_jobs,
            map_tasks_range=(2, 14),
            reduce_tasks_range=(1, 6),
            e_max=30,
            ar_probability=0.5,
            s_max=500,
            deadline_multiplier_max=1.2,
            arrival_rate=0.1,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
        mrcp=MrcpRmConfig(
            record_plan_history=True,
            solver=SolverParams(
                time_limit=30.0,
                tree_fail_limit=fail_limit if fail_limit is not None else 200,
                use_lns=False,
            ),
        ),
        seed=seed,
    )


def format_run_diff(diff: RunDiff) -> str:
    """Console summary of a run diff (the CLI's human surface)."""
    lines = [f"verdict: {diff.verdict}"]
    for key in ("O", "N", "T", "P"):
        entry = diff.metrics.get(key)
        if entry is None or entry["a"] is None or entry["b"] is None:
            continue
        lines.append(
            f"  {key}: {entry['a']:g} -> {entry['b']:g} "
            f"(delta {entry['delta']:+g})"
        )
    al = diff.alignment
    lines.append(
        f"  events: {al.total_a} vs {al.total_b} "
        f"({al.matched} aligned, {al.only_a}+{al.only_b} unmatched)"
    )
    if al.first_divergence is not None:
        fd = al.first_divergence
        name_a = (fd["a"] or {}).get("name")
        name_b = (fd["b"] or {}).get("name")
        lines.append(
            f"  first divergent event : index {fd['index']} at "
            f"t={fd['sim_time']:g}s ({name_a!r} vs {name_b!r})"
        )
    if diff.invocation is not None:
        inv = diff.invocation
        lines.append(
            f"  first divergent plan  : invocation {inv['index']} at "
            f"t={inv['sim_time']:g}s "
            f"({len(inv['changed'])} changed path(s))"
        )
    if diff.waterfalls:
        later = sum(1 for w in diff.waterfalls if w["delta_us"] > 0)
        earlier = sum(1 for w in diff.waterfalls if w["delta_us"] < 0)
        lines.append(
            f"  delta waterfalls      : {len(diff.waterfalls)} job(s) moved "
            f"({later} later, {earlier} earlier)"
        )
        for w in diff.waterfalls[:8]:
            dominant = max(
                w["components_us"], key=lambda k: abs(w["components_us"][k])
            )
            lines.append(
                f"    job {w['job_id']:>4d}: {w['delta_us'] / _US:+.1f}s "
                f"({w['direction']}, dominant {dominant})"
            )
    changed_series = diff.series.get("changed", {})
    if changed_series:
        lines.append(
            f"  series fields diverged: {len(changed_series)} "
            f"(e.g. {next(iter(sorted(changed_series)))})"
        )
    return "\n".join(lines)


def format_sweep_diff(doc: Mapping[str, Any]) -> str:
    """Console summary of a sweep diff."""
    lines = [
        f"verdict: {doc['verdict']}",
        f"  cells: {doc['cells_divergent']}/{doc['cells_total']} divergent",
    ]
    for cell in doc["cells"]:
        if cell["verdict"] == "identical":
            continue
        detail = ""
        if cell["changed"]:
            first = cell["changed"][0]
            detail = (
                f" ({first['path']}: {first['a']!r} -> {first['b']!r}"
                + (
                    f", +{len(cell['changed']) - 1} more"
                    if len(cell["changed"]) > 1
                    else ""
                )
                + ")"
            )
        lines.append(
            f"    cell {cell['index']:>4} {cell['label']} "
            f"rep {cell['replication']}: {cell['verdict']}{detail}"
        )
    return "\n".join(lines)
