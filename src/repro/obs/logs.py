"""Structured logging for the repro packages.

All repro loggers live under the ``"repro"`` namespace and stay silent
(``NullHandler``) until :func:`configure_logging` installs a handler --
importing the library never touches the root logger's configuration.

Log lines are *structured*: a fixed event name followed by ``key=value``
pairs (see :func:`kv`), so they stay grep/awk-friendly::

    INFO repro.mrcp replan_on_failure sim_time=412.0 active_jobs=3
"""

from __future__ import annotations

import logging
from typing import IO, Optional

#: Namespace root of every repro logger.
ROOT = "repro"

#: Marker attribute distinguishing our handler from user-installed ones.
_HANDLER_FLAG = "_repro_obs_handler"

logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("mrcp")``)."""
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def kv(**fields: object) -> str:
    """Format ``key=value`` pairs for a structured log line.

    Floats render compactly; strings containing spaces are quoted.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
            if " " in text:
                text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def configure_logging(
    level: str = "info", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install (or retune) the repro log handler; returns the root logger.

    Idempotent: calling again adjusts the level / stream of the previously
    installed handler instead of stacking a second one.  ``level`` is a
    standard name (``"debug"``, ``"info"``, ``"warning"``, ``"error"``).
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger = logging.getLogger(ROOT)
    logger.setLevel(numeric)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_FLAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream)
        setattr(handler, _HANDLER_FLAG, True)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s %(message)s")
        )
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    handler.setLevel(numeric)
    return logger
