"""Shared structural diff over JSON-like values.

Several subsystems need to answer "where exactly do these two nested
structures differ?": the checkpoint restore path proves replayed state
matches its snapshot, the bench gate compares pinned metrics against the
committed baseline, and the run-diff engine (:mod:`repro.obs.diff`)
localises drift between two runs.  They all share this core: a leaf-level
walk of two JSON-like values (dicts, lists, scalars) producing one
:class:`DiffEntry` per divergent path, in deterministic (sorted-key /
index) order.

The module is dependency-free on purpose -- it sits below both
``repro.obs`` and ``repro.resilience`` and can be imported from anywhere
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "DiffEntry",
    "structural_diff",
    "diff_paths",
    "format_entries",
    "first_mismatch",
]


@dataclass(frozen=True)
class DiffEntry:
    """One leaf-level divergence between two JSON-like structures.

    ``kind`` is one of:

    * ``"changed"`` -- the path exists on both sides with unequal values;
    * ``"missing"`` -- the path exists only on the left side;
    * ``"extra"``   -- the path exists only on the right side;
    * ``"length"``  -- two lists of different length (compared up to the
      shorter one; the tail is reported as this single entry).
    """

    path: str
    kind: str
    left: Any = None
    right: Any = None

    def render(self, left_label: str = "a", right_label: str = "b") -> str:
        """Human-readable one-liner showing both values."""
        if self.kind == "missing":
            return f"{self.path}: only in {left_label} ({self.left!r})"
        if self.kind == "extra":
            return f"{self.path}: only in {right_label} ({self.right!r})"
        if self.kind == "length":
            return (
                f"{self.path}: length {self.left} ({left_label}) != "
                f"{self.right} ({right_label})"
            )
        return (
            f"{self.path}: {left_label}={self.left!r} "
            f"{right_label}={self.right!r}"
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering for machine-readable diff artifacts."""
        return {
            "path": self.path,
            "kind": self.kind,
            "a": _json_safe(self.left),
            "b": _json_safe(self.right),
        }


def _json_safe(value: Any) -> Any:
    """Coerce a leaf to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def structural_diff(
    a: Any,
    b: Any,
    path: str = "",
    max_entries: Optional[int] = None,
) -> List[DiffEntry]:
    """Leaf-level divergences between ``a`` and ``b``, depth-first.

    Dict keys are walked in sorted order and list items by index, so the
    entry order is deterministic.  ``max_entries`` bounds the walk (the
    full count is unavailable when it binds -- callers that only render
    the first N should pass ``N + 1`` to know whether more exist).
    """
    out: List[DiffEntry] = []
    _walk(a, b, path, out, max_entries)
    return out


def _walk(
    a: Any,
    b: Any,
    path: str,
    out: List[DiffEntry],
    max_entries: Optional[int],
) -> None:
    if max_entries is not None and len(out) >= max_entries:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(DiffEntry(sub, "extra", right=b[key]))
            elif key not in b:
                out.append(DiffEntry(sub, "missing", left=a[key]))
            else:
                _walk(a[key], b[key], sub, out, max_entries)
            if max_entries is not None and len(out) >= max_entries:
                return
        return
    if isinstance(a, list) and isinstance(b, list):
        for i, (x, y) in enumerate(zip(a, b)):
            _walk(x, y, f"{path}[{i}]", out, max_entries)
            if max_entries is not None and len(out) >= max_entries:
                return
        if len(a) != len(b):
            out.append(DiffEntry(path, "length", left=len(a), right=len(b)))
        return
    if a != b:
        out.append(DiffEntry(path, "changed", left=a, right=b))


def diff_paths(a: Any, b: Any, path: str = "") -> List[str]:
    """Rendered divergent paths (the historical checkpoint helper shape)."""
    return [e.render() for e in structural_diff(a, b, path)]


def format_entries(
    entries: List[DiffEntry],
    limit: int = 5,
    left_label: str = "a",
    right_label: str = "b",
) -> str:
    """Render the first ``limit`` entries, noting how many were elided."""
    shown = "; ".join(
        e.render(left_label, right_label) for e in entries[:limit]
    )
    if len(entries) > limit:
        shown += f" (+{len(entries) - limit} more)"
    return shown


def first_mismatch(a: Any, b: Any) -> Optional[DiffEntry]:
    """The first divergent leaf in walk order, or None when equal."""
    entries = structural_diff(a, b, max_entries=1)
    return entries[0] if entries else None
