"""Crash-safe checkpoint/restore for simulation runs.

The event calendar holds closures, so serialising the heap directly is a
dead end.  Instead a checkpoint is a **position plus a state proof**:

* *position* -- how many events have been dispatched, the simulated time
  and the kernel's scheduling sequence counter;
* *state* -- a canonical JSON rendering of every piece of mutable run
  state that future decisions depend on (manager bookkeeping, executor
  plan/running/completed sets, retry counters, RNG stream states,
  breaker states, metrics accounting).

Restoring rebuilds the run from its config and seed, fast-forwards the
fresh simulation one event at a time to the checkpoint's position, and
then **strictly compares** the reconstructed state against the snapshot.
The kernel dispatches events in a deterministic order for a given seed,
so the replay lands in exactly the captured state -- and the comparison
proves it, rather than assuming it.  A killed run restored this way
continues to byte-identical O/N/T/P versus an uninterrupted same-seed
run.

Determinism contract: byte-identical *O* additionally requires the run to
be pinned -- a :class:`~repro.experiments.pool.PinnedClock` as the wall
clock and a fail-limited deterministic solver budget (LNS off), exactly
the recipe the sweep pool and bench suite already use;
:func:`deterministic_run_config` applies it.  Unpinned runs still replay
to identical N/T/P and identical structural state; real wall-clock
readings land in the snapshot's ``volatile`` section, which is recorded
for debugging but never compared.

Checkpoint files are written atomically (``tmp + os.replace``) so a kill
mid-write leaves the previous complete checkpoint, never a torn one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.experiments.pool import PinnedClock, deterministic_solver_params
from repro.experiments.runner import LiveRun, RunConfig, build_live_run
from repro.ioutil import atomic_write_json
from repro.metrics.collector import RunMetrics
from repro.obs.logs import get_logger, kv
from repro.obs.structdiff import format_entries, structural_diff
from repro.resilience.breaker import InjectedSolverFailures

_LOG = get_logger("resilience.checkpoint")

#: Checkpoint schema identifier; bump on incompatible layout changes.
SCHEMA = "repro-ckpt/1"

#: Top-level keys every valid snapshot must carry.
_REQUIRED_KEYS = ("schema", "fingerprint", "replication", "position", "state")


class CheckpointError(RuntimeError):
    """A snapshot is unreadable, incompatible, or from another config."""


class CheckpointMismatch(CheckpointError):
    """Replayed state diverged from the snapshot (determinism violated)."""


@dataclass
class CheckpointConfig:
    """When and where to write checkpoints."""

    #: Write a checkpoint every N dispatched events (None = off).
    every_events: Optional[int] = 100
    #: ... and/or whenever simulated time advanced by this much since the
    #: last checkpoint (None = off).
    every_sim_time: Optional[float] = None
    #: Directory for ``ckpt-<events>.json`` files (None = keep in memory
    #: only; the chaos harness restores from returned dicts directly).
    out_dir: Optional[str] = None
    #: Retain at most this many newest checkpoint files (None = all).
    keep: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_sim_time is None:
            raise ValueError("checkpoint cadence unset: give every_events "
                             "and/or every_sim_time")
        if self.every_events is not None and self.every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {self.every_events}")
        if self.every_sim_time is not None and self.every_sim_time <= 0:
            raise ValueError(
                f"every_sim_time must be > 0, got {self.every_sim_time}"
            )


@dataclass
class CheckpointedRun:
    """Outcome of :func:`run_with_checkpoints`."""

    #: Final metrics; None when the run was killed before draining.
    metrics: Optional[RunMetrics]
    #: Snapshots taken, in order (paths in :attr:`paths` when persisted).
    snapshots: List[dict] = field(default_factory=list)
    #: File per snapshot when ``out_dir`` was set (parallel to snapshots).
    paths: List[str] = field(default_factory=list)

    @property
    def killed(self) -> bool:
        return self.metrics is None


def config_fingerprint(config: RunConfig, replication: int) -> str:
    """Digest identifying (config, replication) for snapshot validation.

    Built on ``repr`` of the (dataclass) config tree: every behavioural
    knob appears, and the injectable clock reprs stably
    (:class:`PinnedClock` takes care to omit its mutable call count).
    """
    text = f"{config!r}|rep={replication}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def deterministic_run_config(config: RunConfig) -> RunConfig:
    """Pin ``config`` so overhead O replays byte-identically.

    The same recipe the sweep pool uses for its deterministic cells: a
    fresh :class:`PinnedClock` as the wall clock (O counts clock samples)
    and a fail-limited, LNS-free solver budget (search effort becomes
    machine-independent).
    """
    return replace(
        config,
        mrcp=replace(
            config.mrcp,
            solver=deterministic_solver_params(config.mrcp.solver),
        ),
        obs=replace(config.obs, wall_clock=PinnedClock()),
    )


def _is_pinned(run: LiveRun) -> bool:
    """Whether the run's wall clock is deterministic (PinnedClock)."""
    return isinstance(run.config.obs.wall_clock, PinnedClock)


def fresh_run_config(config: RunConfig) -> RunConfig:
    """Reset the config's run-mutated carriers to their virgin state.

    Two config-embedded objects mutate as a run consumes them: the
    :class:`PinnedClock` (its sample count) and the ladder's
    :class:`~repro.resilience.breaker.InjectedSolverFailures` (its
    consumed-budget bookkeeping).  Reusing one config object for a
    checkpointed run *and* its restore -- or for two runs that must agree
    -- would otherwise start the second run mid-state and fork it from
    the first.  The pool applies the same per-attempt reset to its clock.
    """
    clock = config.obs.wall_clock
    if isinstance(clock, PinnedClock) and clock.count:
        config = replace(
            config, obs=replace(config.obs, wall_clock=PinnedClock(clock.tick))
        )
    ladder = config.mrcp.resilience
    if ladder is not None and ladder.chaos is not None and ladder.chaos.consumed:
        config = replace(
            config,
            mrcp=replace(
                config.mrcp,
                resilience=replace(
                    ladder,
                    chaos=InjectedSolverFailures(counts=dict(ladder.chaos.counts)),
                ),
            ),
        )
    return config


def canonical(payload: object) -> object:
    """Round-trip through JSON so captured and loaded snapshots compare.

    Serialisation stringifies int dict keys and turns tuples into lists;
    comparing a freshly captured snapshot against one loaded from disk
    only works if both sides passed through the same normalisation.
    """
    return json.loads(json.dumps(payload, sort_keys=True))


def capture_snapshot(run: LiveRun) -> dict:
    """Snapshot ``run``'s complete current state as a JSON-safe dict."""
    deterministic = _is_pinned(run)
    state: Dict[str, object] = {
        "sim": run.sim.state_digest(),
        "metrics": run.metrics.state_snapshot(deterministic=deterministic),
    }
    if run.manager is not None:
        state["manager"] = run.manager.resilience_state()
    volatile: Dict[str, object] = {}
    if deterministic:
        clock = run.config.obs.wall_clock
        state["clock_count"] = clock.count
    else:
        # Real wall readings never replay identically; record for
        # debugging, exclude from comparison.
        volatile["overhead_total"] = sum(
            run.metrics._overhead_series  # noqa: SLF001 (same package intent)
        )
    snapshot = {
        "schema": SCHEMA,
        "fingerprint": config_fingerprint(run.config, run.replication),
        "replication": run.replication,
        "seed": run.seed,
        "deterministic": deterministic,
        "position": {
            "events_dispatched": run.sim.dispatched,
            "sim_now": run.sim.now,
            "seq": run.sim.state_digest()["seq"],
        },
        "state": state,
        "volatile": volatile,
    }
    return canonical(snapshot)


def validate_snapshot(snapshot: dict) -> None:
    """Schema-level checks before any replay work is attempted."""
    if not isinstance(snapshot, dict):
        raise CheckpointError(f"snapshot is {type(snapshot).__name__}, not dict")
    missing = [k for k in _REQUIRED_KEYS if k not in snapshot]
    if missing:
        raise CheckpointError(f"snapshot missing keys: {missing}")
    if snapshot["schema"] != SCHEMA:
        raise CheckpointError(
            f"snapshot schema {snapshot['schema']!r} is not {SCHEMA!r}"
        )
    pos = snapshot["position"]
    for key in ("events_dispatched", "sim_now", "seq"):
        if key not in pos:
            raise CheckpointError(f"snapshot position missing {key!r}")


def load_snapshot(path: str) -> dict:
    """Read and schema-validate a checkpoint file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    validate_snapshot(snapshot)
    return snapshot


def write_snapshot(snapshot: dict, out_dir: str) -> str:
    """Persist one snapshot atomically; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    events = snapshot["position"]["events_dispatched"]
    path = os.path.join(out_dir, f"ckpt-{events:08d}.json")
    return atomic_write_json(path, snapshot)


def list_checkpoints(out_dir: str) -> List[str]:
    """Checkpoint files in ``out_dir``, oldest first."""
    try:
        names = os.listdir(out_dir)
    except OSError:
        return []
    return [
        os.path.join(out_dir, n)
        for n in sorted(names)
        if n.startswith("ckpt-") and n.endswith(".json")
    ]


def _prune(out_dir: str, keep: int) -> None:
    paths = list_checkpoints(out_dir)
    for stale in paths[:-keep] if keep else paths:
        try:
            os.remove(stale)
        except OSError:
            pass


def run_with_checkpoints(
    config: RunConfig,
    ckpt: CheckpointConfig,
    replication: int = 0,
    kill_after_checkpoints: Optional[int] = None,
) -> CheckpointedRun:
    """Run one replication, snapshotting at the configured cadence.

    ``kill_after_checkpoints=N`` abandons the run right after the Nth
    checkpoint -- the crash half of the chaos harness's kill/restore
    cycle (the process genuinely stops driving the simulation; nothing
    after the checkpoint boundary executes).
    """
    run = build_live_run(fresh_run_config(config), replication)
    result = CheckpointedRun(metrics=None)
    last_events = 0
    last_time = run.sim.now
    while run.sim.step():
        due = False
        if (
            ckpt.every_events is not None
            and run.sim.dispatched - last_events >= ckpt.every_events
        ):
            due = True
        if (
            ckpt.every_sim_time is not None
            and run.sim.now - last_time >= ckpt.every_sim_time
        ):
            due = True
        if not due:
            continue
        snapshot = capture_snapshot(run)
        result.snapshots.append(snapshot)
        last_events = run.sim.dispatched
        last_time = run.sim.now
        if ckpt.out_dir is not None:
            result.paths.append(write_snapshot(snapshot, ckpt.out_dir))
            if ckpt.keep is not None:
                _prune(ckpt.out_dir, ckpt.keep)
        _LOG.debug(
            "checkpoint %s",
            kv(events=run.sim.dispatched, t=run.sim.now),
        )
        if (
            kill_after_checkpoints is not None
            and len(result.snapshots) >= kill_after_checkpoints
        ):
            _LOG.info(
                "killed after checkpoint %s",
                kv(n=len(result.snapshots), events=run.sim.dispatched),
            )
            return result
    result.metrics = run.finish()
    return result


def restore_run(
    config: RunConfig,
    snapshot: "dict | str",
    replication: int = 0,
) -> RunMetrics:
    """Restore from ``snapshot`` and run to completion.

    The fresh run is fast-forwarded event by event to the snapshot's
    position, its reconstructed state is strictly compared against the
    snapshot (:class:`CheckpointMismatch` on any divergence -- restoring
    silently into a forked timeline would be worse than failing), and the
    remainder of the run then executes normally.
    """
    if isinstance(snapshot, str):
        snapshot = load_snapshot(snapshot)
    else:
        validate_snapshot(snapshot)
    config = fresh_run_config(config)
    expected_fp = config_fingerprint(config, replication)
    if snapshot["fingerprint"] != expected_fp:
        raise CheckpointMismatch(
            f"snapshot fingerprint {snapshot['fingerprint']} does not match "
            f"this config/replication ({expected_fp}); restoring a snapshot "
            f"into a different run would silently corrupt results"
        )
    if snapshot["replication"] != replication:
        raise CheckpointMismatch(
            f"snapshot is replication {snapshot['replication']}, "
            f"asked to restore {replication}"
        )

    run = build_live_run(config, replication)
    target = int(snapshot["position"]["events_dispatched"])
    while run.sim.dispatched < target:
        if not run.sim.step():
            raise CheckpointMismatch(
                f"calendar drained at {run.sim.dispatched} events while "
                f"fast-forwarding to {target}: the snapshot is from a "
                f"different (longer) execution"
            )
    replayed = capture_snapshot(run)
    _compare_states(snapshot, replayed)
    _LOG.info(
        "restored %s",
        kv(events=target, t=run.sim.now, rep=replication),
    )
    return run.finish()


#: Divergent paths rendered (with both values) in a mismatch error.
_MISMATCH_PATHS_SHOWN = 8


def _compare_states(expected: dict, replayed: dict) -> None:
    """Strict structural comparison of two snapshots' compared sections.

    The structural walk lives in :mod:`repro.obs.structdiff` (shared with
    the run-diff engine); the mismatch error renders the first divergent
    paths *with both values*, so a determinism violation is localised from
    the message alone, without re-running under a debugger.
    """
    for section in ("position", "state"):
        if expected[section] != replayed[section]:
            entries = structural_diff(expected[section], replayed[section])
            raise CheckpointMismatch(
                f"replayed {section} diverged from snapshot at "
                f"{len(entries)} path(s): "
                + format_entries(
                    entries,
                    limit=_MISMATCH_PATHS_SHOWN,
                    left_label="snapshot",
                    right_label="replay",
                )
            )
