"""Resilience: crash-safe checkpoints, solver degradation, chaos testing.

Three pillars (see ``docs/RESILIENCE.md``):

* :mod:`repro.resilience.breaker` -- a circuit breaker per degradation
  rung around the CP solver: full solve -> fail-limited warm-started
  solve -> EDF list schedule -> greedy admission-only placement.
* :mod:`repro.resilience.checkpoint` -- versioned, schema-validated,
  atomically written snapshots of complete run state, restored by
  state-validated deterministic replay.
* :mod:`repro.resilience.chaos` -- kill/restore cycles, overload bursts
  and pool worker deaths that *prove* the two mechanisms above.

The breaker module is imported eagerly (the resource manager config
references :class:`LadderConfig`); checkpoint and chaos load lazily via
PEP 562 so importing :mod:`repro.core` -- which imports this package --
never touches :mod:`repro.experiments` (avoiding the import cycle
core -> resilience -> experiments -> core).
"""

from repro.resilience.breaker import (
    RUNGS,
    CircuitBreaker,
    DegradationLadder,
    InjectedSolverFailures,
    LadderConfig,
    LadderOutcome,
)

__all__ = [
    "RUNGS",
    "CircuitBreaker",
    "DegradationLadder",
    "InjectedSolverFailures",
    "LadderConfig",
    "LadderOutcome",
    # lazy (PEP 562):
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointedRun",
    "capture_snapshot",
    "deterministic_run_config",
    "fresh_run_config",
    "restore_run",
    "run_with_checkpoints",
    "ChaosReport",
    "default_chaos_config",
    "escalation_ladder",
    "kill_restore_cycle",
    "overload_burst",
    "pool_worker_death",
]

_CHECKPOINT_EXPORTS = (
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointMismatch",
    "CheckpointedRun",
    "capture_snapshot",
    "deterministic_run_config",
    "fresh_run_config",
    "restore_run",
    "run_with_checkpoints",
)
_CHAOS_EXPORTS = (
    "ChaosReport",
    "default_chaos_config",
    "escalation_ladder",
    "kill_restore_cycle",
    "overload_burst",
    "pool_worker_death",
)


def __getattr__(name: str):
    if name in _CHECKPOINT_EXPORTS:
        from repro.resilience import checkpoint

        return getattr(checkpoint, name)
    if name in _CHAOS_EXPORTS:
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
