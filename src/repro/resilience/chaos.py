"""Chaos harness: prove checkpoint/restore and the ladder under real abuse.

Three scenarios, all seeded and fully deterministic:

* :func:`kill_restore_cycle` -- run with checkpoints, kill the run at a
  checkpoint boundary (the driver genuinely stops; nothing past the
  boundary executes), restore from the snapshot, run to completion, and
  require the restored run's O/N/T/P to be **byte-identical** to an
  uninterrupted same-seed run (pin the config with
  :func:`~repro.resilience.checkpoint.deterministic_run_config` first).
* :func:`overload_burst` -- spike the arrival rate and force the CP
  rungs to fail via injected solver failures, driving the degradation
  ladder through all four rungs while the run stays correct; repeated
  runs must agree exactly (determinism under overload).
* :func:`pool_worker_death` -- run a sweep across real worker processes
  with a runner that hard-kills (``os._exit``) its process on the first
  attempt of one cell; the PR 4 pool's worker-death recovery must retry
  the cell and the merged ``sweep.csv`` must stay byte-identical to an
  undisturbed sequential sweep.

Every scenario also audits run invariants (:func:`invariant_violations`):
no job may be lost or double-counted, simulated time must be monotone
across checkpoints, and no task may exceed its retry budget.
"""

from __future__ import annotations

import csv
import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.experiments.configs import LabeledConfig
from repro.experiments.pool import CellJob, CellOutcome, SweepSpec, run_sweep
from repro.experiments.pool import execute_cell as _execute_cell
from repro.experiments.runner import (
    LiveRun,
    RunConfig,
    SystemConfig,
    build_live_run,
)
from repro.faults import FaultModel, OutageWindow
from repro.metrics.collector import RunMetrics
from repro.obs.logs import get_logger, kv
from repro.resilience.breaker import InjectedSolverFailures, LadderConfig
from repro.resilience.checkpoint import (
    CheckpointConfig,
    deterministic_run_config,
    fresh_run_config,
    restore_run,
    run_with_checkpoints,
)
from repro.workload import SyntheticWorkloadParams

_LOG = get_logger("resilience.chaos")

#: The four metrics whose byte-identity the kill/restore contract covers.
ONTP = ("O", "N", "T", "P")


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario."""

    scenario: str
    passed: bool
    #: Human-readable contract violations (empty when ``passed``).
    violations: List[str] = field(default_factory=list)
    #: Scenario-specific evidence (metrics, digests, rung counts...).
    details: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """Multi-line human-readable verdict (details + violations)."""
        status = "PASS" if self.passed else "FAIL"
        lines = [f"[{status}] {self.scenario}"]
        for key, value in sorted(self.details.items()):
            lines.append(f"  {key}: {value}")
        for v in self.violations:
            lines.append(f"  VIOLATION: {v}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Invariants
# --------------------------------------------------------------------------


def invariant_violations(run: LiveRun, metrics: RunMetrics) -> List[str]:
    """Audit a drained run against the chaos harness's invariants."""
    out: List[str] = []
    if metrics.jobs_completed + metrics.jobs_failed != metrics.jobs_arrived:
        out.append(
            f"jobs lost: {metrics.jobs_arrived} arrived but "
            f"{metrics.jobs_completed} completed + {metrics.jobs_failed} failed"
        )
    completed_and_failed = set(metrics.turnarounds) & set(metrics.failed_job_ids)
    if completed_and_failed:
        out.append(f"jobs both completed and failed: {sorted(completed_and_failed)}")
    if run.sim.now < 0:
        out.append(f"simulation time went negative: {run.sim.now}")
    manager = run.manager
    if manager is not None:
        budget = manager.config.max_task_retries + 1  # initial try + retries
        for job in manager.executor.jobs.values():
            for task in job.tasks:
                if task.attempts > budget:
                    out.append(
                        f"task {task.id} used {task.attempts} attempts "
                        f"(budget {budget})"
                    )
    return out


def _monotone_violations(snapshots: List[dict]) -> List[str]:
    """Checkpoint positions must advance strictly in events and weakly in time."""
    out: List[str] = []
    for prev, cur in zip(snapshots, snapshots[1:]):
        p, c = prev["position"], cur["position"]
        if c["events_dispatched"] <= p["events_dispatched"]:
            out.append(
                f"events went backwards: {p['events_dispatched']} -> "
                f"{c['events_dispatched']}"
            )
        if c["sim_now"] < p["sim_now"]:
            out.append(f"sim time went backwards: {p['sim_now']} -> {c['sim_now']}")
    return out


def _ontp(metrics: RunMetrics) -> Dict[str, float]:
    d = metrics.as_dict()
    return {k: d[k] for k in ONTP}


#: Verbose metrics measured with ``time.perf_counter`` inside the solver.
#: Real wall time can never be byte-identical across runs, so the chaos
#: determinism contract covers everything *except* these.
_WALL_TIME_KEYS = frozenset(
    {
        "solver_propagate_time",
        "solver_warm_start_time",
        "solver_tree_time",
        "solver_lns_time",
    }
)


def _comparable(metrics: RunMetrics) -> Dict[str, float]:
    """The verbose metric dict minus inherently wall-clock keys."""
    d = metrics.as_dict(verbose=True)
    return {k: v for k, v in d.items() if k not in _WALL_TIME_KEYS}


# --------------------------------------------------------------------------
# Scenario configs
# --------------------------------------------------------------------------


def default_chaos_config(
    seed: int = 0,
    num_jobs: int = 8,
    arrival_rate: float = 0.05,
    faults: bool = True,
    ladder: Optional[LadderConfig] = None,
) -> RunConfig:
    """A small, fault-ridden, fully deterministic mrcp-rm run.

    Big enough to exercise retries, an outage window and re-plans; small
    enough that a kill/restore cycle completes in seconds.  Always pinned
    (:func:`deterministic_run_config`) so O replays byte-identically.
    """
    fault_model = None
    if faults:
        fault_model = FaultModel(
            task_failure_prob=0.15,
            outages=(OutageWindow(0, 30.0, 15.0),),
            seed=seed,
        )
    config = RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=num_jobs,
            map_tasks_range=(1, 3),
            reduce_tasks_range=(1, 2),
            e_max=8,
            ar_probability=0.2,
            s_max=50,
            deadline_multiplier_max=3.0,
            arrival_rate=arrival_rate,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
        faults=fault_model,
        seed=seed,
    )
    if ladder is not None:
        config = replace(config, mrcp=replace(config.mrcp, resilience=ladder))
    return deterministic_run_config(config)


def escalation_ladder(rounds: int = 1) -> LadderConfig:
    """A ladder configured to demonstrably walk all four rungs.

    Injected failures make the first ``rounds`` attempts of each CP rung
    and of EDF fail, so early invocations escalate to ``greedy``, the
    breakers trip open, and later invocations recover rung by rung as the
    probes succeed -- the full state machine in one short run.
    """
    return LadderConfig(
        failure_threshold=1,
        cooldown=2,
        chaos=InjectedSolverFailures(
            counts={"cp_full": rounds + 2, "cp_limited": rounds + 1, "edf": rounds}
        ),
    )


# --------------------------------------------------------------------------
# Scenario: kill at a checkpoint, restore, compare
# --------------------------------------------------------------------------


def kill_restore_cycle(
    config: Optional[RunConfig] = None,
    kill_after_checkpoints: int = 2,
    every_events: int = 20,
    replication: int = 0,
    out_dir: Optional[str] = None,
) -> ChaosReport:
    """Kill a checkpointed run and prove the restore is byte-identical."""
    if config is None:
        config = default_chaos_config()
    ckpt = CheckpointConfig(every_events=every_events, out_dir=out_dir)
    violations: List[str] = []

    # The uninterrupted reference run (and its invariant audit).
    reference = build_live_run(fresh_run_config(config), replication)
    ref_metrics = reference.finish()
    violations += invariant_violations(reference, ref_metrics)

    # The run that dies at a checkpoint boundary.
    killed = run_with_checkpoints(
        config, ckpt, replication, kill_after_checkpoints=kill_after_checkpoints
    )
    if not killed.killed:
        violations.append(
            f"run drained after {len(killed.snapshots)} checkpoints before the "
            f"kill point ({kill_after_checkpoints}); shrink every_events"
        )
    if not killed.snapshots:
        violations.append("no checkpoints were written before the kill")
    violations += _monotone_violations(killed.snapshots)

    restored_ontp: Dict[str, float] = {}
    if killed.snapshots:
        # Restore from the file when persisted (exercises the read path).
        source: "dict | str" = killed.snapshots[-1]
        if killed.paths:
            source = killed.paths[-1]
        restored = restore_run(config, source, replication)
        restored_ontp = _ontp(restored)
        if restored_ontp != _ontp(ref_metrics):
            violations.append(
                f"restored O/N/T/P {restored_ontp} != uninterrupted "
                f"{_ontp(ref_metrics)}"
            )
        if _comparable(restored) != _comparable(ref_metrics):
            violations.append(
                "restored verbose metrics differ from the uninterrupted run"
            )

    report = ChaosReport(
        scenario="kill_restore_cycle",
        passed=not violations,
        violations=violations,
        details={
            "checkpoints": len(killed.snapshots),
            "killed_at_events": (
                killed.snapshots[-1]["position"]["events_dispatched"]
                if killed.snapshots
                else None
            ),
            "reference_ontp": _ontp(ref_metrics),
            "restored_ontp": restored_ontp,
        },
    )
    _LOG.info("chaos %s", kv(scenario=report.scenario, passed=report.passed))
    return report


# --------------------------------------------------------------------------
# Scenario: overload burst through the degradation ladder
# --------------------------------------------------------------------------


def overload_burst(
    config: Optional[RunConfig] = None,
    burst_factor: float = 10.0,
    replication: int = 0,
) -> ChaosReport:
    """Arrival spike + failing CP rungs: the ladder must absorb the load.

    Contract: the run completes with every job accounted for, the plan
    provably came from **all four rungs** at some point (metrics
    ``solves_by_rung``), at least one breaker tripped open, and a second
    identical run reproduces the exact same metrics (determinism under
    degradation).
    """
    if config is None:
        base = default_chaos_config(faults=False, ladder=escalation_ladder())
        base = replace(
            base,
            synthetic=replace(
                base.synthetic,
                arrival_rate=base.synthetic.arrival_rate * burst_factor,
            ),
        )
        config = base
    violations: List[str] = []

    run = build_live_run(fresh_run_config(config), replication)
    metrics = run.finish()
    violations += invariant_violations(run, metrics)

    rungs = metrics.solves_by_rung
    missing = [r for r in ("cp_full", "cp_limited", "edf", "greedy") if not rungs.get(r)]
    if missing:
        violations.append(f"ladder never used rungs {missing} (saw {rungs})")
    if metrics.breaker_opens < 1:
        violations.append("no circuit breaker ever opened under overload")

    # Determinism under degradation: same seed, same everything.
    rerun = build_live_run(fresh_run_config(config), replication)
    rerun_metrics = rerun.finish()
    if _comparable(rerun_metrics) != _comparable(metrics):
        violations.append("two identical overload runs produced different metrics")

    report = ChaosReport(
        scenario="overload_burst",
        passed=not violations,
        violations=violations,
        details={
            "solves_by_rung": dict(rungs),
            "breaker_opens": metrics.breaker_opens,
            "jobs": metrics.jobs_arrived,
            "late_jobs": metrics.late_jobs,
            "fallback_solves": metrics.fallback_solves,
        },
    )
    _LOG.info("chaos %s", kv(scenario=report.scenario, passed=report.passed))
    return report


# --------------------------------------------------------------------------
# Scenario: worker death inside the process pool
# --------------------------------------------------------------------------

#: Cell index whose first attempt hard-kills its worker process.
_DEATH_CELL = 0


def _die_once_runner(job: CellJob) -> CellOutcome:
    """Pool runner that kills its process on one cell's first attempt.

    Module-level (picklable by reference).  ``os._exit`` bypasses every
    handler -- the pool sees a genuinely dead worker, exactly the crash
    mode PR 4's recovery path exists for; the retry then succeeds.
    """
    if job.cell.index == _DEATH_CELL and job.attempt == 1:
        os._exit(17)
    return _execute_cell(job)


def _csv_digest(path: str) -> str:
    """Digest of ``sweep.csv`` minus the ``attempts`` column.

    ``attempts`` is *supposed* to differ after a worker death (that is
    the retry working); every result column must stay byte-identical.
    """
    h = hashlib.sha256()
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        drop = header.index("attempts") if "attempts" in header else -1
        for row in [header] + list(reader):
            if drop >= 0:
                row = row[:drop] + row[drop + 1 :]
            h.update(",".join(row).encode("utf-8") + b"\n")
    return h.hexdigest()


def pool_worker_death(
    out_dir: str,
    config: Optional[RunConfig] = None,
    replications: int = 2,
    workers: int = 2,
) -> ChaosReport:
    """Kill a sweep worker mid-flight; merged output must not notice.

    Runs the same sweep twice into ``out_dir``: once sequentially and
    undisturbed (the reference), once across real processes with
    :func:`_die_once_runner` killing one worker on its first attempt.
    The pool must retry the dead cell and the merged ``sweep.csv`` must
    be byte-identical to the reference.
    """
    if config is None:
        config = default_chaos_config(faults=False)
    spec = SweepSpec(
        name="chaos-worker-death",
        configs=[LabeledConfig("base", 1.0, config.scheduler, config)],
        factor="chaos",
        replications=replications,
        root_seed=config.seed,
    )
    violations: List[str] = []

    ref_dir = os.path.join(out_dir, "reference")
    chaos_dir = os.path.join(out_dir, "worker-death")
    reference = run_sweep(spec, workers=1, out_dir=ref_dir)
    if reference.failed_cells:
        violations.append(
            f"reference sweep failed cells: "
            f"{[(c.label, c.replication) for c in reference.failed_cells]}"
        )
    chaotic = run_sweep(
        spec,
        workers=workers,
        retries=1,
        out_dir=chaos_dir,
        runner=_die_once_runner,
    )
    if chaotic.failed_cells:
        violations.append(
            f"cells failed despite retry after worker death: "
            f"{[(c.label, c.replication) for c in chaotic.failed_cells]}"
        )
    retried = [o for o in chaotic.outcomes if o.attempts > 1]
    if not retried:
        violations.append("no cell was retried: the worker death never happened")

    ref_digest = _csv_digest(os.path.join(ref_dir, "sweep.csv"))
    chaos_digest = _csv_digest(os.path.join(chaos_dir, "sweep.csv"))
    if ref_digest != chaos_digest:
        violations.append(
            f"sweep.csv digest changed across worker death: "
            f"{ref_digest[:12]} != {chaos_digest[:12]}"
        )

    report = ChaosReport(
        scenario="pool_worker_death",
        passed=not violations,
        violations=violations,
        details={
            "cells": len(chaotic.outcomes),
            "retried_cells": len(retried),
            "sweep_csv_digest": ref_digest[:16],
        },
    )
    _LOG.info("chaos %s", kv(scenario=report.scenario, passed=report.passed))
    return report


def run_all(out_dir: str) -> List[ChaosReport]:
    """Every scenario, for the CLI ``chaos`` subcommand and CI smoke."""
    return [
        kill_restore_cycle(out_dir=os.path.join(out_dir, "checkpoints")),
        overload_burst(),
        pool_worker_death(os.path.join(out_dir, "sweeps")),
    ]
