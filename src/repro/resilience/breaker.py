"""Solver circuit breaker and the four-rung degradation ladder.

A long-running resource manager cannot afford a CP solver that keeps
timing out: every failed full solve burns its whole budget before the
fallback saves the invocation.  The classic remedy is a *circuit
breaker* -- after ``failure_threshold`` consecutive failures the breaker
*opens* and subsequent invocations skip the failing strategy outright;
after a cooldown it *half-opens* and lets one probe attempt through, and
a probe success closes it again.

Here the breaker guards each rung of a degradation ladder:

1. ``cp_full``    -- the configured CP solve (warm start + tree + LNS).
2. ``cp_limited`` -- a warm-started, tightly fail-limited CP solve
   (cheap: the warm start does the work, the tree gets a token budget).
3. ``edf``        -- the EDF list schedule (PR 1's fallback; always
   respects hard constraints, lateness just shows up in N).
4. ``greedy``     -- admission-only placement: the previous plan is kept
   pinned and only the newly arrived work is placed greedily around it.
   This is the floor; it re-plans nothing and cannot time out.

Within one invocation the ladder walks downward until a rung yields a
schedule, so the run always makes progress; across invocations the
breakers remember which rungs are failing and start lower, which is what
caps the overhead of a pathological stretch.  Every rung use is counted
(registry + metrics collector), traced (one span per attempted rung,
an instant per breaker transition), and recorded in the plan history so
forensics and the HTML report can attribute degraded decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cp.heuristics import list_schedule
from repro.cp.model import CpModel
from repro.cp.solution import SolveResult, Solution
from repro.cp.solver import CpSolver
from repro.obs.logs import get_logger, kv
from repro.obs.trace import NULL_TRACER, Tracer

_LOG = get_logger("resilience.breaker")

#: Ladder rungs, strongest first.  ``greedy`` is the floor: it cannot
#: time out, so the ladder never returns empty-handed unless the frozen
#: state itself is infeasible.
RUNGS = ("cp_full", "cp_limited", "edf", "greedy")

#: Breaker states (the textbook three-state machine).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class InjectedSolverFailures:
    """Deterministic solver-layer chaos: force the first N calls of a rung
    to fail.

    The chaos harness uses this to drive the ladder through every rung
    without needing a genuinely pathological CP instance: a forced
    failure short-circuits the rung (no budget is burned, no RNG is
    consumed) and the ladder escalates exactly as it would for a real
    timeout.  Counts are consumed per rung in call order, so the same
    plan replays identically -- checkpoint/restore safe.
    """

    #: rung name -> number of initial attempts of that rung to fail.
    counts: Dict[str, int] = field(default_factory=dict)
    #: attempts already consumed per rung (mutable bookkeeping).
    consumed: Dict[str, int] = field(default_factory=dict)

    def take(self, rung: str) -> bool:
        """Whether this attempt of ``rung`` is forced to fail."""
        budget = self.counts.get(rung, 0)
        used = self.consumed.get(rung, 0)
        if used >= budget:
            return False
        self.consumed[rung] = used + 1
        return True

    def __repr__(self) -> str:
        # Stable across a run (omits the mutable ``consumed`` bookkeeping):
        # checkpoint fingerprints are built on config repr and must not
        # drift as budgets are consumed.
        return f"InjectedSolverFailures(counts={dict(sorted(self.counts.items()))!r})"

    def state(self) -> Dict[str, int]:
        """Checkpointable bookkeeping (counts are config, not state)."""
        return dict(sorted(self.consumed.items()))

    def restore(self, state: Dict[str, int]) -> None:
        """Restore bookkeeping captured by :meth:`state`."""
        self.consumed = {str(k): int(v) for k, v in state.items()}


@dataclass
class LadderConfig:
    """Knobs of the degradation ladder and its per-rung breakers."""

    #: Consecutive failures of a rung before its breaker opens.
    failure_threshold: int = 2
    #: Invocations a breaker stays open before half-opening one probe.
    cooldown: int = 4
    #: Budget of the ``cp_limited`` rung (seconds / tree fails).
    limited_time_limit: float = 0.1
    limited_fail_limit: int = 100
    #: Deterministic failure injection (chaos harness only; None = off).
    chaos: Optional[InjectedSolverFailures] = None


class CircuitBreaker:
    """Three-state breaker guarding one ladder rung."""

    __slots__ = ("rung", "threshold", "cooldown", "state", "failures",
                 "cooldown_left", "opened_count")

    def __init__(self, rung: str, threshold: int, cooldown: int) -> None:
        self.rung = rung
        self.threshold = max(1, threshold)
        self.cooldown = max(1, cooldown)
        self.state = CLOSED
        self.failures = 0  # consecutive
        self.cooldown_left = 0
        self.opened_count = 0

    def allow(self) -> bool:
        """Whether the guarded rung may be attempted this invocation.

        While open, each query burns one cooldown tick; when the cooldown
        expires the breaker half-opens and admits a single probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self.cooldown_left -= 1
            if self.cooldown_left > 0:
                return False
            self.state = HALF_OPEN
        return True  # half-open probe

    def record(self, success: bool) -> Optional[Tuple[str, str]]:
        """Record an attempt outcome; returns a (from, to) transition."""
        before = self.state
        if success:
            self.failures = 0
            self.state = CLOSED
        elif self.state == HALF_OPEN:
            # Failed probe: straight back to open for another cooldown.
            self.state = OPEN
            self.cooldown_left = self.cooldown
            self.opened_count += 1
        else:
            self.failures += 1
            if self.failures >= self.threshold:
                self.state = OPEN
                self.cooldown_left = self.cooldown
                self.opened_count += 1
        return (before, self.state) if self.state != before else None

    # ---------------------------------------------------------- checkpoint
    def snapshot(self) -> Dict[str, int | str]:
        """The breaker's complete mutable state (checkpoint surface)."""
        return {
            "state": self.state,
            "failures": self.failures,
            "cooldown_left": self.cooldown_left,
            "opened_count": self.opened_count,
        }

    def restore(self, snap: Dict[str, int | str]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.state = str(snap["state"])
        self.failures = int(snap["failures"])
        self.cooldown_left = int(snap["cooldown_left"])
        self.opened_count = int(snap["opened_count"])


@dataclass
class LadderOutcome:
    """What one ladder-mediated solve produced."""

    solution: Optional[Solution]
    #: The rung that produced ``solution`` ("none" when every rung failed).
    rung: str
    #: The CP solve result when a CP rung ran last (None for heuristics).
    result: Optional[SolveResult]
    #: Rungs attempted this invocation, in order, with success flags.
    attempts: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether the plan came from anything below the full CP solve."""
        return self.rung != "cp_full"


class DegradationLadder:
    """Walks the rungs under per-rung circuit breakers."""

    def __init__(
        self,
        config: LadderConfig,
        solver: CpSolver,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.solver = solver
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # The floor rung has no breaker: there is nothing to skip to.
        self.breakers: Dict[str, CircuitBreaker] = {
            rung: CircuitBreaker(
                rung, config.failure_threshold, config.cooldown
            )
            for rung in RUNGS[:-1]
        }
        registry = self.tracer.registry
        self._m_rung = {
            rung: registry.counter(f"resilience.rung_used.{rung}")
            for rung in RUNGS
        }
        self._m_opened = registry.counter("resilience.breaker_opened")

    # ------------------------------------------------------------- solving
    def solve(
        self,
        model: CpModel,
        hint: Optional[Dict] = None,
        start_rung: str = "cp_full",
    ) -> LadderOutcome:
        """One ladder-mediated solve: walk the rungs, remember failures.

        ``start_rung`` lets an overloaded caller skip the expensive top of
        the ladder *for this invocation only* (the admission service does
        this when its arrival queue backs up): rungs above it are neither
        attempted nor charged against their breakers.
        """
        if start_rung not in RUNGS:
            raise ValueError(
                f"unknown ladder rung {start_rung!r}; expected one of {RUNGS}"
            )
        tracer = self.tracer
        attempts: List[Tuple[str, bool]] = []
        last_result: Optional[SolveResult] = None
        for rung in RUNGS[RUNGS.index(start_rung):]:
            breaker = self.breakers.get(rung)
            if breaker is not None and not breaker.allow():
                continue  # breaker open: skip straight to the next rung
            with tracer.span(
                "resilience.rung", "resilience", {"rung": rung}
            ) as span:
                solution, result = self._attempt(rung, model, hint)
                if tracer.enabled:
                    span.add(success=solution is not None)
            if result is not None:
                last_result = result
            success = solution is not None
            attempts.append((rung, success))
            if breaker is not None:
                # A proven INFEASIBLE is the instance's fault, not the
                # solver's: the ladder still escalates this invocation,
                # but the rung's health record is left untouched so a
                # healthy solver is not locked out by one bad instance.
                infeasible = (
                    not success
                    and result is not None
                    and not result.budget_exhausted
                )
                if not infeasible:
                    transition = breaker.record(success)
                    if transition is not None:
                        self._note_transition(rung, transition)
            if success:
                self._m_rung[rung].inc()
                if rung != "cp_full":
                    _LOG.warning(
                        "degraded solve %s",
                        kv(rung=rung, tried=len(attempts)),
                    )
                return LadderOutcome(solution, rung, last_result, attempts)
        return LadderOutcome(None, "none", last_result, attempts)

    def _attempt(
        self, rung: str, model: CpModel, hint: Optional[Dict]
    ) -> Tuple[Optional[Solution], Optional[SolveResult]]:
        chaos = self.config.chaos
        if chaos is not None and chaos.take(rung):
            return None, None
        if rung == "cp_full":
            result = self.solver.solve(model, hint=hint)
            return result.solution, result
        if rung == "cp_limited":
            result = self.solver.solve(
                model,
                hint=hint,
                time_limit=self.config.limited_time_limit,
                tree_fail_limit=self.config.limited_fail_limit,
                use_lns=False,
            )
            return result.solution, result
        if rung == "edf":
            return list_schedule(model, "edf"), None
        # greedy: admission-only -- keep the previous plan pinned and place
        # just the new work around it; with no previous plan (or a stale
        # one) fall back to plain input-order placement.
        solution = None
        if hint:
            solution = list_schedule(model, "edf", preplaced=hint)
        if solution is None:
            solution = list_schedule(model, "input")
        return solution, None

    def _note_transition(self, rung: str, transition: Tuple[str, str]) -> None:
        before, after = transition
        if after == OPEN:
            self._m_opened.inc()
        _LOG.warning(
            "breaker transition %s",
            kv(rung=rung, before=before, after=after),
        )
        self.tracer.instant(
            "resilience.breaker",
            "resilience",
            args={"rung": rung, "from": before, "to": after},
        )

    # ---------------------------------------------------------- checkpoint
    def snapshot(self) -> Dict[str, object]:
        """Complete mutable ladder state (checkpoint surface)."""
        snap: Dict[str, object] = {
            "breakers": {
                rung: b.snapshot() for rung, b in sorted(self.breakers.items())
            }
        }
        if self.config.chaos is not None:
            snap["chaos"] = self.config.chaos.state()
        return snap

    def restore(self, snap: Dict[str, object]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        for rung, state in dict(snap.get("breakers", {})).items():
            if rung in self.breakers:
                self.breakers[rung].restore(state)
        if self.config.chaos is not None and "chaos" in snap:
            self.config.chaos.restore(snap["chaos"])

    @property
    def opened_total(self) -> int:
        """Total open transitions across all breakers."""
        return sum(b.opened_count for b in self.breakers.values())
