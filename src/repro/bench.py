"""Benchmark regression tracking: pinned suite, baseline, comparison.

``repro bench`` (and the thin ``benchmarks/regress.py`` wrapper) runs a
small pinned suite -- solver micro-benchmarks, two figure experiments at
smoke scale, and a parallel-sweep fan-out smoke -- and emits a
schema-versioned JSON result
(``BENCH_<suite>.json``) that is compared against a committed baseline:

* **deterministic metrics** (task counts, objectives, N/T/P) are compared
  *exactly*; any drift is a behaviour regression, not noise.  The suite
  pins seeds and runs the solver fail-limited with LNS off, so results are
  machine-independent.  The overhead metric O is wall-clock and therefore
  excluded.
* **wall times** are compared through a *calibration workload*: each
  case's ``normalized_time`` is its wall time divided by the time of a
  fixed CPU-bound calibration run on the same machine, which cancels
  machine speed.  A case regresses when its normalized time exceeds the
  baseline by more than ``wall_tolerance`` (default 1.6x -- comfortably
  flagging a 2x slowdown while riding out scheduler jitter).

``compare`` returns human-readable failure strings; the CLI exits nonzero
on any.  ``--inflate`` multiplies current normalized times before the
comparison (a synthetic slowdown, used by CI to prove the harness trips),
and ``--replay`` re-compares a previously written result file without
re-running the suite.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.ioutil import atomic_write_json

SCHEMA = "repro-bench/1"
DEFAULT_SUITE = "core"
DEFAULT_BASELINE = "BENCH_core.json"
#: Current-vs-baseline normalized-time ratio above which a case regresses.
WALL_TOLERANCE = 1.6
#: Cases whose wall time is dominated by OS process-spawn cost rather than
#: simulator/solver work; their normalized time is recorded as 0.0 so the
#: wall gate skips them while their deterministic metrics stay pinned.
WALL_EXEMPT = frozenset({"sweep_pool"})

# --------------------------------------------------------------------------
# Suite definition
# --------------------------------------------------------------------------


def _micro_batch(num_jobs: int, deadline_multiplier_max: float = 3.0, seed: int = 5):
    """The solver micro-benchmark batch (mirrors benchmarks/bench_solver_micro).

    Tight deadline multipliers make the warm start suboptimal so the tree
    phase has genuine work (its fail limit binds -- nonzero, pinned effort
    counters).
    """
    from repro.workload import (
        SyntheticWorkloadParams,
        generate_synthetic_workload,
        make_uniform_cluster,
    )

    params = SyntheticWorkloadParams(
        num_jobs=num_jobs,
        map_tasks_range=(1, 10),
        reduce_tasks_range=(1, 5),
        e_max=20,
        ar_probability=0.0,
        deadline_multiplier_max=deadline_multiplier_max,
        arrival_rate=1.0,
        total_map_slots=20,
        total_reduce_slots=20,
    )
    jobs = generate_synthetic_workload(params, seed=seed)
    resources = make_uniform_cluster(10, 2, 2)
    return jobs, resources


def _deterministic_solver_params():
    """Fail-limited, LNS-off solver: identical search on every machine.

    The generous time limit never binds on the pinned instances; the fail
    limit does, so the explored tree -- and the objective -- is exact.
    """
    from repro.cp.solver import SolverParams

    return SolverParams(time_limit=30.0, tree_fail_limit=200, use_lns=False)


#: Iteration count of the calibration spin loop.  Sized so the pre-existing
#: pinned baseline norms stay on their historical scale (the spin wall is
#: close to what the old solver-shaped calibration measured on the baseline
#: machine), but the value itself is arbitrary: only its *fixity* matters.
_CALIBRATION_SPIN = 100_000


def _case_calibration() -> Tuple[float, Dict[str, Any]]:
    """Fixed CPU-bound workload used only to normalise wall times.

    Measured once per suite round, immediately before the cases of that
    round, so that a box-wide slowdown inflates calibration and case
    walls together and cancels out of the normalized ratio.

    The workload is a pure interpreter spin (an LCG loop), deliberately
    *not* built from solver code.  An earlier version ran model build +
    list scheduling here, which had two defects as a measuring stick:

    * it was self-referential -- optimising the solver shrank the yardstick
      together with the cases, understating (or hiding) real speedups; and
    * it did not transfer across machines -- the solver cases and the
      calibration workload stress allocation and compute in different
      proportions, so a box with a different memory/compute balance saw
      normalized times drift by 2x with zero code changes, tripping the
      replay tolerance on untouched code.

    A fixed arithmetic spin has neither problem: it is immutable under
    solver changes, and it scales with interpreter speed the same way the
    (equally interpreter-bound) solver hot loops do.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(_CALIBRATION_SPIN):
        acc = (acc * 1103515245 + 12345 + i) % 2147483647
    wall = time.perf_counter() - t0
    return wall, {"acc": acc % 9973}


def _case_solver_micro_warm() -> Tuple[float, Dict[str, Any]]:
    """Model build + warm-start list scheduling on the 15-job batch."""
    from repro.core.formulation import build_model
    from repro.cp.heuristics import list_schedule

    jobs, resources = _micro_batch(30)
    t0 = time.perf_counter()
    for _ in range(20):  # amplify the ~5ms op well above timer noise
        formulation = build_model(jobs, resources, now=0)
        formulation.model.engine().reset()
        solution = list_schedule(formulation.model, "edf")
    wall = time.perf_counter() - t0
    return wall, {
        "tasks": len(formulation.interval_of),
        "warm_late": solution.objective,
    }


def _case_solver_micro_solve() -> Tuple[float, Dict[str, Any]]:
    """Full deterministic (fail-limited, LNS-off) solve of the 15-job batch."""
    from repro.core.formulation import build_model
    from repro.cp.solver import CpSolver

    jobs, resources = _micro_batch(30, deadline_multiplier_max=1.2)
    solver = CpSolver(_deterministic_solver_params())
    t0 = time.perf_counter()
    formulation = build_model(jobs, resources, now=0)
    result = solver.solve(formulation.model)
    wall = time.perf_counter() - t0
    return wall, {
        "objective": result.objective,
        "has_solution": bool(result.status.has_solution),
        "fails": result.stats.fails,
        "branches": result.stats.branches,
    }


def _run_once_case(config, repeats: int = 3) -> Tuple[float, Dict[str, Any]]:
    """Run one experiment config; report wall + the deterministic metrics.

    Repeated back-to-back to lift the ~20ms smoke runs well above timer
    noise.  O (scheduling overhead) is wall-clock and excluded; N/T/P
    depend only on the seeded workload and the deterministic solver.
    """
    from repro.experiments.runner import run_once

    t0 = time.perf_counter()
    for _ in range(repeats):
        metrics = run_once(config)
    wall = time.perf_counter() - t0
    summary = metrics.as_dict()
    return wall, {
        "N": summary["N"],
        "T": summary["T"],
        "P": summary["P"],
        "jobs": metrics.jobs_arrived,
        "invocations": metrics.scheduler_invocations,
    }


def _case_fig2_small() -> Tuple[float, Dict[str, Any]]:
    """Figure 2 shape at smoke scale: Facebook workload through MRCP-RM."""
    from repro.core import MrcpRmConfig
    from repro.experiments.runner import RunConfig, SystemConfig
    from repro.workload import FacebookWorkloadParams

    config = RunConfig(
        scheduler="mrcp-rm",
        workload="facebook",
        facebook=FacebookWorkloadParams(
            num_jobs=10,
            arrival_rate=0.002,
            deadline_multiplier_max=1.3,
            scale=0.05,
        ),
        system=SystemConfig(num_resources=3, map_slots=1, reduce_slots=1),
        mrcp=MrcpRmConfig(solver=_deterministic_solver_params()),
        seed=2,
    )
    return _run_once_case(config)


def _case_fig7_small() -> Tuple[float, Dict[str, Any]]:
    """Figure 7 shape at smoke scale: tight-deadline synthetic workload."""
    from repro.core import MrcpRmConfig
    from repro.experiments.runner import RunConfig, SystemConfig
    from repro.workload import SyntheticWorkloadParams

    config = RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=12,
            map_tasks_range=(1, 8),
            reduce_tasks_range=(1, 4),
            e_max=20,
            ar_probability=0.5,
            s_max=500,
            deadline_multiplier_max=1.3,
            arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=3, map_slots=2, reduce_slots=2),
        mrcp=MrcpRmConfig(solver=_deterministic_solver_params()),
        seed=7,
    )
    return _run_once_case(config)


def _case_sweep_pool() -> Tuple[float, Dict[str, Any]]:
    """Parallel fan-out smoke: 2 workers over a 4-cell deterministic sweep.

    The metric pins a digest of the merged CSV, so any drift in cell
    seeding, order-independent merging, or the pinned-clock determinism
    shows up as an exact mismatch; the wall time tracks fan-out overhead
    (pool startup, pickling, per-cell dispatch) for the regression gate.
    """
    import hashlib

    from repro.core import MrcpRmConfig
    from repro.experiments.configs import LabeledConfig
    from repro.experiments.pool import SweepSpec, run_sweep
    from repro.experiments.runner import RunConfig, SystemConfig
    from repro.workload import SyntheticWorkloadParams

    def point(arrival_rate: float) -> LabeledConfig:
        return LabeledConfig(
            label=f"lambda={arrival_rate:g}",
            factor_value=arrival_rate,
            scheduler="mrcp-rm",
            config=RunConfig(
                scheduler="mrcp-rm",
                workload="synthetic",
                synthetic=SyntheticWorkloadParams(
                    num_jobs=6,
                    map_tasks_range=(1, 6),
                    reduce_tasks_range=(1, 3),
                    e_max=20,
                    ar_probability=0.5,
                    s_max=500,
                    deadline_multiplier_max=1.3,
                    arrival_rate=arrival_rate,
                ),
                system=SystemConfig(num_resources=3, map_slots=2, reduce_slots=2),
                mrcp=MrcpRmConfig(solver=_deterministic_solver_params()),
            ),
        )

    spec = SweepSpec(
        name="bench-sweep",
        configs=[point(0.025), point(0.05)],
        factor="lambda",
        replications=2,
        root_seed=3,
    )
    t0 = time.perf_counter()
    result = run_sweep(spec, workers=2, retries=0)
    wall = time.perf_counter() - t0
    csv_digest = hashlib.sha256(result.to_csv().encode("utf-8")).hexdigest()
    return wall, {
        "cells": len(result.outcomes),
        "ok": len(result.ok_cells),
        "csv_sha256": csv_digest[:16],
    }


def _case_telemetry_overhead() -> Tuple[float, Dict[str, Any]]:
    """Zero-overhead contract: telemetry on vs off, identical O/N/T/P.

    Both runs pin the overhead clock (O counts clock samples, so any
    sampler call leaking into the measured path would shift it); the
    metrics pin the equality flag, the sample count, and the fired-alert
    count.  The wall time is the telemetry-on run only, so the regression
    gate tracks the sampler's real cost.
    """
    from dataclasses import replace as _replace

    from repro.core import MrcpRmConfig
    from repro.experiments.pool import PinnedClock
    from repro.experiments.runner import (
        RunConfig,
        SystemConfig,
        build_live_run,
    )
    from repro.obs import ObsConfig
    from repro.obs.timeseries import TelemetryConfig
    from repro.workload import SyntheticWorkloadParams

    base = RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=SyntheticWorkloadParams(
            num_jobs=12,
            map_tasks_range=(1, 8),
            reduce_tasks_range=(1, 4),
            e_max=20,
            ar_probability=0.5,
            s_max=500,
            deadline_multiplier_max=1.3,
            arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=3, map_slots=2, reduce_slots=2),
        mrcp=MrcpRmConfig(solver=_deterministic_solver_params()),
        seed=7,
    )

    def with_obs(telemetry) -> RunConfig:
        return _replace(
            base, obs=ObsConfig(wall_clock=PinnedClock(), telemetry=telemetry)
        )

    off = build_live_run(with_obs(None)).finish()
    t0 = time.perf_counter()
    run = build_live_run(
        with_obs(TelemetryConfig(enabled=True, interval=5.0))
    )
    on = run.finish()
    wall = time.perf_counter() - t0
    return wall, {
        "ontp_equal": on.as_dict() == off.as_dict(),
        "samples": len(run.sampler.store),
        "alerts_fired": len(run.slo_monitor.fired),
        "N": on.as_dict()["N"],
        "P": on.as_dict()["P"],
    }


def _case_service_admission_latency() -> Tuple[float, Dict[str, Any]]:
    """Admission-service load run: pinned verdicts, gated quoting wall.

    The in-process harness drives the service's sync core under a manual
    service clock, so everything in ``metrics`` -- counts, the verdict
    digest (canonical verdicts exclude solve wall time), and the
    *service-time* latency percentiles (dominated by the batching hold
    bound) -- is exactly reproducible; ``mrcp-rm bench --replay`` replays
    it byte-for-byte.  The measured wall time is the whole run (all
    quoting solves), which is what the calibration-normalised latency
    budget in CI actually gates.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.service.batching import BatchingConfig
    from repro.service.loadgen import LoadProfile, run_inprocess
    from repro.service.server import ServiceConfig

    profile = LoadProfile(requests=80, seed=11, arrival_rate=0.5)
    config = ServiceConfig(
        batching=BatchingConfig(max_batch_size=8, max_hold_seconds=0.05)
    )
    t0 = time.perf_counter()
    report = run_inprocess(
        profile, config=config, num_resources=4, registry=MetricsRegistry()
    )
    wall = time.perf_counter() - t0
    return wall, {
        "requests": report.requests,
        "admitted": report.admitted,
        "rejected": report.rejected,
        "shed": report.shed,
        "digest": report.digest,
        "held_p50": round(report.latency_p50, 6),
        "held_p99": round(report.latency_p99, 6),
    }


#: The pinned suite: name -> case callable returning (wall, metrics).
CASES: Dict[str, Callable[[], Tuple[float, Dict[str, Any]]]] = {
    "solver_micro_warm": _case_solver_micro_warm,
    "solver_micro_solve": _case_solver_micro_solve,
    "fig2_small": _case_fig2_small,
    "fig7_small": _case_fig7_small,
    "sweep_pool": _case_sweep_pool,
    "telemetry_overhead": _case_telemetry_overhead,
    "service_admission_latency": _case_service_admission_latency,
}


# --------------------------------------------------------------------------
# Running
# --------------------------------------------------------------------------


def env_fingerprint() -> Dict[str, Any]:
    """Where the result was produced (informational; never compared)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def run_suite(smoke: bool = False, suite: str = DEFAULT_SUITE) -> Dict[str, Any]:
    """Run every case ``rounds`` times; keep min wall + last metrics.

    ``smoke`` runs three rounds per case (CI-friendly); the full suite
    runs five for a cleaner baseline.  Each round re-measures the calibration workload immediately
    before its cases and normalizes that round's walls against it, so a
    box-wide slowdown cancels out of the ratio; the minimum normalized
    time across rounds is kept (the standard low-noise estimator).
    Metrics must be identical across rounds -- a mismatch means
    nondeterminism crept into a pinned case, and is itself an error.
    """
    rounds = 3 if smoke else 5
    best_cal: Optional[float] = None
    best_wall: Dict[str, float] = {}
    best_norm: Dict[str, float] = {}
    metrics_of: Dict[str, Dict[str, Any]] = {}
    for _ in range(rounds):
        cal_wall, _ = _case_calibration()
        best_cal = cal_wall if best_cal is None else min(best_cal, cal_wall)
        for name, fn in CASES.items():
            wall, m = fn()
            if name in metrics_of and m != metrics_of[name]:
                raise RuntimeError(
                    f"bench case {name!r} is nondeterministic: "
                    f"{metrics_of[name]} != {m}"
                )
            metrics_of[name] = m
            best_wall[name] = min(best_wall.get(name, wall), wall)
            best_norm[name] = min(
                best_norm.get(name, wall / cal_wall), wall / cal_wall
            )
    cases: Dict[str, Any] = {
        name: {
            "wall": round(best_wall[name], 6),
            "normalized_time": (
                0.0 if name in WALL_EXEMPT else round(best_norm[name], 6)
            ),
            "metrics": metrics_of[name],
        }
        for name in CASES
    }
    return {
        "schema": SCHEMA,
        "suite": suite,
        "smoke": smoke,
        "rounds": rounds,
        "calibration_time": round(best_cal, 6),
        "env": env_fingerprint(),
        "cases": cases,
    }


# --------------------------------------------------------------------------
# Comparing
# --------------------------------------------------------------------------


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    wall_tolerance: float = WALL_TOLERANCE,
    inflate: float = 1.0,
) -> List[str]:
    """Compare a result against the baseline; return failure descriptions.

    Deterministic metrics must match exactly; normalized times may grow by
    at most ``wall_tolerance``x.  ``inflate`` synthetically multiplies the
    current normalized times first (harness self-test).  An empty list
    means no regression.
    """
    failures: List[str] = []
    if current.get("schema") != SCHEMA or baseline.get("schema") != SCHEMA:
        return [
            f"schema mismatch: current={current.get('schema')!r} "
            f"baseline={baseline.get('schema')!r} expected={SCHEMA!r}"
        ]
    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"{name}: case missing from current result")
            continue
        for key, expected in base["metrics"].items():
            got = cur["metrics"].get(key)
            if got != expected:
                failures.append(
                    f"{name}: metric {key!r} changed: "
                    f"baseline={expected!r} current={got!r}"
                )
        base_norm = base["normalized_time"]
        cur_norm = cur["normalized_time"] * inflate
        if base_norm > 0 and cur_norm > base_norm * wall_tolerance:
            failures.append(
                f"{name}: normalized time {cur_norm:.3f} exceeds baseline "
                f"{base_norm:.3f} x tolerance {wall_tolerance:g} "
                f"(ratio {cur_norm / base_norm:.2f})"
            )
    return failures


def bench_diff_stub(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Dict[str, Any]:
    """A ``repro-diff/1`` document of per-case pinned-metric deltas.

    The bench gate's failure strings name the offending case; this stub is
    the machine-readable companion (baseline = side "a", current run =
    side "b"), shaped like the run-diff engine's output so one consumer
    reads both.  Cases whose pinned metrics match exactly are listed with
    an empty ``changed`` list; wall times are reported as context, never
    as divergence.
    """
    from repro.obs.structdiff import structural_diff

    base_cases = baseline.get("cases", {})
    cur_cases = current.get("cases", {})
    rows: Dict[str, Any] = {}
    divergent = 0
    for name in sorted(set(base_cases) | set(cur_cases)):
        base = base_cases.get(name, {})
        cur = cur_cases.get(name, {})
        changed = [
            e.as_dict()
            for e in structural_diff(
                base.get("metrics", {}), cur.get("metrics", {})
            )
        ]
        if name not in base_cases:
            changed.insert(
                0, {"path": "", "kind": "extra", "a": None, "b": "case"}
            )
        elif name not in cur_cases:
            changed.insert(
                0, {"path": "", "kind": "missing", "a": "case", "b": None}
            )
        if changed:
            divergent += 1
        rows[name] = {
            "verdict": "divergent" if changed else "identical",
            "changed": changed,
            "normalized_time": {
                "a": base.get("normalized_time"),
                "b": cur.get("normalized_time"),
            },
        }
    return {
        "schema": "repro-diff/1",
        "kind": "bench",
        "verdict": "divergent" if divergent else "identical",
        "a": {"label": "baseline", "suite": baseline.get("suite")},
        "b": {"label": "current", "suite": current.get("suite")},
        "cases_total": len(rows),
        "cases_divergent": divergent,
        "cases": rows,
    }


def load_result(path: str) -> Dict[str, Any]:
    """Read a bench result/baseline JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_result(path: str, result: Dict[str, Any]) -> None:
    """Write a bench result JSON file (stable key order, trailing newline)."""
    atomic_write_json(path, result, sort_keys=False)


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro bench`` options onto ``parser``."""
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline JSON to compare against (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--out", default=None, help="also write the current result here"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="(re)write the baseline from this run instead of comparing",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one round per case instead of three (CI)",
    )
    parser.add_argument(
        "--inflate",
        type=float,
        default=1.0,
        help="multiply current normalized times before comparing "
        "(harness self-test; 2.0 must fail)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=WALL_TOLERANCE,
        help=f"normalized-time growth tolerance (default {WALL_TOLERANCE})",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="RESULT_JSON",
        help="compare this previously written result instead of re-running",
    )
    parser.add_argument(
        "--diff-out",
        default=None,
        metavar="DIFF_JSON",
        help="on regression, also write a repro-diff/1 stub of the "
        "per-case pinned-metric deltas here",
    )


def run_bench_command(args: argparse.Namespace) -> int:
    """Execute ``repro bench``; returns the process exit code.

    0 = no regression (or baseline updated); 1 = regression detected;
    2 = baseline missing/unreadable.
    """
    if args.replay is not None:
        current = load_result(args.replay)
        print(f"replaying result from {args.replay}")
    else:
        current = run_suite(smoke=args.smoke)
        for name, case in current["cases"].items():
            print(
                f"  {name:24s} wall={case['wall']:.3f}s "
                f"norm={case['normalized_time']:.3f} "
                f"metrics={case['metrics']}"
            )
    if args.out is not None and args.replay is None:
        write_result(args.out, current)
        print(f"wrote result to {args.out}")
    if args.update:
        write_result(args.baseline, current)
        print(f"baseline updated: {args.baseline}")
        return 0
    if not os.path.exists(args.baseline):
        print(
            f"error: baseline {args.baseline} not found "
            "(run with --update to create it)",
            file=sys.stderr,
        )
        return 2
    baseline = load_result(args.baseline)
    failures = compare(
        current, baseline, wall_tolerance=args.tolerance, inflate=args.inflate
    )
    if failures:
        print(f"REGRESSION: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        offending = sorted({f.split(":", 1)[0] for f in failures})
        print(f"offending case(s): {', '.join(offending)}", file=sys.stderr)
        if args.diff_out is not None:
            atomic_write_json(args.diff_out, bench_diff_stub(current, baseline))
            print(f"diff stub written: {args.diff_out}", file=sys.stderr)
        return 1
    print(f"ok: {len(baseline.get('cases', {}))} cases within tolerance")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench", description=__doc__.splitlines()[0]
    )
    add_bench_arguments(parser)
    return run_bench_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
