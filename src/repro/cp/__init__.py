"""A constraint-programming solver for cumulative scheduling problems.

This package is a from-scratch replacement for the subset of IBM ILOG CP
Optimizer that the MRCP-RM paper relies on (Lim, Majumdar, Ashwood-Smith,
ICPP 2014, Sections III.B and IV).  It provides:

* trailed, bounds-consistent integer domains (:mod:`repro.cp.domain`),
* interval decision variables, optionally *optional* (absent/present), the
  building block CP Optimizer calls ``dvar interval`` (:mod:`repro.cp.variables`),
* the global constraints the paper's formulation needs -- ``cumulative``,
  ``alternative``, the map/reduce barrier precedence, and the reified
  deadline-miss indicator (:mod:`repro.cp.propagators`),
* a fixpoint propagation engine with chronological backtracking
  (:mod:`repro.cp.engine`),
* branch-and-bound tree search with a schedule-or-postpone branching rule
  (:mod:`repro.cp.search`),
* earliest-deadline-first list-scheduling warm starts
  (:mod:`repro.cp.heuristics`) and large-neighbourhood search improvement
  (:mod:`repro.cp.lns`), mirroring CP Optimizer's default incomplete search,
* a solver facade with time/fail budgets (:mod:`repro.cp.solver`), and
* an exact brute-force reference used to cross-check optimality on tiny
  instances in the test-suite (:mod:`repro.cp.brute`).

Quickstart
----------
>>> from repro.cp import CpModel, CpSolver
>>> m = CpModel(horizon=100)
>>> a = m.interval_var(length=10, name="a")
>>> b = m.interval_var(length=5, name="b")
>>> m.add_cumulative([a, b], demands=[1, 1], capacity=1)
>>> late = m.add_deadline_indicator([a, b], deadline=20, name="late")
>>> m.minimize_sum([late])
>>> result = CpSolver().solve(m)
>>> result.objective
0
"""

from repro.cp.errors import Infeasible, ModelError
from repro.cp.domain import IntDomain
from repro.cp.variables import IntervalVar, BoolVar
from repro.cp.model import CpModel
from repro.cp.solution import Solution, SolveResult, SolveStatus, SearchStats
from repro.cp.solver import CpSolver, SolverParams
from repro.cp.brute import brute_force_min_late

__all__ = [
    "Infeasible",
    "ModelError",
    "IntDomain",
    "IntervalVar",
    "BoolVar",
    "CpModel",
    "Solution",
    "SolveResult",
    "SolveStatus",
    "SearchStats",
    "CpSolver",
    "SolverParams",
    "brute_force_min_late",
]
