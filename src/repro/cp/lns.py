"""Large-neighbourhood search (LNS) improvement.

CP Optimizer's default search interleaves tree search with self-adapting LNS;
this module provides the equivalent improvement loop.  Each iteration:

1. pick a *relaxation set* of job groups -- always including late jobs, plus
   jobs whose execution windows overlap them (they are the ones blocking the
   late job's tasks);
2. pin every other group's task starts (and resource choices) to the
   incumbent;
3. re-run a fail-limited tree search for a strictly better solution.

The neighbourhood grows when iterations stop improving, shrinking the pinned
region until either the incumbent is optimal-enough (0 late jobs) or the time
budget runs out.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.model import CpModel, Group
from repro.cp.search import SearchLimits, SetTimesBrancher, tree_search
from repro.cp.solution import SearchStats, Solution
from repro.cp.variables import IntervalVar


@dataclass
class LnsParams:
    fail_limit: int = 300
    initial_neighbourhood: int = 3
    max_neighbourhood: int = 12
    stall_before_grow: int = 4
    seed: int = 0


def _late_groups(model: CpModel, sol: Solution) -> List[Group]:
    late = []
    for g in model.groups:
        if g.deadline is None or not g.intervals:
            continue
        completion = max(sol.end_of(iv) for iv in g.intervals)
        if completion > g.deadline:
            late.append(g)
    return late


def _window(sol: Solution, g: Group) -> tuple:
    starts = [sol.start_of(iv) for iv in g.intervals]
    ends = [sol.end_of(iv) for iv in g.intervals]
    return (min(starts), max(ends))


def _overlap(a: tuple, b: tuple) -> int:
    return max(0, min(a[1], b[1]) - max(a[0], b[0]))


def lns_improve(
    model: CpModel,
    engine: Engine,
    incumbent: Solution,
    deadline: float,
    params: Optional[LnsParams] = None,
    jump: bool = True,
    target: int = 0,
) -> tuple:
    """Improve ``incumbent`` until ``deadline`` (perf_counter time).

    ``target`` is a proven lower bound on the objective: reaching it stops
    the loop early.  Returns ``(best_solution, stats)``.
    """
    params = params or LnsParams()
    stats = SearchStats()
    best = incumbent
    groups = [g for g in model.groups if g.intervals]
    if (
        len(groups) < 2
        or best.objective is None
        or best.objective <= target
    ):
        return best, stats

    rng = random.Random(params.seed)
    brancher = SetTimesBrancher(model, jump=jump)
    neighbourhood = params.initial_neighbourhood
    stall = 0

    # Pre-compute which intervals are "naturally frozen" (fixed windows):
    # pinning them again is harmless but wasteful.
    frozen = {iv for iv in model.intervals if iv.est == iv.lst}

    while time.perf_counter() < deadline:
        late = _late_groups(model, best)
        if not late:
            break  # objective is 0 by construction
        stats.lns_iterations += 1

        # ---- choose the relaxation set
        seed_group = rng.choice(late)
        relax: Set[int] = {id(seed_group)}
        seed_win = _window(best, seed_group)
        neighbours = sorted(
            (g for g in groups if id(g) != id(seed_group)),
            key=lambda g: -_overlap(seed_win, _window(best, g)),
        )
        extra_late = [g for g in late if id(g) not in relax]
        rng.shuffle(extra_late)
        for g in extra_late[: max(0, neighbourhood // 2)]:
            relax.add(id(g))
        for g in neighbours:
            if len(relax) >= neighbourhood:
                break
            relax.add(id(g))

        relaxed_intervals: Set[IntervalVar] = set()
        for g in groups:
            if id(g) in relax:
                relaxed_intervals.update(g.intervals)

        # ---- pin everything else to the incumbent
        engine.reset()
        feasible = True
        try:
            for iv in model.intervals:
                if iv in relaxed_intervals or iv in frozen:
                    continue
                iv.fix_start(best.starts[iv], engine)
            for alt in model.alternatives:
                if alt.master in relaxed_intervals or alt.master in frozen:
                    continue
                chosen = best.choices.get(alt.master)
                if chosen is not None:
                    chosen.set_present(engine)
            engine.propagate()
        except Infeasible:
            feasible = False
        if not feasible:
            stall += 1
            if stall >= params.stall_before_grow:
                neighbourhood = min(neighbourhood + 2, params.max_neighbourhood)
                stall = 0
            continue

        # ---- fail-limited dive for a strictly better solution
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            break
        limits = SearchLimits.from_budget(
            time_budget=remaining, fail_limit=params.fail_limit
        )
        result = tree_search(model, engine, brancher, limits, incumbent=best)
        stats.merge(result.stats)

        if (
            result.best is not None
            and result.best is not best
            and result.best.objective is not None
            and (best.objective is None or result.best.objective < best.objective)
        ):
            best = result.best
            stall = 0
            neighbourhood = params.initial_neighbourhood
            if best.objective is not None and best.objective <= target:
                break
        else:
            stall += 1
            if stall >= params.stall_before_grow:
                neighbourhood = min(neighbourhood + 2, params.max_neighbourhood)
                stall = 0

    engine.reset()
    return best, stats
