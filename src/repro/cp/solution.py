"""Solution and result containers for the CP solver."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cp.model import CpModel
from repro.cp.variables import IntervalVar


class SolveStatus(enum.Enum):
    """Outcome of a solve call (mirrors CP Optimizer's statuses)."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class Solution:
    """A complete assignment: start times plus alternative choices.

    ``starts`` maps every mandatory (master) interval to its start time.
    ``choices`` maps each alternative's master interval to the chosen option
    interval (empty for models without matchmaking variables).
    """

    starts: Dict[IntervalVar, int]
    choices: Dict[IntervalVar, IntervalVar] = field(default_factory=dict)
    objective: Optional[int] = None

    def start_of(self, iv: IntervalVar) -> int:
        """Assigned start time of ``iv``."""
        return self.starts[iv]

    def end_of(self, iv: IntervalVar) -> int:
        """Assigned completion time of ``iv``."""
        return self.starts[iv] + iv.length

    def chosen_option(self, master: IntervalVar) -> Optional[IntervalVar]:
        """The resource copy selected for ``master`` (None without alternatives)."""
        return self.choices.get(master)

    def copy(self) -> "Solution":
        """Independent shallow copy (same interval keys, fresh dicts)."""
        return Solution(dict(self.starts), dict(self.choices), self.objective)

    def evaluate_objective(self, model: CpModel) -> int:
        """Recompute ``sum(N_j)`` from the actual schedule.

        This is the ground truth used when reporting: an indicator variable
        may legally be 1 for an on-time job under the paper's one-directional
        constraint (4), so we always count lateness from completion times.
        """
        late = 0
        for spec in model.indicators:
            completion = max(self.end_of(t) for t in spec.tasks)
            if completion > spec.deadline:
                late += 1
        return late


@dataclass
class SearchStats:
    """Search effort counters, accumulated across solver phases."""

    branches: int = 0
    fails: int = 0
    solutions: int = 0
    propagations: int = 0
    lns_iterations: int = 0
    wall_time: float = 0.0
    #: ---- per-phase wall time of one solve (seconds; set by the solver
    #: facade, summed additively by :meth:`merge` across solves) ----
    #: root propagation before any search
    propagate_time: float = 0.0
    #: list-scheduling warm starts (including the hint replay)
    warm_start_time: float = 0.0
    #: branch-and-bound tree search
    tree_time: float = 0.0
    #: large-neighbourhood improvement
    lns_time: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another phase's counters into this one."""
        self.branches += other.branches
        self.fails += other.fails
        self.solutions += other.solutions
        self.propagations += other.propagations
        self.lns_iterations += other.lns_iterations
        self.wall_time += other.wall_time
        self.propagate_time += other.propagate_time
        self.warm_start_time += other.warm_start_time
        self.tree_time += other.tree_time
        self.lns_time += other.lns_time


@dataclass
class SolveProfile:
    """Deep profile of one solve (attached when profiling is enabled).

    ``solved_by`` attributes the returned incumbent to the phase that
    produced it: ``"hint"`` (previous plan replay), ``"warm_start"``
    (list-scheduling heuristics), ``"tree"`` (branch-and-bound improved
    it), ``"lns"`` (LNS improved it), or ``"none"`` (no solution).
    """

    #: warm-start incumbent's objective (None when no warm start succeeded)
    warm_start_objective: Optional[int] = None
    #: objective of the returned solution (None when there is none)
    final_objective: Optional[int] = None
    solved_by: str = "none"
    #: whether tree search / LNS strictly improved the incumbent
    improved_by_tree: bool = False
    improved_by_lns: bool = False
    #: wall seconds inside ``Engine.propagate`` across all phases
    engine_propagate_time: float = 0.0
    #: number of ``Engine.propagate`` fixpoint runs
    engine_propagate_calls: int = 0
    #: per-propagator-class effort: name -> {"runs", "prunes", "fails"}
    propagators: Dict[str, Dict[str, int]] = field(default_factory=dict)


@dataclass
class SolveResult:
    """What :class:`~repro.cp.solver.CpSolver` returns."""

    status: SolveStatus
    solution: Optional[Solution]
    stats: SearchStats = field(default_factory=SearchStats)
    #: Present when the solver ran with profiling enabled.
    profile: Optional[SolveProfile] = None

    @property
    def objective(self) -> Optional[int]:
        return None if self.solution is None else self.solution.objective

    @property
    def budget_exhausted(self) -> bool:
        """Whether the solve ran out of budget without reaching a verdict.

        ``UNKNOWN`` means the time/fail budget expired with neither an
        incumbent nor an infeasibility proof -- the solver-health signal
        circuit breakers key on.  A proven ``INFEASIBLE`` is the
        *instance's* fault, not the solver's, and must not trip them.
        """
        return self.status is SolveStatus.UNKNOWN

    def __bool__(self) -> bool:
        return self.status.has_solution
