"""Energetic reasoning for the cumulative constraint.

Time-table propagation only sees *compulsory parts* -- a set of tasks with
wide windows but not enough total capacity slips straight past it.  The
classic energetic overload check closes that gap: over any window
``[a, b)``, the sum of each task's *minimal intersection energy* with the
window must fit in ``capacity * (b - a)``.

The minimal intersection of task ``i`` (length ``p``, demand ``d``) with
``[a, b)`` is

    d * max(0, min(p, b - a, ect_i - a, b - lst_i))

(left-shifted tail, right-shifted head, full containment -- whichever is
least).  Checking all O(n^2) candidate windows with O(n) energy sums is
O(n^3); this propagator is therefore *optional* (enable with
``CpModel(energetic_reasoning=True)``) and guards itself with a task-count
cap.  It performs the satisfiability check only -- no bounds filtering --
which is the standard cheap configuration and enough to cut entire subtrees
that time-tabling would explore in vain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.cp.domain import FIX_EVENT, MAX_EVENT, MIN_EVENT
from repro.cp.errors import Infeasible
from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine

#: Above this many participating tasks the O(n^3) check is skipped
#: (time-tabling still guards correctness; energy only adds pruning).
DEFAULT_TASK_CAP = 80


def minimal_intersection_energy(
    iv: IntervalVar, demand: int, a: int, b: int
) -> int:
    """Energy task ``iv`` must spend inside ``[a, b)`` in any placement."""
    if b <= a:
        return 0
    left = iv.ect - a  # left-shifted: tail inside the window
    right = b - iv.lst  # right-shifted: head inside the window
    overlap = min(iv.length, b - a, left, right)
    if overlap <= 0:
        return 0
    return demand * overlap


class EnergeticReasoningPropagator(Propagator):
    """Overload check over all [est_i, lct_j) candidate windows."""

    priority = 1

    __slots__ = ("intervals", "demands", "capacity", "task_cap")

    def __init__(
        self,
        intervals: Sequence[IntervalVar],
        demands: Sequence[int],
        capacity: int,
        name: str = "",
        task_cap: int = DEFAULT_TASK_CAP,
    ) -> None:
        super().__init__(name or "energetic")
        if len(intervals) != len(demands):
            raise ValueError("intervals and demands must have equal length")
        self.intervals = list(intervals)
        self.demands = [int(d) for d in demands]
        self.capacity = int(capacity)
        self.task_cap = task_cap

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        for iv in self.intervals:
            yield iv.start, MIN_EVENT | MAX_EVENT, None
            if iv.presence is not None:
                yield iv.presence.domain, FIX_EVENT, None

    def propagate(self, engine: "Engine") -> None:
        active: List[tuple] = [
            (iv, d)
            for iv, d in zip(self.intervals, self.demands)
            if d > 0 and iv.length > 0 and iv.is_present
        ]
        if not active or len(active) > self.task_cap:
            return
        cap = self.capacity

        # Candidate window ends: the classical O(n) characteristic points on
        # each side (left: est/lst, right: ect/lct) -- enough to expose
        # forced-overlap overloads like two wide tasks pinned to a narrow
        # release window.
        starts = sorted({t for iv, _ in active for t in (iv.est, iv.lst)})
        ends = sorted({t for iv, _ in active for t in (iv.ect, iv.lct)})
        for a in starts:
            for b in ends:
                if b <= a:
                    continue
                available = cap * (b - a)
                required = 0
                for iv, d in active:
                    # cheap exclusion before the min() cascade
                    if iv.lct <= a or iv.est >= b:
                        continue
                    required += minimal_intersection_energy(iv, d, a, b)
                    if required > available:
                        raise Infeasible(
                            f"{self.name}: window [{a}, {b}) needs "
                            f"{required} energy but offers {available}"
                        )
