"""Cumulative resource constraint via incremental time-table propagation.

This implements the ``cumulative`` global constraint of Table 1 (constraints
5 and 6): at every instant the total demand of executing tasks on a resource
must not exceed its capacity.  OPL expresses this with a sum of ``pulse``
expressions; we implement the classic *time-table* propagation instead:

1. **Overload check** -- aggregate the compulsory parts ``[lst, ect)`` of all
   present intervals; if the profile ever exceeds the capacity the node fails.
2. **Bounds filtering** -- a present interval with no compulsory part is swept
   across the profile: its earliest start is pushed past every stretch where
   ``profile + demand > capacity`` (and symmetrically its latest start is
   pulled back).
3. **Presence filtering** -- an optional interval that cannot fit anywhere in
   its window on top of the mandatory profile is made absent.

Tasks that *have* a compulsory part are not bounds-filtered (their own
contribution is in the profile and subtracting it per-task costs more than it
saves); the overload check still covers them, so the propagation is sound,
merely not maximally tight -- the same trade-off CP Optimizer's default
inference level makes.

Incrementality
--------------
The profile is *trailed*, not rebuilt: each interval's cached compulsory
part is re-derived only when its start bounds or presence changed since the
last run (the dirty tokens delivered by :meth:`IntDomain.watch`), and every
profile delta pushes an undo record so backtracking restores the profile in
lock-step with the domains.  A version counter -- bumped on every profile
mutation, including undo -- decides how much filtering a run owes: when the
profile is untouched since the last completed run, previously filtered
bounds are still at their fixpoint, so only the dirty intervals are swept
and the overload check is skipped; any profile delta triggers the full
overload check plus a sweep of every candidate, exactly what the
from-scratch propagator did on every run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.cp.domain import FIX_EVENT, MAX_EVENT, MIN_EVENT
from repro.cp.errors import Infeasible
from repro.cp.profile import TimetableProfile
from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine

#: Cached compulsory part: (start, end) of the trailed profile pulse.
_Part = Optional[Tuple[int, int]]

#: Sentinel bound for an empty changed-window envelope.
_HUGE = 1 << 62


class CumulativePropagator(Propagator):
    """``sum(pulse(task, demand)) <= capacity`` over a set of intervals."""

    priority = 1  # expensive: run after the cheap propagators settle

    __slots__ = (
        "intervals",
        "demands",
        "capacity",
        "_tasks",
        "_parts",
        "_profile",
        "_version",
        "_filtered_version",
        "_chg_all",
        "_chg_lo",
        "_chg_hi",
    )

    def __init__(
        self,
        intervals: Sequence[IntervalVar],
        demands: Sequence[int],
        capacity: int,
        name: str = "",
    ) -> None:
        super().__init__(name or "cumulative")
        if len(intervals) != len(demands):
            raise ValueError("intervals and demands must have equal length")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        self.intervals = list(intervals)
        self.demands = [int(d) for d in demands]
        self.capacity = int(capacity)
        #: Flattened hot-loop view of the intervals that can ever load the
        #: resource: (interval, start domain, presence domain, demand, length).
        self._tasks: List[Tuple[IntervalVar, "IntDomain", Optional["IntDomain"], int, int]] = [
            (
                iv,
                iv.start,
                iv.presence.domain if iv.presence is not None else None,
                d,
                iv.length,
            )
            for iv, d in zip(self.intervals, self.demands)
            if d != 0 and iv.length != 0
        ]
        #: Compulsory part currently inside :attr:`_profile`, per task.
        self._parts: List[_Part] = [None] * len(self._tasks)
        self._profile = TimetableProfile()
        #: Bumped on every profile mutation (sync *and* backtrack undo).
        self._version = 0
        #: :attr:`_version` as of the last completed filtering pass.
        self._filtered_version = -1
        #: Envelope [lo, hi) hull of all profile regions mutated since the
        #: last full filtering pass (sync, undo); a candidate whose window
        #: does not overlap it -- and whose own bounds did not change -- has
        #: provably unchanged fit queries, so the sweep skips it.
        self._chg_all = True  # first run: everything is new
        self._chg_lo = _HUGE
        self._chg_hi = -_HUGE
        self._dirty.update(range(len(self._tasks)))

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        for k, (iv, start, pres, _d, _length) in enumerate(self._tasks):
            yield start, MIN_EVENT | MAX_EVENT, k
            if pres is not None:
                yield pres, FIX_EVENT, k

    def on_reset(self, engine: "Engine") -> None:
        # pop_all rewinds the trailed profile/parts, but the untrailed dirty
        # set was consumed by past runs: re-prime so the first fixpoint
        # re-derives every compulsory part from the pristine domains.
        self._dirty.update(range(len(self._tasks)))
        self._version += 1
        self._chg_all = True

    def _widen(self, part: _Part) -> None:
        """Grow the changed-window envelope to cover a mutated pulse."""
        if part is not None:
            if part[0] < self._chg_lo:
                self._chg_lo = part[0]
            if part[1] > self._chg_hi:
                self._chg_hi = part[1]

    def _restore(self, state: Tuple[int, _Part, _Part]) -> None:
        """Trail undo: revert one compulsory-part delta (LIFO with domains)."""
        k, old, new = state
        _iv, _start, _pres, d, _length = self._tasks[k]
        profile = self._profile
        if new is not None:
            profile.remove(new[0], new[1], d)
        if old is not None:
            profile.add(old[0], old[1], d)
        self._parts[k] = old
        self._version += 1
        self._widen(old)
        self._widen(new)

    # ----------------------------------------------------------------- body
    def propagate(self, engine: "Engine") -> None:
        cap = self.capacity
        tasks = self._tasks
        parts = self._parts
        profile = self._profile
        dirty = self._dirty

        # Sync: fold the compulsory-part deltas of changed tasks into the
        # trailed profile.  Commutative, so iteration order is free; sorted
        # keeps runs deterministic.
        touched: Tuple[int, ...] = ()
        if dirty:
            touched = tuple(sorted(dirty))
            dirty.clear()
            trail = engine.trail
            for k in touched:
                _iv, start, pres, d, length = tasks[k]
                smin = start._min
                smax = start._max
                if (pres is None or pres._min == 1) and smax < smin + length:
                    new: _Part = (smax, smin + length)
                else:
                    new = None
                old = parts[k]
                if new != old:
                    if old is not None:
                        profile.remove(old[0], old[1], d)
                    if new is not None:
                        profile.add(new[0], new[1], d)
                    parts[k] = new
                    trail.record(self, (k, old, new))
                    self._version += 1
                    self._widen(old)
                    self._widen(new)

        # How much filtering does this run owe?  An untouched profile means
        # every previously swept bound is still at its fixpoint: only the
        # tasks whose own windows changed need re-sweeping, and the overload
        # check would reproduce its previous verdict.  When the profile did
        # change, only candidates whose placement window overlaps the
        # changed-window envelope (plus the dirty ones) can see a different
        # fit query result; everyone else is still at its fixpoint.
        env_lo = env_hi = None
        tset: frozenset = frozenset()
        if self._version != self._filtered_version:
            if profile.max_height() > cap:
                raise Infeasible(
                    f"{self.name}: compulsory demand "
                    f"{profile.max_height()} exceeds capacity {cap}"
                )
            candidates: Iterable[int] = range(len(tasks))
            if not self._chg_all:
                env_lo = self._chg_lo
                env_hi = self._chg_hi
                tset = frozenset(touched)
            self._filtered_version = self._version
            self._chg_all = False
            self._chg_lo = _HUGE
            self._chg_hi = -_HUGE
        else:
            candidates = touched

        for k in candidates:
            iv, start, pres, d, length = tasks[k]
            if pres is not None:
                pmin = pres._min
                if pres._max == 0:
                    continue  # absent: bounds are meaningless
                present = pmin == 1
            else:
                present = True
            smin = start._min
            smax = start._max
            if present and smax < smin + length:
                continue  # own contribution is inside the profile; skip
            if env_lo is not None and (
                smin >= env_hi or smax + length <= env_lo
            ) and k not in tset:
                continue  # window misses every changed region: fits unchanged
            bounds = profile.fit_bounds(smin, smax, length, d, cap)
            if bounds is None:
                if pres is not None and not present:
                    iv.set_absent(engine)
                    continue
                raise Infeasible(
                    f"{self.name}: no feasible start for {iv.name} "
                    f"in [{smin}, {smax}]"
                )
            fit, late_fit = bounds
            if late_fit < fit:
                # An earliest fit proves a feasible placement exists at or
                # after it, so the latest fit can never precede it; reaching
                # this line means the sweep invariant broke.  Fail the node
                # explicitly rather than letting an inverted window reach
                # set_start_max (an assert would be stripped under
                # ``python -O`` and corrupt the search silently).
                raise Infeasible(
                    f"{self.name}: internal time-table inconsistency -- "
                    f"earliest fit {fit} for {iv.name} after latest {late_fit}"
                )
            if present:
                changed = start.set_min(fit, engine)
                changed |= start.set_max(late_fit, engine)
                if changed and start._max < start._min + length:
                    # The interval gained a compulsory part: re-run so the
                    # profile (and other tasks) see it.
                    engine.schedule(self)

    # ------------------------------------------------------------- checking
    def check_assignment(
        self,
        starts: dict,
        present: Optional[dict] = None,
    ) -> Optional[str]:
        """Validate a complete assignment; returns a violation message or None.

        ``starts`` maps interval -> start time; ``present`` maps optional
        intervals -> bool (mandatory intervals are always counted).
        """
        profile = TimetableProfile()
        for idx, iv in enumerate(self.intervals):
            if present is not None and iv.is_optional and not present.get(iv, False):
                continue
            if iv.is_optional and present is None:
                continue
            if iv not in starts:
                return f"{self.name}: missing start for {iv.name}"
            s = starts[iv]
            profile.add(s, s + iv.length, self.demands[idx])
        peak = profile.max_height()
        if peak > self.capacity:
            return f"{self.name}: peak usage {peak} exceeds capacity {self.capacity}"
        return None
