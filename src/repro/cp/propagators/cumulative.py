"""Cumulative resource constraint via time-table propagation.

This implements the ``cumulative`` global constraint of Table 1 (constraints
5 and 6): at every instant the total demand of executing tasks on a resource
must not exceed its capacity.  OPL expresses this with a sum of ``pulse``
expressions; we implement the classic *time-table* propagation instead:

1. **Overload check** -- aggregate the compulsory parts ``[lst, ect)`` of all
   present intervals; if the profile ever exceeds the capacity the node fails.
2. **Bounds filtering** -- a present interval with no compulsory part is swept
   across the profile: its earliest start is pushed past every stretch where
   ``profile + demand > capacity`` (and symmetrically its latest start is
   pulled back).
3. **Presence filtering** -- an optional interval that cannot fit anywhere in
   its window on top of the mandatory profile is made absent.

Tasks that *have* a compulsory part are not bounds-filtered (their own
contribution is in the profile and subtracting it per-task costs more than it
saves); the overload check still covers them, so the propagation is sound,
merely not maximally tight -- the same trade-off CP Optimizer's default
inference level makes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.cp.errors import Infeasible
from repro.cp.profile import (
    TimetableProfile,
    earliest_fit_in_segments,
    latest_fit_in_segments,
)
from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class CumulativePropagator(Propagator):
    """``sum(pulse(task, demand)) <= capacity`` over a set of intervals."""

    priority = 1  # expensive: run after the cheap propagators settle

    __slots__ = ("intervals", "demands", "capacity")

    def __init__(
        self,
        intervals: Sequence[IntervalVar],
        demands: Sequence[int],
        capacity: int,
        name: str = "",
    ) -> None:
        super().__init__(name or "cumulative")
        if len(intervals) != len(demands):
            raise ValueError("intervals and demands must have equal length")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity}")
        self.intervals = list(intervals)
        self.demands = [int(d) for d in demands]
        self.capacity = int(capacity)

    def watched_domains(self) -> Iterable["IntDomain"]:
        for iv in self.intervals:
            yield iv.start
            if iv.presence is not None:
                yield iv.presence.domain

    # ----------------------------------------------------------------- body
    def propagate(self, engine: "Engine") -> None:
        cap = self.capacity
        profile = TimetableProfile()
        contributors: List[int] = []
        for idx, iv in enumerate(self.intervals):
            d = self.demands[idx]
            if d == 0 or iv.length == 0 or not iv.is_present:
                continue
            if iv.has_compulsory_part:
                profile.add(iv.lst, iv.ect, d)
                contributors.append(idx)
        segments = profile.segments()

        # 1. Overload check on the mandatory profile.
        for _, _, h in segments:
            if h > cap:
                raise Infeasible(
                    f"{self.name}: compulsory demand {h} exceeds capacity {cap}"
                )

        # 2 & 3. Filter the movable and undecided intervals.
        for idx, iv in enumerate(self.intervals):
            d = self.demands[idx]
            if d == 0 or iv.length == 0 or iv.is_absent:
                continue
            if iv.is_present and iv.has_compulsory_part:
                continue  # own contribution is inside the profile; skip
            fit = earliest_fit_in_segments(
                segments, iv.est, iv.lst, iv.length, d, cap
            )
            if fit is None:
                if iv.presence_undecided:
                    iv.set_absent(engine)
                    continue
                raise Infeasible(
                    f"{self.name}: no feasible start for {iv.name} "
                    f"in [{iv.est}, {iv.lst}]"
                )
            late_fit = latest_fit_in_segments(
                segments, iv.est, iv.lst, iv.length, d, cap
            )
            assert late_fit is not None  # earliest fit exists => latest does
            if iv.is_present:
                changed = iv.set_start_min(fit, engine)
                changed |= iv.set_start_max(late_fit, engine)
                if changed and iv.has_compulsory_part:
                    # The interval gained a compulsory part: re-run so the
                    # profile (and other tasks) see it.
                    engine.schedule(self)

    # ------------------------------------------------------------- checking
    def check_assignment(
        self,
        starts: dict,
        present: Optional[dict] = None,
    ) -> Optional[str]:
        """Validate a complete assignment; returns a violation message or None.

        ``starts`` maps interval -> start time; ``present`` maps optional
        intervals -> bool (mandatory intervals are always counted).
        """
        profile = TimetableProfile()
        for idx, iv in enumerate(self.intervals):
            if present is not None and iv.is_optional and not present.get(iv, False):
                continue
            if iv.is_optional and present is None:
                continue
            if iv not in starts:
                return f"{self.name}: missing start for {iv.name}"
            s = starts[iv]
            profile.add(s, s + iv.length, self.demands[idx])
        peak = profile.max_height()
        if peak > self.capacity:
            return f"{self.name}: peak usage {peak} exceeds capacity {self.capacity}"
        return None
