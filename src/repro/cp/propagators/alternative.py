"""The ``alternative`` constraint over optional intervals.

Table 1's constraint (1) -- each task runs on exactly one resource -- is
expressed in OPL as ``alternative(taskInterval[t], x[a] ...)``: a mandatory
*master* interval and one optional copy per resource; exactly one copy is
present in a solution and it is synchronised with the master.

Propagation rules implemented here:

* if every copy is absent -> fail;
* if only one copy remains possible -> it becomes present;
* if some copy is present -> all other copies become absent and the present
  copy's start window is intersected with the master's (both directions);
* the master's window is the union of the windows of the possible copies;
* a possible copy's window is intersected with the master's window -- if it
  empties, the copy becomes absent instead of failing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.cp.domain import FIX_EVENT, MAX_EVENT, MIN_EVENT
from repro.cp.errors import Infeasible
from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class AlternativePropagator(Propagator):
    """Exactly one of ``options`` is present and equals ``master``."""

    __slots__ = ("master", "options")

    def __init__(
        self,
        master: IntervalVar,
        options: List[IntervalVar],
        name: str = "",
    ) -> None:
        super().__init__(name or f"alt({master.name})")
        if not options:
            raise ValueError(f"alternative for {master.name} needs options")
        for o in options:
            if not o.is_optional:
                raise ValueError(
                    f"alternative option {o.name} must be an optional interval"
                )
            if o.length != master.length:
                raise ValueError(
                    f"option {o.name} length {o.length} differs from "
                    f"master {master.name} length {master.length}"
                )
        self.master = master
        self.options = list(options)

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        yield self.master.start, MIN_EVENT | MAX_EVENT, None
        for o in self.options:
            yield o.start, MIN_EVENT | MAX_EVENT, None
            # Intermediate bound moves of the 0/1 presence are impossible;
            # only the decision itself matters.
            yield o.presence.domain, FIX_EVENT, None  # type: ignore[union-attr]

    def propagate(self, engine: "Engine") -> None:
        master = self.master
        possible = [o for o in self.options if not o.is_absent]
        if not possible:
            raise Infeasible(f"{self.name}: all options absent")

        chosen: Optional[IntervalVar] = None
        for o in possible:
            if o.is_present:
                if chosen is not None:
                    raise Infeasible(
                        f"{self.name}: two options present "
                        f"({chosen.name}, {o.name})"
                    )
                chosen = o

        if chosen is not None:
            for o in possible:
                if o is not chosen:
                    o.set_absent(engine)
            # Tight two-way synchronisation with the master.
            chosen.set_start_min(master.est, engine)
            chosen.set_start_max(master.lst, engine)
            master.set_start_min(chosen.est, engine)
            master.set_start_max(chosen.lst, engine)
            return

        if len(possible) == 1:
            possible[0].set_present(engine)
            engine.schedule(self)  # re-run to synchronise as "chosen"
            return

        # Intersect each possible option's window with the master's; an
        # emptied window means that placement is impossible -> absent.
        still_possible: List[IntervalVar] = []
        for o in possible:
            lo = max(o.est, master.est)
            hi = min(o.lst, master.lst)
            if lo > hi:
                o.set_absent(engine)
                continue
            o.set_start_min(lo, engine)
            o.set_start_max(hi, engine)
            still_possible.append(o)
        if not still_possible:
            raise Infeasible(f"{self.name}: no option window overlaps master")
        if len(still_possible) == 1:
            # Self-wakes are suppressed, so the single-possible inference of
            # the next run must be requested explicitly.
            engine.schedule(self)

        # Master window = union of the remaining options' windows.
        master.set_start_min(min(o.est for o in still_possible), engine)
        master.set_start_max(max(o.lst for o in still_possible), engine)
