"""Propagator protocol."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class Propagator:
    """Base class for constraint propagators.

    Subclasses implement :meth:`propagate` (tighten domains or raise
    :class:`~repro.cp.errors.Infeasible`) and either :meth:`watches`
    (event-typed subscriptions with optional dirty tokens) or the simpler
    :meth:`watched_domains` (wake on any bound change, no token).

    ``priority`` selects the engine queue: 0 for cheap propagators, 1 for
    expensive global constraints that should run once the cheap ones settle.
    """

    #: Queue priority; 0 = run first, 1 = run after the high-priority queue.
    priority: int = 0

    __slots__ = ("queued", "name", "_dirty")

    def __init__(self, name: str = "") -> None:
        self.queued = False
        self.name = name or type(self).__name__
        #: Tokens of the subscriptions that fired since the last run
        #: (:meth:`IntDomain.watch` with ``token`` != None feeds this).
        self._dirty: Set[object] = set()

    def watched_domains(self) -> Iterable["IntDomain"]:
        """Domains whose bound changes wake this propagator."""
        raise NotImplementedError

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        """``(domain, event_mask, token)`` subscriptions.

        The default subscribes to every event of every domain yielded by
        :meth:`watched_domains`, with no token -- the pre-event behaviour.
        """
        from repro.cp.domain import ANY_EVENT

        for dom in self.watched_domains():
            yield dom, ANY_EVENT, None

    def on_reset(self, engine: "Engine") -> None:
        """Hook invoked by ``Engine.seal()``/``Engine.reset()``.

        ``Trail.pop_all`` rewinds trailed state, but a propagator's *untrailed*
        incremental bookkeeping (dirty sets) must be re-primed so the next
        fixpoint rebuilds from pristine domains.  The default does nothing.
        """

    def propagate(self, engine: "Engine") -> None:
        """Tighten domains to (local) consistency or raise ``Infeasible``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"
