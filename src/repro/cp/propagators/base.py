"""Propagator protocol."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class Propagator:
    """Base class for constraint propagators.

    Subclasses implement :meth:`propagate` (tighten domains or raise
    :class:`~repro.cp.errors.Infeasible`) and :meth:`watched_domains` (which
    domain changes should re-trigger the propagator).

    ``priority`` selects the engine queue: 0 for cheap propagators, 1 for
    expensive global constraints that should run once the cheap ones settle.
    """

    #: Queue priority; 0 = run first, 1 = run after the high-priority queue.
    priority: int = 0

    __slots__ = ("queued", "name")

    def __init__(self, name: str = "") -> None:
        self.queued = False
        self.name = name or type(self).__name__

    def watched_domains(self) -> Iterable["IntDomain"]:
        """Domains whose bound changes wake this propagator."""
        raise NotImplementedError

    def propagate(self, engine: "Engine") -> None:
        """Tighten domains to (local) consistency or raise ``Infeasible``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.name}>"
