"""Constraint propagators for the scheduling CP solver.

Each propagator implements one constraint family from the paper's CP
formulation (Table 1):

* :class:`~repro.cp.propagators.precedence.BarrierPropagator` -- constraint
  (3): every reduce task starts after the latest-finishing map task.
* :class:`~repro.cp.propagators.cumulative.CumulativePropagator` --
  constraints (5)/(6): per-resource map/reduce slot capacities, via
  time-table (compulsory part) reasoning.
* :class:`~repro.cp.propagators.alternative.AlternativePropagator` --
  constraint (1): each task is placed on exactly one resource, as in OPL's
  ``alternative`` over optional intervals.
* :class:`~repro.cp.propagators.lateness.DeadlineIndicatorPropagator` --
  constraint (4): the reified "job is late" boolean.
* :class:`~repro.cp.propagators.objective.SumBoolBoundPropagator` -- the
  branch-and-bound cut ``sum(N_j) <= incumbent - 1``.
* :class:`~repro.cp.propagators.precedence.EndBeforeStartPropagator` --
  generic pairwise precedence, exposed for library users building workflows
  beyond two-stage MapReduce.
"""

from repro.cp.propagators.base import Propagator
from repro.cp.propagators.precedence import BarrierPropagator, EndBeforeStartPropagator
from repro.cp.propagators.cumulative import CumulativePropagator
from repro.cp.propagators.alternative import AlternativePropagator
from repro.cp.propagators.lateness import DeadlineIndicatorPropagator
from repro.cp.propagators.objective import SumBoolBoundPropagator
from repro.cp.propagators.energetic import EnergeticReasoningPropagator

__all__ = [
    "Propagator",
    "BarrierPropagator",
    "EndBeforeStartPropagator",
    "CumulativePropagator",
    "AlternativePropagator",
    "DeadlineIndicatorPropagator",
    "SumBoolBoundPropagator",
    "EnergeticReasoningPropagator",
]
