"""Reified deadline-miss indicator (Table 1, constraint 4).

``N_j = 1`` iff the job's latest-finishing last-stage task completes after the
deadline.  The paper states the constraint as a one-directional implication
(late => ``N_j = 1``); we propagate the full reification because the reverse
direction (``N_j = 0`` => every last-stage task ends by the deadline) is what
gives branch-and-bound its pruning power: when the objective cut forces an
indicator to 0, the job's tasks immediately acquire due dates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.cp.domain import FIX_EVENT, MAX_EVENT, MIN_EVENT
from repro.cp.errors import Infeasible
from repro.cp.propagators.base import Propagator
from repro.cp.variables import BoolVar, IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class DeadlineIndicatorPropagator(Propagator):
    """``indicator = (max(task.end for task in tasks) > deadline)``.

    ``tasks`` are the job's last-stage intervals -- its reduce tasks, or its
    map tasks for map-only jobs (job types 1, 2, 4, 5, 7, 10 of the Facebook
    workload have no reduces).  They must be mandatory intervals.
    """

    __slots__ = ("tasks", "deadline", "indicator")

    def __init__(
        self,
        tasks: List[IntervalVar],
        deadline: int,
        indicator: BoolVar,
        name: str = "",
    ) -> None:
        super().__init__(name or f"late({indicator.name})")
        if not tasks:
            raise ValueError("deadline indicator needs at least one task")
        self.tasks = list(tasks)
        self.deadline = int(deadline)
        self.indicator = indicator

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        # The reverse direction only triggers once the indicator is decided.
        yield self.indicator.domain, FIX_EVENT, None
        for iv in self.tasks:
            yield iv.start, MIN_EVENT | MAX_EVENT, None

    def propagate(self, engine: "Engine") -> None:
        d = self.deadline
        completion_min = max(iv.start._min + iv.length for iv in self.tasks)
        completion_max = max(iv.start._max + iv.length for iv in self.tasks)

        if completion_min > d:
            # The job cannot finish on time in any extension of this node.
            self.indicator.set_true(engine)
        if completion_max <= d:
            # The job is on time in every extension.
            self.indicator.set_false(engine)

        if self.indicator.is_fixed:
            if self.indicator.value == 0:
                # On-time: every last-stage task must end by the deadline.
                for iv in self.tasks:
                    iv.set_end_max(d, engine)
            else:
                # Late: at least one task must end after the deadline.
                can_be_late = [iv for iv in self.tasks if iv.lct > d]
                if not can_be_late:
                    raise Infeasible(
                        f"{self.name}: indicator forced true but no task "
                        f"can end after {d}"
                    )
                if len(can_be_late) == 1:
                    can_be_late[0].set_end_min(d + 1, engine)
