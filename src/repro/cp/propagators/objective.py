"""Branch-and-bound cut on the objective ``sum(N_j)``.

The engine carries a (monotonically tightening) ``objective_bound``; this
propagator enforces ``sum(indicators) <= bound``.  Two inferences:

* lower bound of the sum already exceeds the bound -> fail;
* lower bound equals the bound -> every undecided indicator is forced to 0,
  which (through the reified deadline constraints) turns into hard due dates
  for the remaining jobs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.cp.domain import MIN_EVENT
from repro.cp.errors import Infeasible
from repro.cp.propagators.base import Propagator
from repro.cp.variables import BoolVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class SumBoolBoundPropagator(Propagator):
    """``sum(bools) <= engine.objective_bound`` (no-op while bound is None)."""

    __slots__ = ("bools",)

    def __init__(self, bools: List[BoolVar], name: str = "") -> None:
        super().__init__(name or "objective-cut")
        self.bools = list(bools)

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        # The sum's lower bound only moves when an indicator's min rises;
        # fixing one to 0 (a MAX event) can never trigger new inference.
        for b in self.bools:
            yield b.domain, MIN_EVENT, None

    def lower_bound(self) -> int:
        """Current lower bound of the objective under this node's domains."""
        return sum(b.domain.min for b in self.bools)

    def upper_bound(self) -> int:
        """Current upper bound of the objective under this node's domains."""
        return sum(b.domain.max for b in self.bools)

    def propagate(self, engine: "Engine") -> None:
        bound = engine.objective_bound
        if bound is None:
            return
        lb = self.lower_bound()
        if lb > bound:
            raise Infeasible(
                f"{self.name}: objective lower bound {lb} exceeds cut {bound}"
            )
        if lb == bound:
            for b in self.bools:
                if not b.is_fixed:
                    b.set_false(engine)
