"""Precedence propagators.

The MapReduce barrier (Table 1, constraint 3) says every reduce task of a job
starts at or after the completion of the job's latest-finishing map task.
Equivalently, ``map.end <= reduce.start`` for every (map, reduce) pair; the
:class:`BarrierPropagator` enforces bounds consistency on the whole
bipartite structure in O(maps + reduces) per run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class BarrierPropagator(Propagator):
    """All of ``second`` start after all of ``first`` complete (+ ``delay``).

    ``delay`` models a data-transfer/communication gap between the stages
    (zero for the paper's MapReduce barrier, whose shuffle time is folded
    into the task execution times; positive for workflow edges that ship
    intermediate data across the network).

    Intervals on both sides must be mandatory (the paper's master task
    intervals always are; only the per-resource copies are optional).
    """

    __slots__ = ("first", "second", "delay")

    def __init__(
        self,
        first: List[IntervalVar],
        second: List[IntervalVar],
        name: str = "",
        delay: int = 0,
    ) -> None:
        super().__init__(name or "barrier")
        if delay < 0:
            raise ValueError(f"barrier delay must be non-negative, got {delay}")
        self.first = list(first)
        self.second = list(second)
        self.delay = int(delay)

    def watched_domains(self) -> Iterable["IntDomain"]:
        for iv in self.first:
            yield iv.start
        for iv in self.second:
            yield iv.start

    def propagate(self, engine: "Engine") -> None:
        if not self.first or not self.second:
            return
        # Forward: no second-stage task may start before every first-stage
        # task can have completed (plus the transfer delay).
        barrier_min = max(iv.ect for iv in self.first) + self.delay
        for iv in self.second:
            iv.set_start_min(barrier_min, engine)
        # Backward: every first-stage task must be able to complete before
        # the latest moment any second-stage task could still start.
        barrier_max = min(iv.lst for iv in self.second) - self.delay
        for iv in self.first:
            iv.set_end_max(barrier_max, engine)


class EndBeforeStartPropagator(Propagator):
    """Generic pairwise precedence ``a.end + delay <= b.start``."""

    __slots__ = ("a", "b", "delay")

    def __init__(self, a: IntervalVar, b: IntervalVar, delay: int = 0, name: str = "") -> None:
        super().__init__(name or f"{a.name}->{b.name}")
        self.a = a
        self.b = b
        self.delay = int(delay)

    def watched_domains(self) -> Iterable["IntDomain"]:
        yield self.a.start
        yield self.b.start

    def propagate(self, engine: "Engine") -> None:
        self.b.set_start_min(self.a.ect + self.delay, engine)
        self.a.set_end_max(self.b.lst - self.delay, engine)
