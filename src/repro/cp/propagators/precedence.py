"""Precedence propagators.

The MapReduce barrier (Table 1, constraint 3) says every reduce task of a job
starts at or after the completion of the job's latest-finishing map task.
Equivalently, ``map.end <= reduce.start`` for every (map, reduce) pair; the
:class:`BarrierPropagator` enforces bounds consistency on the whole
bipartite structure in O(maps + reduces) per run.

Both propagators subscribe event-typed: the forward pass consumes lower
bounds of the predecessor side (MIN events) and the backward pass upper
bounds of the successor side (MAX events), so e.g. tightening a map task's
*due date* never re-runs the barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.cp.domain import MAX_EVENT, MIN_EVENT
from repro.cp.propagators.base import Propagator
from repro.cp.variables import IntervalVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.domain import IntDomain
    from repro.cp.engine import Engine


class BarrierPropagator(Propagator):
    """All of ``second`` start after all of ``first`` complete (+ ``delay``).

    ``delay`` models a data-transfer/communication gap between the stages
    (zero for the paper's MapReduce barrier, whose shuffle time is folded
    into the task execution times; positive for workflow edges that ship
    intermediate data across the network).

    Intervals on both sides must be mandatory (the paper's master task
    intervals always are; only the per-resource copies are optional).
    """

    __slots__ = ("first", "second", "delay")

    def __init__(
        self,
        first: List[IntervalVar],
        second: List[IntervalVar],
        name: str = "",
        delay: int = 0,
    ) -> None:
        super().__init__(name or "barrier")
        if delay < 0:
            raise ValueError(f"barrier delay must be non-negative, got {delay}")
        self.first = list(first)
        self.second = list(second)
        self.delay = int(delay)

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        for iv in self.first:
            yield iv.start, MIN_EVENT, None
        for iv in self.second:
            yield iv.start, MAX_EVENT, None

    def propagate(self, engine: "Engine") -> None:
        if not self.first or not self.second:
            return
        # Forward: no second-stage task may start before every first-stage
        # task can have completed (plus the transfer delay).
        barrier_min = (
            max(iv.start._min + iv.length for iv in self.first) + self.delay
        )
        for iv in self.second:
            iv.start.set_min(barrier_min, engine)
        # Backward: every first-stage task must be able to complete before
        # the latest moment any second-stage task could still start.
        barrier_max = min(iv.start._max for iv in self.second) - self.delay
        for iv in self.first:
            iv.start.set_max(barrier_max - iv.length, engine)


class EndBeforeStartPropagator(Propagator):
    """Generic pairwise precedence ``a.end + delay <= b.start``."""

    __slots__ = ("a", "b", "delay")

    def __init__(self, a: IntervalVar, b: IntervalVar, delay: int = 0, name: str = "") -> None:
        super().__init__(name or f"{a.name}->{b.name}")
        self.a = a
        self.b = b
        self.delay = int(delay)

    def watches(self) -> Iterable[Tuple["IntDomain", int, object]]:
        yield self.a.start, MIN_EVENT, None
        yield self.b.start, MAX_EVENT, None

    def propagate(self, engine: "Engine") -> None:
        a, b = self.a, self.b
        b.start.set_min(a.start._min + a.length + self.delay, engine)
        a.start.set_max(b.start._max - self.delay - a.length, engine)
