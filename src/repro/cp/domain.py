"""Trailed integer domains with bounds consistency and change events.

Scheduling propagators (cumulative time-tabling, precedences, deadlines)
reason almost exclusively about variable *bounds*, so domains are represented
by a ``[min, max]`` interval rather than a bit-set.  This is the same design
choice CP Optimizer makes for its temporal network.

Every mutation goes through :meth:`IntDomain.set_min` / :meth:`set_max` /
:meth:`fix`, which

1. check for wipe-out and raise :class:`~repro.cp.errors.Infeasible`,
2. save the previous bounds on the engine's trail (once per search node), and
3. wake the propagators subscribed to the *kind* of change that happened.

Change events
-------------
Wake-ups are event-typed so a propagator only re-runs for changes it can
actually use:

* :data:`MIN_EVENT` -- the lower bound increased,
* :data:`MAX_EVENT` -- the upper bound decreased,
* :data:`FIX_EVENT` -- the domain became a singleton (fired *in addition to*
  the bound event that caused it; subscribe to FIX alone for presence/boolean
  literals whose intermediate bound moves are irrelevant).

Subscriptions are ``(propagator, token)`` pairs held in per-event lists
(:attr:`IntDomain.on_min` / :attr:`on_max` / :attr:`on_fix`).  A non-``None``
token is added to the propagator's dirty set on every wake -- including
self-inflicted ones -- which is how :class:`CumulativePropagator` learns
*which* intervals changed without rescanning all of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cp.errors import Infeasible

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cp.engine import Engine
    from repro.cp.propagators.base import Propagator

#: Lower bound increased.
MIN_EVENT = 1
#: Upper bound decreased.
MAX_EVENT = 2
#: Domain became a singleton (fired in addition to the MIN/MAX event).
FIX_EVENT = 4
#: Convenience mask: subscribe to every event kind.
ANY_EVENT = MIN_EVENT | MAX_EVENT | FIX_EVENT


class IntDomain:
    """A backtrackable integer interval ``[min, max]``."""

    __slots__ = ("_min", "_max", "_stamp", "on_min", "on_max", "on_fix", "name")

    def __init__(self, lo: int, hi: int, name: str = "") -> None:
        if lo > hi:
            raise Infeasible(f"empty initial domain [{lo}, {hi}] for {name!r}")
        self._min = int(lo)
        self._max = int(hi)
        self._stamp = 0
        # The three per-event subscription lists are created lazily by
        # :meth:`watch` -- models build thousands of domains and most carry
        # only one or two subscriptions, so eagerly allocating three lists
        # per domain dominated model-build time.
        #: ``(propagator, token)`` pairs woken when the lower bound rises.
        self.on_min: Optional[List[Tuple["Propagator", object]]] = None
        #: ``(propagator, token)`` pairs woken when the upper bound drops.
        self.on_max: Optional[List[Tuple["Propagator", object]]] = None
        #: ``(propagator, token)`` pairs woken when the domain becomes fixed.
        self.on_fix: Optional[List[Tuple["Propagator", object]]] = None
        self.name = name

    # ------------------------------------------------------------------ read
    @property
    def min(self) -> int:
        return self._min

    @property
    def max(self) -> int:
        return self._max

    @property
    def is_fixed(self) -> bool:
        return self._min == self._max

    @property
    def value(self) -> int:
        """The assigned value; only valid when :attr:`is_fixed` is true."""
        if self._min != self._max:
            raise ValueError(f"domain {self!r} is not fixed")
        return self._min

    @property
    def size(self) -> int:
        return self._max - self._min + 1

    def contains(self, v: int) -> bool:
        """Whether ``v`` lies within the current bounds."""
        return self._min <= v <= self._max

    # ---------------------------------------------------------- subscription
    def watch(
        self,
        prop: "Propagator",
        events: int = ANY_EVENT,
        token: object = None,
    ) -> None:
        """Subscribe ``prop`` to the event kinds in the ``events`` mask.

        ``token`` (when not ``None``) is added to ``prop._dirty`` on every
        wake from this domain, letting incremental propagators map the wake
        back to the model object that changed.
        """
        entry = (prop, token)
        if events & MIN_EVENT:
            if self.on_min is None:
                self.on_min = []
            self.on_min.append(entry)
        if events & MAX_EVENT:
            if self.on_max is None:
                self.on_max = []
            self.on_max.append(entry)
        if events & FIX_EVENT:
            if self.on_fix is None:
                self.on_fix = []
            self.on_fix.append(entry)

    def watcher_entries(self) -> List[Tuple["Propagator", object]]:
        """All subscriptions across the three event lists (for tests/debug)."""
        seen: List[Tuple["Propagator", object]] = []
        for lst in (self.on_min, self.on_max, self.on_fix):
            for entry in lst or ():
                if entry not in seen:
                    seen.append(entry)
        return seen

    # ----------------------------------------------------------------- write
    def _save(self, engine: "Engine") -> None:
        trail = engine.trail
        if self._stamp != trail.magic:
            trail.record(self, (self._min, self._max))
            self._stamp = trail.magic

    def _restore(self, state: Tuple[int, int]) -> None:
        self._min, self._max = state
        self._stamp = 0

    def set_min(self, v: int, engine: "Engine") -> bool:
        """Raise the lower bound to ``v``.  Returns True if the bound moved."""
        if v <= self._min:
            return False
        if v > self._max:
            raise Infeasible(
                f"{self.name or 'domain'}: min {v} exceeds max {self._max}"
            )
        self._save(engine)
        self._min = v
        if self.on_min:
            engine.wake(self.on_min, MIN_EVENT)
        if v == self._max and self.on_fix:
            engine.wake(self.on_fix, FIX_EVENT)
        return True

    def set_max(self, v: int, engine: "Engine") -> bool:
        """Lower the upper bound to ``v``.  Returns True if the bound moved."""
        if v >= self._max:
            return False
        if v < self._min:
            raise Infeasible(
                f"{self.name or 'domain'}: max {v} below min {self._min}"
            )
        self._save(engine)
        self._max = v
        if self.on_max:
            engine.wake(self.on_max, MAX_EVENT)
        if v == self._min and self.on_fix:
            engine.wake(self.on_fix, FIX_EVENT)
        return True

    def fix(self, v: int, engine: "Engine") -> bool:
        """Assign the domain to the single value ``v``."""
        moved = self.set_min(v, engine)
        moved |= self.set_max(v, engine)
        return moved

    def __repr__(self) -> str:
        tag = self.name or "dom"
        if self.is_fixed:
            return f"{tag}={self._min}"
        return f"{tag}∈[{self._min},{self._max}]"
