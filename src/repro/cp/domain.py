"""Trailed integer domains with bounds consistency.

Scheduling propagators (cumulative time-tabling, precedences, deadlines)
reason almost exclusively about variable *bounds*, so domains are represented
by a ``[min, max]`` interval rather than a bit-set.  This is the same design
choice CP Optimizer makes for its temporal network.

Every mutation goes through :meth:`IntDomain.set_min` / :meth:`set_max` /
:meth:`fix`, which

1. check for wipe-out and raise :class:`~repro.cp.errors.Infeasible`,
2. save the previous bounds on the engine's trail (once per search node), and
3. wake the propagators watching the domain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.cp.errors import Infeasible

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cp.engine import Engine
    from repro.cp.propagators.base import Propagator


class IntDomain:
    """A backtrackable integer interval ``[min, max]``."""

    __slots__ = ("_min", "_max", "_stamp", "watchers", "name")

    def __init__(self, lo: int, hi: int, name: str = "") -> None:
        if lo > hi:
            raise Infeasible(f"empty initial domain [{lo}, {hi}] for {name!r}")
        self._min = int(lo)
        self._max = int(hi)
        self._stamp = 0
        #: Propagators woken whenever either bound moves.
        self.watchers: List["Propagator"] = []
        self.name = name

    # ------------------------------------------------------------------ read
    @property
    def min(self) -> int:
        return self._min

    @property
    def max(self) -> int:
        return self._max

    @property
    def is_fixed(self) -> bool:
        return self._min == self._max

    @property
    def value(self) -> int:
        """The assigned value; only valid when :attr:`is_fixed` is true."""
        if self._min != self._max:
            raise ValueError(f"domain {self!r} is not fixed")
        return self._min

    @property
    def size(self) -> int:
        return self._max - self._min + 1

    def contains(self, v: int) -> bool:
        """Whether ``v`` lies within the current bounds."""
        return self._min <= v <= self._max

    # ----------------------------------------------------------------- write
    def _save(self, engine: "Engine") -> None:
        trail = engine.trail
        if self._stamp != trail.magic:
            trail.record(self, (self._min, self._max))
            self._stamp = trail.magic

    def _restore(self, state: Tuple[int, int]) -> None:
        self._min, self._max = state
        self._stamp = 0

    def set_min(self, v: int, engine: "Engine") -> bool:
        """Raise the lower bound to ``v``.  Returns True if the bound moved."""
        if v <= self._min:
            return False
        if v > self._max:
            raise Infeasible(
                f"{self.name or 'domain'}: min {v} exceeds max {self._max}"
            )
        self._save(engine)
        self._min = v
        engine.wake(self.watchers)
        return True

    def set_max(self, v: int, engine: "Engine") -> bool:
        """Lower the upper bound to ``v``.  Returns True if the bound moved."""
        if v >= self._max:
            return False
        if v < self._min:
            raise Infeasible(
                f"{self.name or 'domain'}: max {v} below min {self._min}"
            )
        self._save(engine)
        self._max = v
        engine.wake(self.watchers)
        return True

    def fix(self, v: int, engine: "Engine") -> bool:
        """Assign the domain to the single value ``v``."""
        moved = self.set_min(v, engine)
        moved |= self.set_max(v, engine)
        return moved

    def __repr__(self) -> str:
        tag = self.name or "dom"
        if self.is_fixed:
            return f"{tag}={self._min}"
        return f"{tag}∈[{self._min},{self._max}]"
