"""Depth-first branch-and-bound tree search.

The branching rule is *schedule-or-postpone* ("set times"): pick the unfixed
present interval with the smallest earliest start time; the left branch fixes
it there, the right branch pushes its earliest start later.  Two right-branch
policies are provided:

* ``jump`` (default): push the start to the next *interesting* time -- the
  smallest earliest-completion-time of another interval beyond the current
  est.  This exploits the classical active-schedule dominance (for regular
  objectives some optimal schedule starts every task at a release date or at
  another task's completion) and is what makes the search usable on real
  instances.
* ``complete``: push the start by one time unit.  Exhaustive over the integer
  horizon; used by the test-suite to prove optimality against brute force.

A search that exhausts the tree under ``jump`` reports its incumbent as
optimal only when the incumbent is 0 (trivially optimal) -- the solver never
claims proven optimality from a dominance-pruned tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.model import CpModel
from repro.cp.solution import SearchStats, Solution
from repro.cp.variables import IntervalVar

#: A decision is (apply_left, apply_right); each mutates engine state and may
#: raise Infeasible.
Decision = Tuple[Callable[[Engine], None], Callable[[Engine], None]]


def luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    The universal strategy for randomised/restarted search: within a
    constant factor of the optimal restart schedule without knowing the
    runtime distribution.
    """
    if i < 1:
        raise ValueError("luby sequence is 1-indexed")
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if (1 << k) - 1 == i:
        return 1 << (k - 1)
    return luby(i - (1 << (k - 1)) + 1)


@dataclass
class SearchLimits:
    """Budget for one tree-search run."""

    deadline: Optional[float] = None  # absolute perf_counter() time
    fail_limit: Optional[int] = None
    branch_limit: Optional[int] = None

    @staticmethod
    def from_budget(
        time_budget: Optional[float] = None,
        fail_limit: Optional[int] = None,
        branch_limit: Optional[int] = None,
    ) -> "SearchLimits":
        deadline = None if time_budget is None else time.perf_counter() + time_budget
        return SearchLimits(deadline, fail_limit, branch_limit)

    def exceeded(self, stats: SearchStats) -> bool:
        """Whether any budget (fails, branches, wall time) is spent."""
        if self.fail_limit is not None and stats.fails >= self.fail_limit:
            return True
        if self.branch_limit is not None and stats.branches >= self.branch_limit:
            return True
        if self.deadline is not None and (stats.branches & 0x3F) == 0:
            if time.perf_counter() >= self.deadline:
                return True
        return False

    def hard_time_exceeded(self) -> bool:
        """Whether the wall-clock deadline specifically has passed."""
        return self.deadline is not None and time.perf_counter() >= self.deadline


class SetTimesBrancher:
    """Presence decisions first, then schedule-or-postpone on start times."""

    def __init__(self, model: CpModel, jump: bool = True) -> None:
        self.model = model
        self.jump = jump
        #: Cached per-interval scan tuples (the interval set is frozen once
        #: the model compiles; re-deriving domains/lengths through property
        #: chains on every decision dominated ``choose`` time).
        self._scan: Optional[
            List[Tuple[object, int, Optional[object], IntervalVar]]
        ] = None

    @property
    def complete(self) -> bool:
        """Whether exhausting the tree proves optimality."""
        return not self.jump

    # ------------------------------------------------------------ decisions
    def choose(self, engine: Engine) -> Optional[Decision]:
        """Next decision: a presence choice first, then schedule-or-postpone; None when the assignment is complete."""
        decision = self._choose_presence(engine)
        if decision is not None:
            return decision
        return self._choose_start(engine)

    def _choose_presence(self, engine: Engine) -> Optional[Decision]:
        best_alt = None
        best_key = None
        for alt in self.model.alternatives:
            if any(o.is_present for o in alt.options):
                continue
            key = (alt.master.est, alt.master.lst - alt.master.est)
            if best_key is None or key < best_key:
                best_key = key
                best_alt = alt
        if best_alt is None:
            return None
        possible = [o for o in best_alt.options if not o.is_absent]
        # The alternative propagator guarantees len(possible) >= 2 here
        # (a single possible option would already have been made present).
        option = min(possible, key=lambda o: (o.est, -(o.lst - o.est)))

        def left(eng: Engine, opt: IntervalVar = option) -> None:
            opt.set_present(eng)

        def right(eng: Engine, opt: IntervalVar = option) -> None:
            opt.set_absent(eng)

        return left, right

    def _scan_tuples(
        self,
    ) -> List[Tuple[object, int, Optional[object], IntervalVar]]:
        scan = self._scan
        if scan is None:
            scan = self._scan = [
                (
                    iv.start,
                    iv.length,
                    iv.presence.domain if iv.presence is not None else None,
                    iv,
                )
                for iv in self.model.intervals
            ]
        return scan

    def _choose_start(self, engine: Engine) -> Optional[Decision]:
        scan = self._scan_tuples()
        chosen: Optional[IntervalVar] = None
        # Selection key is (min, window span, max+length), smallest wins,
        # first-seen kept on ties; compared field-by-field to avoid a tuple
        # allocation per scanned interval on this per-decision hot path.
        c_mn = c_span = c_end = 0
        for start, length, _pres, iv in scan:
            mn = start._min  # type: ignore[attr-defined]
            mx = start._max  # type: ignore[attr-defined]
            if mn == mx:
                continue
            if chosen is not None:
                if mn > c_mn:
                    continue
                if mn == c_mn:
                    span = mx - mn
                    if span > c_span or (
                        span == c_span and mx + length >= c_end
                    ):
                        continue
            chosen = iv
            c_mn = mn
            c_span = mx - mn
            c_end = mx + length
        if chosen is None:
            return None
        est = c_mn
        if self.jump:
            nxt = est + 1
            best_jump = None
            for start, length, pres, other in scan:
                if other is chosen:
                    continue
                if pres is not None and pres._max == 0:  # type: ignore[attr-defined]
                    # An absent interval's ect is meaningless; jumping to it
                    # could push the postpone branch past feasible starts.
                    continue
                ect = start._min + length  # type: ignore[attr-defined]
                if ect > est and (best_jump is None or ect < best_jump):
                    best_jump = ect
            if best_jump is not None:
                nxt = max(nxt, best_jump)
        else:
            nxt = est + 1

        def left(eng: Engine, iv: IntervalVar = chosen, s: int = est) -> None:
            iv.fix_start(s, eng)

        def right(eng: Engine, iv: IntervalVar = chosen, s: int = nxt) -> None:
            iv.set_start_min(s, eng)  # raises Infeasible when s > lst

        return left, right


@dataclass
class TreeSearchResult:
    best: Optional[Solution]
    exhausted: bool
    stats: SearchStats = field(default_factory=SearchStats)


def extract_solution(model: CpModel, objective: Optional[int] = None) -> Solution:
    """Read a complete assignment off the (fully fixed) engine state."""
    starts = {iv: iv.start.value for iv in model.intervals}
    choices = {}
    for alt in model.alternatives:
        for o in alt.options:
            if o.is_present:
                choices[alt.master] = o
                break
    sol = Solution(starts=starts, choices=choices, objective=objective)
    if objective is None and model.objective_bools is not None:
        sol.objective = sol.evaluate_objective(model)
    return sol


def tree_search(
    model: CpModel,
    engine: Engine,
    brancher: SetTimesBrancher,
    limits: SearchLimits,
    incumbent: Optional[Solution] = None,
    first_solution_only: bool = False,
) -> TreeSearchResult:
    """Run DFS branch-and-bound from the engine's *current* state.

    The caller must have reset the engine and applied any pins; this function
    performs the root propagation itself.  ``incumbent`` (if given) seeds the
    objective bound; strictly better solutions are searched for.
    """
    stats = SearchStats()
    t0 = time.perf_counter()
    prop0 = engine.propagation_count
    best = incumbent
    has_objective = model.objective_bools is not None

    if best is not None and best.objective is not None:
        engine.on_bound_tightened(best.objective - 1)

    try:
        engine.propagate()
    except Infeasible:
        stats.fails += 1
        # Same sane root state as the normal exit below: a subsequent solve
        # on the shared engine must not observe half-propagated infeasible
        # domains.
        engine.trail.pop_all()
        engine.trail.push_level()
        engine.clear_queue()
        stats.wall_time = time.perf_counter() - t0
        stats.propagations = engine.propagation_count - prop0
        return TreeSearchResult(best, exhausted=True, stats=stats)

    # Each stack entry is the pending right branch for the open level
    # (None once the right branch has been taken).
    stack: List[Optional[Callable[[Engine], None]]] = []
    exhausted = False

    def backtrack() -> bool:
        """Undo levels until a pending right branch applies cleanly."""
        while stack:
            engine.trail.pop_level()
            engine.clear_queue()
            right = stack.pop()
            if right is None:
                continue
            engine.trail.push_level()
            stack.append(None)
            try:
                right(engine)
                if engine.objective_propagator is not None:
                    # Re-arm the bound cut: it may have tightened since this
                    # subtree's last propagation and is not domain-triggered.
                    engine.schedule(engine.objective_propagator)
                engine.propagate()
                return True
            except Infeasible:
                stats.fails += 1
                continue
        return False

    while True:
        if limits.exceeded(stats):
            break
        decision = brancher.choose(engine)
        if decision is None:
            # Complete assignment at this node.
            stats.solutions += 1
            obj = None
            sol = extract_solution(model)
            if has_objective:
                obj = sol.objective
                assert obj is not None
                if best is None or best.objective is None or obj < best.objective:
                    best = sol
                    engine.on_bound_tightened(obj - 1)
                if obj == 0 or first_solution_only:
                    break
            else:
                best = sol
                break
            if not backtrack():
                exhausted = True
                break
            continue

        left, right = decision
        stats.branches += 1
        engine.trail.push_level()
        stack.append(right)
        try:
            left(engine)
            engine.propagate()
        except Infeasible:
            stats.fails += 1
            # Retract the failed left branch, try the pending right branch.
            if not backtrack():
                exhausted = True
                break

    # Leave the engine in a sane (root) state for the caller.
    engine.trail.pop_all()
    engine.trail.push_level()
    engine.clear_queue()

    stats.wall_time = time.perf_counter() - t0
    stats.propagations = engine.propagation_count - prop0
    return TreeSearchResult(best, exhausted=exhausted, stats=stats)


def restarted_tree_search(
    model: CpModel,
    engine: Engine,
    brancher: SetTimesBrancher,
    time_budget: float,
    base_fail_limit: int = 100,
    incumbent: Optional[Solution] = None,
) -> TreeSearchResult:
    """Luby-restarted branch-and-bound (CP Optimizer's default discipline).

    Episode *i* runs a fresh dive with fail limit ``luby(i) *
    base_fail_limit``; the incumbent (and hence the objective bound)
    carries across episodes.  Stops on tree exhaustion achieved *within*
    an episode's fail budget (a genuine completeness signal), on reaching
    objective 0, or when the time budget is spent.
    """
    deadline = time.perf_counter() + time_budget
    total = SearchStats()
    best = incumbent
    exhausted = False
    episode = 0
    while time.perf_counter() < deadline:
        episode += 1
        fail_limit = luby(episode) * base_fail_limit
        remaining = deadline - time.perf_counter()
        limits = SearchLimits.from_budget(
            time_budget=remaining, fail_limit=fail_limit
        )
        engine.reset()
        result = tree_search(model, engine, brancher, limits, incumbent=best)
        total.merge(result.stats)
        if result.best is not None:
            best = result.best
        if result.exhausted and result.stats.fails < fail_limit:
            exhausted = True  # exhausted the tree, not the fail budget
            break
        if best is not None and (
            best.objective == 0 or model.objective_bools is None
        ):
            break  # optimal, or pure feasibility: any solution suffices
    return TreeSearchResult(best, exhausted=exhausted, stats=total)
