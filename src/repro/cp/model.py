"""User-facing CP model builder.

A :class:`CpModel` is a declarative specification: intervals, cumulative
capacities, barriers, alternatives and deadline indicators.  It compiles into
a :class:`~repro.cp.engine.Engine` exactly once; the engine can be rewound
and re-used by the solver's phases (warm start, branch-and-bound, LNS).

Beyond the raw constraint API the model tracks *groups* -- sets of intervals
that belong to one job -- because both the warm-start list scheduler and the
LNS relaxation operate job-wise, as MRCP-RM does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cp.engine import Engine
from repro.cp.errors import ModelError
from repro.cp.propagators import (
    AlternativePropagator,
    BarrierPropagator,
    CumulativePropagator,
    DeadlineIndicatorPropagator,
    EndBeforeStartPropagator,
    SumBoolBoundPropagator,
)
from repro.cp.variables import BoolVar, IntervalVar

DEFAULT_HORIZON = 10**7


@dataclass
class CumulativeSpec:
    """One ``cumulative`` constraint: intervals/demands under a capacity."""

    intervals: List[IntervalVar]
    demands: List[int]
    capacity: int
    name: str = ""


@dataclass
class BarrierSpec:
    """All of ``first`` complete (+ ``delay``) before any of ``second`` starts."""

    first: List[IntervalVar]
    second: List[IntervalVar]
    name: str = ""
    delay: int = 0


@dataclass
class PrecedenceSpec:
    """``a.end + delay <= b.start``."""

    a: IntervalVar
    b: IntervalVar
    delay: int = 0


@dataclass
class AlternativeSpec:
    """Master interval realised by exactly one of the optional ``options``."""

    master: IntervalVar
    options: List[IntervalVar]
    name: str = ""


@dataclass
class IndicatorSpec:
    """Reified lateness: ``indicator = (max end of tasks) > deadline``."""

    tasks: List[IntervalVar]
    deadline: int
    indicator: BoolVar
    name: str = ""


@dataclass
class Group:
    """A job-shaped bundle of intervals, used by heuristics and LNS.

    ``stages`` holds the job's execution stages in *topological order*;
    ``stage_preds[i]`` lists the indices of the stages that must complete
    before stage ``i`` may start.  A classic MapReduce job is the two-stage
    chain ``stages=[maps, reduces], stage_preds=[[], [0]]``; the workflow
    generalisation (paper Section VII future work) allows arbitrary DAGs.

    ``release`` is the earliest start, ``deadline`` the SLA deadline
    (None = best effort).
    """

    name: str
    stages: List[List[IntervalVar]]
    stage_preds: List[List[int]]
    release: int = 0
    deadline: Optional[int] = None
    indicator: Optional[BoolVar] = None
    #: Per-predecessor data-transfer delays, aligned with ``stage_preds``
    #: (None = all zero).
    stage_pred_delays: Optional[List[List[int]]] = None

    def __post_init__(self) -> None:
        if len(self.stages) != len(self.stage_preds):
            raise ModelError(
                f"group {self.name}: {len(self.stages)} stages but "
                f"{len(self.stage_preds)} predecessor lists"
            )
        for i, preds in enumerate(self.stage_preds):
            for p in preds:
                if not 0 <= p < i:
                    raise ModelError(
                        f"group {self.name}: stage {i} lists predecessor {p}; "
                        "stages must be given in topological order"
                    )
        if self.stage_pred_delays is None:
            self.stage_pred_delays = [
                [0] * len(preds) for preds in self.stage_preds
            ]
        elif [len(d) for d in self.stage_pred_delays] != [
            len(p) for p in self.stage_preds
        ]:
            raise ModelError(
                f"group {self.name}: stage_pred_delays shape mismatch"
            )

    # Two-stage accessors kept for the MapReduce-shaped call sites.
    @property
    def first_stage(self) -> List[IntervalVar]:
        return self.stages[0] if self.stages else []

    @property
    def second_stage(self) -> List[IntervalVar]:
        return self.stages[1] if len(self.stages) > 1 else []

    @property
    def intervals(self) -> List[IntervalVar]:
        return [iv for stage in self.stages for iv in stage]

    @property
    def total_length(self) -> int:
        return sum(iv.length for iv in self.intervals)

    def laxity(self) -> float:
        """Slack of the group: deadline - release - total work (paper VI.B)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - self.release - self.total_length


class CpModel:
    """Builder for cumulative scheduling models with SLA indicators."""

    def __init__(
        self, horizon: int = DEFAULT_HORIZON, energetic_reasoning: bool = False
    ) -> None:
        if horizon <= 0:
            raise ModelError(f"horizon must be positive, got {horizon}")
        self.horizon = int(horizon)
        #: Register the O(n^3) energetic overload check alongside each
        #: cumulative (stronger pruning for contended instances).
        self.energetic_reasoning = bool(energetic_reasoning)
        self.intervals: List[IntervalVar] = []
        self.optionals: List[IntervalVar] = []
        self.cumulatives: List[CumulativeSpec] = []
        self.barriers: List[BarrierSpec] = []
        self.precedences: List[PrecedenceSpec] = []
        self.alternatives: List[AlternativeSpec] = []
        self.indicators: List[IndicatorSpec] = []
        self.groups: List[Group] = []
        self.objective_bools: Optional[List[BoolVar]] = None
        #: Pristine start windows, captured at compile time; the checker
        #: validates solutions against these (domains mutate during search).
        self.original_windows: Dict[IntervalVar, tuple] = {}
        self._engine: Optional[Engine] = None
        self._names: Dict[str, int] = {}

    # -------------------------------------------------------------- helpers
    def _unique(self, name: str, prefix: str) -> str:
        if not name:
            name = f"{prefix}{len(self.intervals) + len(self.optionals)}"
        n = self._names.get(name, 0)
        self._names[name] = n + 1
        return name if n == 0 else f"{name}#{n}"

    def _check_sealed(self) -> None:
        if self._engine is not None:
            raise ModelError("model already compiled; create a new CpModel")

    # ------------------------------------------------------------ variables
    def interval_var(
        self,
        length: int,
        est: int = 0,
        lst: Optional[int] = None,
        name: str = "",
        optional: bool = False,
        demand: int = 1,
        payload: object = None,
    ) -> IntervalVar:
        """Create a task interval.

        ``est``/``lst`` bound the start window; ``lst`` defaults to the model
        horizon minus the task length.  ``optional=True`` creates a resource
        copy for use inside :meth:`add_alternative`.
        """
        if self._engine is not None:
            self._check_sealed()
        if lst is None:
            lst = self.horizon - length
        if lst < est:
            raise ModelError(
                f"interval {name!r}: start window [{est}, {lst}] is empty "
                f"(horizon {self.horizon} too small?)"
            )
        iv = IntervalVar(
            est,
            lst,
            length,
            name=self._unique(name, "iv"),
            optional=optional,
            demand=demand,
            payload=payload,
        )
        (self.optionals if optional else self.intervals).append(iv)
        return iv

    def fixed_interval(
        self,
        start: int,
        length: int,
        name: str = "",
        demand: int = 1,
        payload: object = None,
    ) -> IntervalVar:
        """A frozen task: already dispatched, occupying ``[start, start+len)``.

        This is how MRCP-RM encodes tasks that have started executing (Table
        2, line 11): the interval participates in the cumulative profile but
        the solver cannot move it.
        """
        return self.interval_var(
            length, est=start, lst=start, name=name, demand=demand, payload=payload
        )

    # ----------------------------------------------------------- constraints
    def add_cumulative(
        self,
        intervals: Sequence[IntervalVar],
        capacity: int,
        demands: Optional[Sequence[int]] = None,
        name: str = "",
    ) -> CumulativeSpec:
        """Capacity constraint (Table 1, constraints 5/6): the summed demand of overlapping intervals never exceeds ``capacity``."""
        self._check_sealed()
        ivs = list(intervals)
        if demands is None:
            demands = [iv.demand for iv in ivs]
        demands = [int(d) for d in demands]
        if len(demands) != len(ivs):
            raise ModelError("demands must match intervals")
        if capacity < 0:
            raise ModelError(f"negative capacity {capacity}")
        for iv, d in zip(ivs, demands):
            if d > capacity and iv.length > 0:
                if not iv.is_optional:
                    raise ModelError(
                        f"interval {iv.name}: demand {d} can never fit "
                        f"capacity {capacity}"
                    )
        spec = CumulativeSpec(ivs, demands, int(capacity), name or f"cum{len(self.cumulatives)}")
        self.cumulatives.append(spec)
        return spec

    def add_barrier(
        self,
        first: Sequence[IntervalVar],
        second: Sequence[IntervalVar],
        name: str = "",
        delay: int = 0,
    ) -> Optional[BarrierSpec]:
        """Map/reduce barrier: constraint (3) of the paper's formulation.

        ``delay`` inserts a data-transfer gap between the stages (workflow
        edges with communication costs); 0 for the classic barrier.
        """
        self._check_sealed()
        if not first or not second:
            return None
        if delay < 0:
            raise ModelError(f"barrier delay must be non-negative, got {delay}")
        spec = BarrierSpec(list(first), list(second), name, int(delay))
        self.barriers.append(spec)
        return spec

    def add_end_before_start(
        self, a: IntervalVar, b: IntervalVar, delay: int = 0
    ) -> PrecedenceSpec:
        """Generic pairwise precedence ``a.end + delay <= b.start``."""
        self._check_sealed()
        spec = PrecedenceSpec(a, b, int(delay))
        self.precedences.append(spec)
        return spec

    def add_alternative(
        self,
        master: IntervalVar,
        options: Sequence[IntervalVar],
        name: str = "",
    ) -> AlternativeSpec:
        """Constraint (1): the master runs as exactly one of the options."""
        self._check_sealed()
        spec = AlternativeSpec(master, list(options), name or f"alt({master.name})")
        self.alternatives.append(spec)
        return spec

    def add_deadline_indicator(
        self,
        tasks: Sequence[IntervalVar],
        deadline: int,
        name: str = "",
    ) -> BoolVar:
        """Constraint (4): a boolean that is 1 iff the job finishes late."""
        self._check_sealed()
        if not tasks:
            raise ModelError("deadline indicator needs at least one task")
        indicator = BoolVar(name=self._unique(name or "late", "late"))
        spec = IndicatorSpec(list(tasks), int(deadline), indicator, indicator.name)
        self.indicators.append(spec)
        return indicator

    def add_group(
        self,
        name: str,
        first_stage: Sequence[IntervalVar],
        second_stage: Sequence[IntervalVar] = (),
        release: int = 0,
        deadline: Optional[int] = None,
        indicator: Optional[BoolVar] = None,
    ) -> Group:
        """Declare a MapReduce-shaped job grouping (map stage, reduce stage)."""
        stages: List[List[IntervalVar]] = [list(first_stage)]
        preds: List[List[int]] = [[]]
        if second_stage:
            stages.append(list(second_stage))
            preds.append([0])
        return self.add_staged_group(
            name, stages, preds, release=release, deadline=deadline,
            indicator=indicator,
        )

    def add_staged_group(
        self,
        name: str,
        stages: Sequence[Sequence[IntervalVar]],
        stage_preds: Sequence[Sequence[int]],
        release: int = 0,
        deadline: Optional[int] = None,
        indicator: Optional[BoolVar] = None,
        stage_pred_delays: Optional[Sequence[Sequence[int]]] = None,
    ) -> Group:
        """Declare a workflow grouping: stages in topological order with
        per-stage predecessor indices (used by warm starts and LNS)."""
        self._check_sealed()
        group = Group(
            name=name,
            stages=[list(s) for s in stages],
            stage_preds=[list(p) for p in stage_preds],
            release=int(release),
            deadline=None if deadline is None else int(deadline),
            indicator=indicator,
            stage_pred_delays=(
                None
                if stage_pred_delays is None
                else [list(d) for d in stage_pred_delays]
            ),
        )
        self.groups.append(group)
        return group

    def minimize_sum(self, bools: Sequence[BoolVar]) -> None:
        """Objective: minimise the number of true indicators (late jobs)."""
        self._check_sealed()
        self.objective_bools = list(bools)

    # -------------------------------------------------------------- compile
    @property
    def all_intervals(self) -> List[IntervalVar]:
        return self.intervals + self.optionals

    def engine(self) -> Engine:
        """Compile (once) and return the propagation engine."""
        if self._engine is not None:
            return self._engine
        self.original_windows = {
            iv: (iv.start._min, iv.start._max) for iv in self.all_intervals
        }
        eng = Engine()
        for b in self.barriers:
            eng.register(BarrierPropagator(b.first, b.second, b.name, b.delay))
        for p in self.precedences:
            eng.register(EndBeforeStartPropagator(p.a, p.b, p.delay))
        for a in self.alternatives:
            eng.register(AlternativePropagator(a.master, a.options, a.name))
        for ind in self.indicators:
            eng.register(
                DeadlineIndicatorPropagator(
                    ind.tasks, ind.deadline, ind.indicator, ind.name
                )
            )
        if self.objective_bools is not None:
            obj = SumBoolBoundPropagator(self.objective_bools)
            eng.register(obj)
            eng.objective_propagator = obj
        for c in self.cumulatives:
            eng.register(
                CumulativePropagator(c.intervals, c.demands, c.capacity, c.name)
            )
            if self.energetic_reasoning:
                from repro.cp.propagators.energetic import (
                    EnergeticReasoningPropagator,
                )

                eng.register(
                    EnergeticReasoningPropagator(
                        c.intervals,
                        c.demands,
                        c.capacity,
                        name=f"energy({c.name})",
                    )
                )
        eng.seal()
        self._engine = eng
        return eng

    # ------------------------------------------------------------ reporting
    def stats(self) -> Dict[str, int]:
        """Model size summary (useful for logging solver overhead studies)."""
        return {
            "intervals": len(self.intervals),
            "optional_intervals": len(self.optionals),
            "cumulatives": len(self.cumulatives),
            "barriers": len(self.barriers),
            "alternatives": len(self.alternatives),
            "indicators": len(self.indicators),
            "groups": len(self.groups),
        }
