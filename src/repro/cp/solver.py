"""Solver facade: warm start -> branch-and-bound -> LNS under one budget.

This mirrors how MRCP-RM drives CP Optimizer (Table 2, lines 19-24): build
the model, solve it with the engine's default search, extract the decision
variables, and treat "no solution" as an exceptional condition.  The phases:

1. **Root propagation.**  An immediate wipe-out means the frozen-task
   constraints are inconsistent with the windows -> ``INFEASIBLE``.
2. **Warm start.**  EDF / least-laxity / input-order list schedules; the best
   becomes the incumbent.  Zero late jobs is provably optimal (the objective
   is bounded below by 0), so the solver returns straight away -- this is the
   common case in the paper's experiments, where P stays under a few percent.
3. **Tree search.**  Fail-limited schedule-or-postpone branch-and-bound
   pushing the incumbent down.
4. **LNS.**  Remaining time is spent relaxing late jobs plus their temporal
   neighbours and re-solving.

Observability: each phase is timed into :class:`SearchStats`
(``propagate_time`` / ``warm_start_time`` / ``tree_time`` / ``lns_time``)
and, when a :class:`~repro.obs.trace.Tracer` is attached, emitted as a span
(``cp.propagate`` / ``cp.warm_start`` / ``cp.search`` / ``cp.lns``; phases
the solve never entered appear as zero-duration spans marked ``skipped``).
With profiling on (``SolverParams.profile`` or an enabled tracer) the
returned :class:`~repro.cp.solution.SolveResult` carries a
:class:`~repro.cp.solution.SolveProfile` with per-propagator-class effort
counters and warm-start vs. improvement attribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cp.checker import check_solution
from repro.cp.errors import Infeasible
from repro.cp.heuristics import ORDERINGS, best_warm_start, list_schedule
from repro.cp.instrument import EngineProfile
from repro.cp.lns import LnsParams, lns_improve
from repro.cp.model import CpModel
from repro.cp.search import (
    SearchLimits,
    SetTimesBrancher,
    restarted_tree_search,
    tree_search,
)
from repro.cp.solution import (
    SearchStats,
    SolveProfile,
    SolveResult,
    SolveStatus,
)
from repro.obs.trace import NULL_TRACER, Tracer

#: Phase span names emitted per solve (skipped phases become zero spans).
PHASE_SPANS = ("cp.propagate", "cp.warm_start", "cp.search", "cp.lns")


@dataclass
class SolverParams:
    """Tunable knobs, all with sensible defaults for MRCP-RM-sized models."""

    #: Wall-clock budget for the whole solve (seconds).
    time_limit: float = 5.0
    #: Fail limit for the dedicated tree-search phase (None = unlimited).
    tree_fail_limit: Optional[int] = 2000
    #: Fraction of the remaining budget given to the tree-search phase.
    tree_time_share: float = 0.4
    #: When set, the tree phase runs Luby-restarted episodes with this base
    #: fail limit instead of one fail-limited dive (CP Optimizer style).
    restart_base_fail_limit: Optional[int] = None
    #: Warm-start orderings to try, in order.
    warm_start_orders: Sequence[str] = ORDERINGS
    #: Right-branch policy: True = jump to the next interesting time
    #: (fast, dominance-based), False = exhaustive unit steps.
    jump_branching: bool = True
    #: Enable the LNS improvement phase.
    use_lns: bool = True
    lns: LnsParams = field(default_factory=LnsParams)
    #: Validate every candidate solution against the declarative checker.
    validate: bool = True
    #: Print a one-line trace per solve phase (warm start, tree, LNS).
    log: bool = False
    #: Collect per-propagator-class counters and a :class:`SolveProfile`
    #: even without a tracer attached (a tracer implies profiling).
    profile: bool = False
    seed: int = 0


class CpSolver:
    """Solves a :class:`~repro.cp.model.CpModel`."""

    def __init__(
        self,
        params: Optional[SolverParams] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.params = params or SolverParams()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def solve(self, model: CpModel, hint=None, **overrides) -> SolveResult:
        """Solve ``model``; keyword overrides patch :class:`SolverParams`.

        ``hint`` maps intervals to start times from a previous solution
        (MRCP-RM's incremental loop feeds the prior plan here).  A feasible
        hint becomes an extra warm-start candidate; an infeasible one is
        silently dropped.
        """
        params = replace(self.params, **overrides) if overrides else self.params
        tracer = self.tracer
        t_start = time.perf_counter()
        deadline = t_start + params.time_limit
        stats = SearchStats()
        profiling = params.profile or tracer.enabled
        profile = SolveProfile() if profiling else None
        phases_traced = set()

        def trace(phase: str, detail: str) -> None:
            if params.log:
                elapsed = time.perf_counter() - t_start
                print(f"[cp {elapsed:7.3f}s] {phase:<10} {detail}")

        sizes = model.stats()
        trace(
            "model",
            f"{sizes['intervals']} intervals, "
            f"{sizes['optional_intervals']} options, "
            f"{sizes['cumulatives']} cumulatives, "
            f"{sizes['indicators']} indicators",
        )

        engine = model.engine()
        engine.profile = EngineProfile() if profiling else None
        engine.reset()

        def finish(result: SolveResult) -> SolveResult:
            """Stamp wall time, attach the profile, emit skipped-phase spans."""
            stats.wall_time = time.perf_counter() - t_start
            if result.budget_exhausted:
                # Watchdog surface: budget ran out with no verdict.  The
                # resilience circuit breakers key on this (a proven
                # INFEASIBLE deliberately does not emit it).
                tracer.instant(
                    "cp.budget_exhausted",
                    "cp.phase",
                    {"time_limit": params.time_limit},
                )
            if profile is not None:
                ep = engine.profile
                if ep is not None:
                    profile.engine_propagate_time = ep.propagate_time
                    profile.engine_propagate_calls = ep.propagate_calls
                    profile.propagators = ep.as_dict()
                profile.final_objective = (
                    None if result.solution is None else result.solution.objective
                )
                result.profile = profile
            if tracer.enabled:
                for name in PHASE_SPANS:
                    if name not in phases_traced:
                        tracer.marker(name, "cp.phase", {"skipped": True})
            return result

        # ------------------------------------------------ 1. root propagation
        phases_traced.add("cp.propagate")
        t_phase = time.perf_counter()
        root_failed = False
        with tracer.span("cp.propagate", "cp.phase"):
            try:
                engine.propagate()
            except Infeasible:
                root_failed = True
        stats.propagate_time = time.perf_counter() - t_phase
        if root_failed:
            return finish(SolveResult(SolveStatus.INFEASIBLE, None, stats))

        if time.perf_counter() >= deadline:
            # Budget exhausted before the search could even warm-start
            # (e.g. a forced time_limit=0): report UNKNOWN and let the
            # caller degrade gracefully instead of pretending to search.
            trace("budget", "exhausted before warm start")
            return finish(SolveResult(SolveStatus.UNKNOWN, None, stats))

        has_objective = model.objective_bools is not None
        # Root lower bound: indicators already forced to 1 by propagation
        # are provably late in *every* schedule (their deadlines precede any
        # possible completion).  A warm start matching this bound is optimal
        # -- the common case in a backlogged open system, and the fast path
        # that keeps MRCP-RM's per-invocation overhead low.
        root_lb = 0
        if has_objective:
            root_lb = sum(b.domain.min for b in model.objective_bools)

        # ---------------------------------------------------- 2. warm start
        phases_traced.add("cp.warm_start")
        t_phase = time.perf_counter()
        best = None
        solved_by = "none"
        with tracer.span("cp.warm_start", "cp.phase"):
            if hint:
                hinted = list_schedule(
                    model, params.warm_start_orders[0], preplaced=hint
                )
                if hinted is not None and not check_solution(model, hinted):
                    best = hinted
                    solved_by = "hint"
                    trace("hint", f"objective={hinted.objective}")
            if best is None or (
                has_objective and best.objective not in (None, 0)
            ):
                from_orders = best_warm_start(model, params.warm_start_orders)
                if from_orders is not None and (
                    best is None
                    or best.objective is None
                    or (
                        from_orders.objective is not None
                        and from_orders.objective < best.objective
                    )
                ):
                    best = from_orders
                    solved_by = "warm_start"
        stats.warm_start_time = time.perf_counter() - t_phase
        trace(
            "warm",
            f"objective={None if best is None else best.objective} "
            f"(root lb {root_lb})",
        )
        if best is not None and params.validate:
            violations = check_solution(model, best)
            if violations:  # defensive: heuristic bug -> discard, keep going
                best = None
                solved_by = "none"
        if profile is not None:
            profile.warm_start_objective = (
                None if best is None else best.objective
            )
            profile.solved_by = solved_by
        if best is not None:
            stats.solutions += 1
            if not has_objective or best.objective <= root_lb:
                status = (
                    SolveStatus.OPTIMAL
                    if has_objective
                    else SolveStatus.FEASIBLE
                )
                return finish(SolveResult(status, best, stats))

        # --------------------------------------------------- 3. tree search
        brancher = SetTimesBrancher(model, jump=params.jump_branching)
        proven = False
        exhausted_empty = False
        remaining = deadline - time.perf_counter()
        if remaining > 0:
            phases_traced.add("cp.search")
            t_phase = time.perf_counter()
            incumbent_before = best
            with tracer.span("cp.search", "cp.phase"):
                tree_budget = remaining * params.tree_time_share
                if params.restart_base_fail_limit is not None and has_objective:
                    result = restarted_tree_search(
                        model,
                        engine,
                        brancher,
                        time_budget=tree_budget,
                        base_fail_limit=params.restart_base_fail_limit,
                        incumbent=best,
                    )
                else:
                    limits = SearchLimits.from_budget(
                        time_budget=tree_budget,
                        fail_limit=params.tree_fail_limit,
                    )
                    result = tree_search(
                        model,
                        engine,
                        brancher,
                        limits,
                        incumbent=best,
                        first_solution_only=not has_objective,
                    )
            stats.merge(result.stats)
            stats.tree_time = time.perf_counter() - t_phase
            trace(
                "tree",
                f"objective={None if result.best is None else result.best.objective} "
                f"branches={result.stats.branches} fails={result.stats.fails} "
                f"exhausted={result.exhausted}",
            )
            if result.best is not None:
                if result.best is not incumbent_before and profile is not None:
                    profile.improved_by_tree = True
                    profile.solved_by = "tree"
                best = result.best
            if result.exhausted:
                proven = brancher.complete or (
                    best is not None and best.objective == 0
                )
                exhausted_empty = best is None
        if (
            not proven
            and has_objective
            and best is not None
            and best.objective is not None
            and best.objective <= root_lb
        ):
            proven = True

        # ------------------------------------------------------------ 4. LNS
        if (
            has_objective
            and params.use_lns
            and not proven
            and best is not None
            and best.objective not in (None, 0)
            and time.perf_counter() < deadline
        ):
            phases_traced.add("cp.lns")
            t_phase = time.perf_counter()
            incumbent_before = best
            with tracer.span("cp.lns", "cp.phase"):
                lns_params = replace(params.lns, seed=params.seed)
                best, lns_stats = lns_improve(
                    model,
                    engine,
                    best,
                    deadline,
                    params=lns_params,
                    jump=params.jump_branching,
                    target=root_lb,
                )
            stats.merge(lns_stats)
            stats.lns_iterations = lns_stats.lns_iterations
            stats.lns_time = time.perf_counter() - t_phase
            if best is not incumbent_before and profile is not None:
                profile.improved_by_lns = True
                profile.solved_by = "lns"
            trace(
                "lns",
                f"objective={best.objective} "
                f"iterations={lns_stats.lns_iterations}",
            )

        if best is None:
            # No heuristic solution and the budgeted search found nothing.
            # A *complete* exhausted search is a proof of infeasibility.
            if exhausted_empty and brancher.complete:
                return finish(SolveResult(SolveStatus.INFEASIBLE, None, stats))
            return finish(SolveResult(SolveStatus.UNKNOWN, None, stats))
        if params.validate:
            violations = check_solution(model, best)
            if violations:
                raise AssertionError(
                    "solver produced an invalid solution:\n  "
                    + "\n  ".join(violations)
                )
        if has_objective and (proven or best.objective == 0):
            return finish(SolveResult(SolveStatus.OPTIMAL, best, stats))
        return finish(SolveResult(SolveStatus.FEASIBLE, best, stats))
