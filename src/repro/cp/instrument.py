"""Engine-level profiling: per-propagator-class effort counters.

When attached to an :class:`~repro.cp.engine.Engine` (``engine.profile =
EngineProfile()``), the fixpoint loop records, per propagator *class*:

* ``runs``   -- executions,
* ``prunes`` -- trailed domain mutations the execution caused (a cheap,
  exact proxy for bound tightenings), and
* ``fails``  -- executions that ended in a wipe-out (``Infeasible``),

plus the accumulated wall time and call count of ``Engine.propagate``
itself, and per-event wake counters (how many MIN/MAX/FIX wake-ups the
engine dispatched -- the denominator for event-based incrementality).
Detached (``engine.profile is None``, the default) the engine runs its
original unconditional loop -- profiling costs nothing when off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.cp.domain import FIX_EVENT, MAX_EVENT, MIN_EVENT


@dataclass
class PropagatorCounters:
    """Effort counters for one propagator class."""

    runs: int = 0
    prunes: int = 0
    fails: int = 0


class EngineProfile:
    """Mutable profiling sink attached to one engine for one solve."""

    __slots__ = (
        "by_class",
        "propagate_calls",
        "propagate_time",
        "clock",
        "wake_min",
        "wake_max",
        "wake_fix",
        "wake_other",
    )

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        #: propagator class name -> counters
        self.by_class: Dict[str, PropagatorCounters] = {}
        #: number of ``Engine.propagate`` fixpoint runs
        self.propagate_calls = 0
        #: wall seconds spent inside ``Engine.propagate`` (via ``clock``)
        self.propagate_time = 0.0
        self.clock = clock
        #: wake dispatches per event kind (one dispatch may enqueue many
        #: propagators; this counts domain-change events, not enqueues)
        self.wake_min = 0
        self.wake_max = 0
        self.wake_fix = 0
        self.wake_other = 0

    def counters(self, class_name: str) -> PropagatorCounters:
        """The counters for ``class_name``, created on first use."""
        c = self.by_class.get(class_name)
        if c is None:
            c = PropagatorCounters()
            self.by_class[class_name] = c
        return c

    def count_event(self, event: int) -> None:
        """Record one wake dispatch of the given event kind."""
        if event == MIN_EVENT:
            self.wake_min += 1
        elif event == MAX_EVENT:
            self.wake_max += 1
        elif event == FIX_EVENT:
            self.wake_fix += 1
        else:
            self.wake_other += 1

    def events_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot of the per-event wake counters."""
        return {
            "min": self.wake_min,
            "max": self.wake_max,
            "fix": self.wake_fix,
            "other": self.wake_other,
        }

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict snapshot: class name -> {runs, prunes, fails}."""
        return {
            name: {"runs": c.runs, "prunes": c.prunes, "fails": c.fails}
            for name, c in sorted(self.by_class.items())
        }

    def merge(self, other: "EngineProfile") -> None:
        """Accumulate another profile's counters into this one."""
        for name, c in other.by_class.items():
            mine = self.counters(name)
            mine.runs += c.runs
            mine.prunes += c.prunes
            mine.fails += c.fails
        self.propagate_calls += other.propagate_calls
        self.propagate_time += other.propagate_time
        self.wake_min += other.wake_min
        self.wake_max += other.wake_max
        self.wake_fix += other.wake_fix
        self.wake_other += other.wake_other
