"""List-scheduling warm starts.

CP Optimizer seeds its incomplete search with constructive heuristics; we do
the same.  The list scheduler walks the model's job groups in a chosen order
(EDF / least-laxity / input order -- the three job orderings MRCP-RM is
configured with in Section VI.B), placing each task at the earliest time that
fits every cumulative profile it participates in, honouring the map/reduce
barrier and any frozen (already running) tasks.

The resulting assignment is always feasible with respect to the hard
constraints; deadline misses simply show up in the objective.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cp.model import AlternativeSpec, CpModel, Group
from repro.cp.profile import TimetableProfile
from repro.cp.solution import Solution
from repro.cp.variables import IntervalVar

#: Supported job orderings (paper, Section VI.B).
ORDERINGS = ("edf", "laxity", "input")


def group_sort_key(order: str, index: int, group: Group):
    """Sort key implementing one of the three job orderings of Section VI.B."""
    if order == "edf":
        d = group.deadline if group.deadline is not None else float("inf")
        return (d, group.release, index)
    if order == "laxity":
        return (group.laxity(), group.release, index)
    if order == "input":
        return (index,)
    raise ValueError(f"unknown ordering {order!r}; expected one of {ORDERINGS}")


class _PlacementState:
    """Profiles and committed usage for one heuristic run."""

    def __init__(self, model: CpModel) -> None:
        self.model = model
        self.profiles: Dict[int, TimetableProfile] = {
            id(spec): TimetableProfile() for spec in model.cumulatives
        }
        # Load per cumulative (total committed length) for tie-breaking.
        self.load: Dict[int, int] = {id(spec): 0 for spec in model.cumulatives}
        # interval -> [(profile, demand, capacity, load_key)] memberships;
        # profile/capacity are pre-resolved so the fit/commit hot loops do
        # no per-call spec lookups.
        self.membership: Dict[
            IntervalVar, List[Tuple[TimetableProfile, int, int, int]]
        ] = {}
        membership = self.membership
        for spec in model.cumulatives:
            key = id(spec)
            profile = self.profiles[key]
            capacity = spec.capacity
            for iv, d in zip(spec.intervals, spec.demands):
                entry = (profile, d, capacity, key)
                lst = membership.get(iv)
                if lst is None:
                    membership[iv] = [entry]
                else:
                    lst.append(entry)
        self.alt_of: Dict[IntervalVar, AlternativeSpec] = {
            alt.master: alt for alt in model.alternatives
        }
        self.starts: Dict[IntervalVar, int] = {}
        self.choices: Dict[IntervalVar, IntervalVar] = {}

    # ------------------------------------------------------------ placement
    def fit(self, iv: IntervalVar, est: int, lst: int) -> Optional[int]:
        """Earliest start >= est fitting all of ``iv``'s cumulative profiles."""
        members = self.membership.get(iv, ())
        s = est
        if not members:
            return s if s <= lst else None
        length = iv.length
        if len(members) == 1:
            # One profile: its earliest fit is already the joint fixpoint.
            profile, demand, capacity, _key = members[0]
            return profile.earliest_fit(s, lst, length, demand, capacity)
        while True:
            s0 = s
            for profile, demand, capacity, _key in members:
                f = profile.earliest_fit(s, lst, length, demand, capacity)
                if f is None:
                    return None
                if f > s:
                    s = f
            if s == s0:
                return s

    def commit(self, carrier: IntervalVar, master: IntervalVar, start: int) -> None:
        """Record ``master`` starting at ``start``, consuming via ``carrier``.

        In joint (matchmaking) mode the *carrier* is the chosen per-resource
        option interval; in combined mode carrier is the master itself.
        """
        self.starts[master] = start
        if carrier is not master:
            self.choices[master] = carrier
        length = carrier.length
        for profile, demand, _capacity, key in self.membership.get(carrier, ()):
            profile.add(start, start + length, demand)
            self.load[key] += length

    def place_master(self, iv: IntervalVar, est: int) -> Optional[int]:
        """Place one master interval (choosing a resource when alternatives
        exist); returns the assigned start or None if nothing fits."""
        start_dom = iv.start
        if start_dom._min > est:
            est = start_dom._min
        lst = start_dom._max
        alt = self.alt_of.get(iv)
        if alt is None:
            members = self.membership.get(iv)
            if members is not None and len(members) == 1:
                # Combined-mode hot path (one cumulative, no alternatives):
                # fit and commit against the single profile inline.
                profile, demand, capacity, key = members[0]
                length = iv.length
                s = profile.place_earliest(est, lst, length, demand, capacity)
                if s is None:
                    return None
                self.starts[iv] = s
                self.load[key] += length
                return s
            s = self.fit(iv, est, lst)
            if s is None:
                return None
            self.commit(iv, iv, s)
            return s
        best: Optional[Tuple[int, int, IntervalVar]] = None
        for option in alt.options:
            o_est = max(est, option.est)
            o_lst = min(lst, option.lst)
            if o_est > o_lst:
                continue
            s = self.fit(option, o_est, o_lst)
            if s is None:
                continue
            tie = sum(
                self.load[key]
                for _profile, _d, _cap, key in self.membership.get(option, ())
            )
            key2 = (s, tie)
            if best is None or key2 < (best[0], best[1]):
                best = (s, tie, option)
        if best is None:
            return None
        s, _, option = best
        self.commit(option, iv, s)
        return s


def list_schedule(
    model: CpModel,
    order: str = "edf",
    preplaced: Optional[Dict[IntervalVar, int]] = None,
) -> Optional[Solution]:
    """Greedy constructive schedule; returns None if placement fails.

    ``preplaced`` pins chosen intervals to given start times before the
    greedy pass -- the mechanism behind solution *hints* (re-using the
    previous scheduling round's plan, as MRCP-RM's incremental loop does).
    A hinted start that violates its window or a capacity aborts the whole
    attempt (returns None); the caller falls back to un-hinted orders.

    Un-hinted placement can only fail when frozen tasks already violate a
    capacity or a window is unsatisfiable -- on well-formed MRCP-RM models
    it succeeds.
    """
    state = _PlacementState(model)

    frozen = [iv for iv in model.intervals if iv.start._min == iv.start._max]
    movable_in_group = set()
    for g in model.groups:
        movable_in_group.update(g.intervals)

    # 1. Frozen tasks occupy their fixed slots first.
    for iv in frozen:
        carrier: IntervalVar = iv
        alt = state.alt_of.get(iv)
        if alt is not None:
            # Frozen master in joint mode: its resource was decided when it
            # was dispatched; the formulation creates exactly one option.
            carrier = min(alt.options, key=lambda o: abs(o.est - iv.est))
        state.commit(carrier, iv, iv.est)

    frozen_set = set(frozen)

    # 1b. Hinted tasks next, exactly where the hint says (or give up).
    if preplaced:
        hinted = sorted(
            ((iv, s) for iv, s in preplaced.items() if iv not in frozen_set),
            key=lambda p: (p[1], p[0].name),
        )
        for iv, start in hinted:
            if not (iv.est <= start <= iv.lst):
                return None
            alt = state.alt_of.get(iv)
            if alt is None:
                if state.fit(iv, start, start) != start:
                    return None
                state.commit(iv, iv, start)
            else:
                placed = False
                for option in alt.options:
                    if not (option.est <= start <= option.lst):
                        continue
                    if state.fit(option, start, start) == start:
                        state.commit(option, iv, start)
                        placed = True
                        break
                if not placed:
                    return None
        frozen_set = frozen_set | {iv for iv, _ in hinted}

    # 2. Job groups in the requested order; within a group, stages run in
    #    topological order and each stage is released when its predecessor
    #    stages have completed (the generalised barrier).
    ordered = sorted(
        enumerate(model.groups), key=lambda p: group_sort_key(order, p[0], p[1])
    )
    for _, group in ordered:
        stage_end = [0] * len(group.stages)
        delays = group.stage_pred_delays or [
            [0] * len(ps) for ps in group.stage_preds
        ]
        for idx, stage in enumerate(group.stages):
            release = group.release
            for p, d in zip(group.stage_preds[idx], delays[idx]):
                release = max(release, stage_end[p] + d)
            end = 0
            for iv in stage:
                if iv in frozen_set:
                    # frozen or hinted: use the actual committed start
                    placed_at = state.starts.get(iv, iv.est)
                    end = max(end, placed_at + iv.length)
            movable_stage = [iv for iv in stage if iv not in frozen_set]
            # Longest-processing-time first within a stage reduces makespan.
            movable_stage.sort(key=lambda iv: -iv.length)
            for iv in movable_stage:
                s = state.place_master(iv, est=release)
                if s is None:
                    return None
                end = max(end, s + iv.length)
            stage_end[idx] = end

    # 3. Any interval outside the groups (generic library use).
    leftovers = [
        iv
        for iv in model.intervals
        if iv not in frozen_set and iv not in movable_in_group
    ]
    leftovers.sort(key=lambda iv: (iv.est, -iv.length))
    for iv in leftovers:
        # Honour generic pairwise precedences by a pre-pass on placed preds.
        est = iv.est
        for p in model.precedences:
            if p.b is iv and p.a in state.starts:
                est = max(est, state.starts[p.a] + p.a.length + p.delay)
        s = state.place_master(iv, est=est)
        if s is None:
            return None

    sol = Solution(starts=state.starts, choices=state.choices)
    if model.objective_bools is not None:
        sol.objective = sol.evaluate_objective(model)
    return sol


def best_warm_start(
    model: CpModel, orders: Sequence[str] = ORDERINGS
) -> Optional[Solution]:
    """Run several orderings, keep the schedule with fewest late jobs."""
    best: Optional[Solution] = None
    for order in orders:
        sol = list_schedule(model, order)
        if sol is None:
            continue
        if (
            best is None
            or (sol.objective or 0) < (best.objective or 0)
        ):
            best = sol
        if best.objective == 0:
            break
    return best
