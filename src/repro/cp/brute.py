"""Exact brute-force reference solver for tiny instances.

Enumerates every (resource choice, start time) combination within the
pristine windows, checks all constraints with the independent checker logic,
and returns the minimum number of late jobs.  Exponential -- strictly a test
oracle; keep instances to a handful of tasks and a short horizon.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.cp.model import CpModel
from repro.cp.profile import TimetableProfile
from repro.cp.solution import Solution
from repro.cp.variables import IntervalVar


def _enumerate_assignments(model: CpModel):
    """Yield (starts, choices) over the full cartesian space."""
    windows = model.original_windows or {
        iv: (iv.est, iv.lst) for iv in model.all_intervals
    }
    masters = model.intervals
    alt_of = {alt.master: alt for alt in model.alternatives}

    per_master: List[List[Tuple[int, Optional[IntervalVar]]]] = []
    for iv in masters:
        est, lst = windows[iv]
        options: List[Tuple[int, Optional[IntervalVar]]] = []
        alt = alt_of.get(iv)
        if alt is None:
            for s in range(est, lst + 1):
                options.append((s, None))
        else:
            for opt in alt.options:
                o_est, o_lst = windows[opt]
                lo, hi = max(est, o_est), min(lst, o_lst)
                for s in range(lo, hi + 1):
                    options.append((s, opt))
        per_master.append(options)

    for combo in itertools.product(*per_master):
        starts: Dict[IntervalVar, int] = {}
        choices: Dict[IntervalVar, IntervalVar] = {}
        for iv, (s, opt) in zip(masters, combo):
            starts[iv] = s
            if opt is not None:
                choices[iv] = opt
        yield starts, choices


def _feasible(model: CpModel, starts: Dict, choices: Dict) -> bool:
    # barriers (with transfer delays)
    for b in model.barriers:
        if not b.first or not b.second:
            continue
        end_first = max(starts[iv] + iv.length for iv in b.first)
        if min(starts[iv] for iv in b.second) < end_first + b.delay:
            return False
    # precedences
    for p in model.precedences:
        if starts[p.a] + p.a.length + p.delay > starts[p.b]:
            return False
    # cumulatives
    chosen = set(choices.values())
    master_of = {}
    for alt in model.alternatives:
        for o in alt.options:
            master_of[o] = alt.master
    for spec in model.cumulatives:
        profile = TimetableProfile()
        for iv, demand in zip(spec.intervals, spec.demands):
            if iv.is_optional:
                if iv not in chosen:
                    continue
                s = starts[master_of[iv]]
            else:
                s = starts[iv]
            profile.add(s, s + iv.length, demand)
        if profile.max_height() > spec.capacity:
            return False
    return True


def _late_count(model: CpModel, starts: Dict) -> int:
    late = 0
    for spec in model.indicators:
        completion = max(starts[t] + t.length for t in spec.tasks)
        if completion > spec.deadline:
            late += 1
    return late


def brute_force_min_late(model: CpModel) -> Optional[Tuple[int, Solution]]:
    """Exhaustively find the minimum-late-jobs schedule.

    Returns ``(min_late, solution)`` or ``None`` when no feasible assignment
    exists.  Requires :meth:`CpModel.engine` *not* to have tightened domains;
    call it on a freshly built model or rely on ``original_windows``.
    """
    if not model.original_windows:
        model.original_windows = {
            iv: (iv.est, iv.lst) for iv in model.all_intervals
        }
    best: Optional[Tuple[int, Solution]] = None
    for starts, choices in _enumerate_assignments(model):
        if not _feasible(model, starts, choices):
            continue
        late = _late_count(model, starts)
        if best is None or late < best[0]:
            best = (late, Solution(dict(starts), dict(choices), objective=late))
            if late == 0:
                break
    return best
