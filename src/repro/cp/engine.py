"""Fixpoint propagation engine with chronological backtracking.

The engine owns the trail, the propagation queue and the registered
propagators.  It is built once per :class:`~repro.cp.model.CpModel` and reused
across solver phases (warm start, tree search, LNS re-solves): calling
:meth:`Engine.reset` rewinds every domain to its pristine state.

Design notes
------------
* Two FIFO queues implement a two-level priority scheme: cheap propagators
  (precedences, reified indicators) run before the O(n log n) cumulative
  sweep, which keeps the fixpoint loop from re-running the expensive
  propagator on every bound change.
* Wake-ups are *cause-aware*: while a propagator executes it is the engine's
  ``active`` propagator, and its own prunes never re-enqueue it.  Every
  registered propagator is idempotent (reaches its own fixpoint in one run,
  or explicitly re-schedules itself via :meth:`schedule` when it cannot), so
  suppressing self-wakes changes how the fixpoint is *reached*, never the
  fixpoint itself.  Dirty tokens are still recorded for suppressed wakes --
  an incremental propagator must see its own prunes as deltas next run.
* ``objective_bound`` is deliberately *not* trailed: during branch-and-bound
  it only ever tightens, so a bound installed deep in the tree remains valid
  after backtracking.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.cp.domain import ANY_EVENT
from repro.cp.errors import Infeasible
from repro.cp.trail import Trail

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.instrument import EngineProfile
    from repro.cp.propagators.base import Propagator


class Engine:
    """Runtime state for one CP model: trail + propagation queue."""

    def __init__(self) -> None:
        self.trail = Trail()
        self.propagators: List["Propagator"] = []
        self._queue_high: deque = deque()
        self._queue_low: deque = deque()
        #: Upper bound on the objective for branch-and-bound pruning
        #: (``None`` = no bound yet).  Read by the objective propagator.
        self.objective_bound: Optional[int] = None
        #: The objective propagator, re-scheduled when the bound tightens.
        self.objective_propagator: Optional["Propagator"] = None
        #: Number of individual propagator executions (for stats/debugging).
        self.propagation_count: int = 0
        #: Optional per-propagator-class profiling sink (None = no profiling
        #: and zero overhead; see :mod:`repro.cp.instrument`).
        self.profile: Optional["EngineProfile"] = None
        #: The propagator currently executing (wake-ups from its own prunes
        #: are suppressed; see module docstring).
        self.active: Optional["Propagator"] = None
        self._root_ready = False
        self._subscribed = False

    # ------------------------------------------------------------- building
    def register(self, prop: "Propagator") -> None:
        """Add a propagator; it is subscribed to its watched domains lazily.

        Subscription (wiring ``prop.watches()`` into the domains' per-event
        lists) is deferred to the first :meth:`propagate` call: until then
        every propagator sits in the queue with a full dirty set (see
        :meth:`schedule_all`), so missed wake-ups cannot lose inference,
        and callers that never propagate -- warm-start-only rounds -- skip
        the subscription cost entirely.
        """
        if self._root_ready:
            raise RuntimeError("cannot register propagators after seal()")
        self.propagators.append(prop)

    def _subscribe_all(self) -> None:
        self._subscribed = True
        for prop in self.propagators:
            for dom, events, token in prop.watches():
                dom.watch(prop, events, token)

    def seal(self) -> None:
        """Freeze the propagator set and mark the pristine state.

        Everything mutated after ``seal()`` is recorded on the trail, so
        :meth:`reset` can always rewind to this point.
        """
        self._root_ready = True
        self.trail.push_level()
        self.schedule_all()

    def reset(self) -> None:
        """Rewind all domains to the state captured by :meth:`seal`.

        Also clears the branch-and-bound objective bound: a bound belongs to
        one solve; callers resuming an improvement (LNS) re-install it via
        the ``incumbent`` they pass to the search.
        """
        if not self._root_ready:
            raise RuntimeError("seal() must be called before reset()")
        self.trail.pop_all()
        self.trail.push_level()
        self.clear_queue()
        self.schedule_all()
        self.objective_bound = None

    # ------------------------------------------------------------ the queue
    def schedule(self, prop: "Propagator") -> None:
        """Enqueue a propagator (no-op if already queued)."""
        if prop.queued:
            return
        prop.queued = True
        if prop.priority == 0:
            self._queue_high.append(prop)
        else:
            self._queue_low.append(prop)

    def schedule_all(self) -> None:
        """Re-prime and enqueue every propagator (root/fixpoint restart).

        ``pop_all`` rewinds trailed state but not untrailed incremental
        bookkeeping, so each propagator's :meth:`on_reset` hook runs first.
        """
        for prop in self.propagators:
            prop.on_reset(self)
            self.schedule(prop)

    def wake(
        self,
        entries: Iterable[Tuple["Propagator", object]],
        event: int = ANY_EVENT,
        cause: Optional["Propagator"] = None,
    ) -> None:
        """Enqueue subscribers of a changed domain.

        ``entries`` are ``(propagator, token)`` pairs from one of the
        domain's per-event lists.  The *cause* (defaulting to the currently
        executing propagator) is never re-enqueued for its own prune, but
        its dirty token is still recorded -- incremental propagators must
        account for their own prunes as deltas on the next run.
        """
        if cause is None:
            cause = self.active
        profile = self.profile
        if profile is not None:
            profile.count_event(event)
        for prop, token in entries:
            if token is not None:
                prop._dirty.add(token)
            if prop is cause or prop.queued:
                continue
            prop.queued = True
            if prop.priority == 0:
                self._queue_high.append(prop)
            else:
                self._queue_low.append(prop)

    def clear_queue(self) -> None:
        """Drop all pending propagator activations (used after a failure)."""
        for q in (self._queue_high, self._queue_low):
            while q:
                q.popleft().queued = False

    def on_bound_tightened(self, bound: int) -> None:
        """Install a new objective upper bound and re-arm its propagator."""
        if self.objective_bound is None or bound < self.objective_bound:
            self.objective_bound = bound
        if self.objective_propagator is not None:
            self.schedule(self.objective_propagator)

    # ----------------------------------------------------------- the engine
    def propagate(self) -> None:
        """Run queued propagators to a fixpoint.

        Raises :class:`~repro.cp.errors.Infeasible` on a wipe-out; the caller
        is responsible for calling :meth:`clear_queue` before continuing the
        search from another node.
        """
        if not self._subscribed:
            self._subscribe_all()
        if self.profile is not None:
            self._propagate_profiled(self.profile)
            return
        qh, ql = self._queue_high, self._queue_low
        try:
            while True:
                if qh:
                    prop = qh.popleft()
                elif ql:
                    prop = ql.popleft()
                else:
                    return
                prop.queued = False
                self.propagation_count += 1
                self.active = prop
                prop.propagate(self)
        except Infeasible:
            self.clear_queue()
            raise
        finally:
            self.active = None

    def _propagate_profiled(self, profile: "EngineProfile") -> None:
        """The fixpoint loop with per-propagator-class accounting.

        Identical contract to :meth:`propagate`; trailed-mutation deltas
        around each execution attribute prunes to the propagator class.
        """
        qh, ql = self._queue_high, self._queue_low
        trail = self.trail
        t0 = profile.clock()
        profile.propagate_calls += 1
        try:
            while True:
                if qh:
                    prop = qh.popleft()
                elif ql:
                    prop = ql.popleft()
                else:
                    return
                prop.queued = False
                self.propagation_count += 1
                counters = profile.counters(type(prop).__name__)
                counters.runs += 1
                before = len(trail)
                self.active = prop
                try:
                    prop.propagate(self)
                except Infeasible:
                    counters.fails += 1
                    raise
                counters.prunes += len(trail) - before
        except Infeasible:
            self.clear_queue()
            raise
        finally:
            self.active = None
            profile.propagate_time += profile.clock() - t0
