"""Fixpoint propagation engine with chronological backtracking.

The engine owns the trail, the propagation queue and the registered
propagators.  It is built once per :class:`~repro.cp.model.CpModel` and reused
across solver phases (warm start, tree search, LNS re-solves): calling
:meth:`Engine.reset` rewinds every domain to its pristine state.

Design notes
------------
* Two FIFO queues implement a two-level priority scheme: cheap propagators
  (precedences, reified indicators) run before the O(n log n) cumulative
  sweep, which keeps the fixpoint loop from re-running the expensive
  propagator on every bound change.
* ``objective_bound`` is deliberately *not* trailed: during branch-and-bound
  it only ever tightens, so a bound installed deep in the tree remains valid
  after backtracking.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.cp.errors import Infeasible
from repro.cp.trail import Trail

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.instrument import EngineProfile
    from repro.cp.propagators.base import Propagator


class Engine:
    """Runtime state for one CP model: trail + propagation queue."""

    def __init__(self) -> None:
        self.trail = Trail()
        self.propagators: List["Propagator"] = []
        self._queue_high: deque = deque()
        self._queue_low: deque = deque()
        #: Upper bound on the objective for branch-and-bound pruning
        #: (``None`` = no bound yet).  Read by the objective propagator.
        self.objective_bound: Optional[int] = None
        #: The objective propagator, re-scheduled when the bound tightens.
        self.objective_propagator: Optional["Propagator"] = None
        #: Number of individual propagator executions (for stats/debugging).
        self.propagation_count: int = 0
        #: Optional per-propagator-class profiling sink (None = no profiling
        #: and zero overhead; see :mod:`repro.cp.instrument`).
        self.profile: Optional["EngineProfile"] = None
        self._root_ready = False

    # ------------------------------------------------------------- building
    def register(self, prop: "Propagator") -> None:
        """Add a propagator and subscribe it to the domains it watches."""
        if self._root_ready:
            raise RuntimeError("cannot register propagators after seal()")
        self.propagators.append(prop)
        for dom in prop.watched_domains():
            dom.watchers.append(prop)

    def seal(self) -> None:
        """Freeze the propagator set and mark the pristine state.

        Everything mutated after ``seal()`` is recorded on the trail, so
        :meth:`reset` can always rewind to this point.
        """
        self._root_ready = True
        self.trail.push_level()
        self.schedule_all()

    def reset(self) -> None:
        """Rewind all domains to the state captured by :meth:`seal`.

        Also clears the branch-and-bound objective bound: a bound belongs to
        one solve; callers resuming an improvement (LNS) re-install it via
        the ``incumbent`` they pass to the search.
        """
        if not self._root_ready:
            raise RuntimeError("seal() must be called before reset()")
        self.trail.pop_all()
        self.trail.push_level()
        self.clear_queue()
        self.schedule_all()
        self.objective_bound = None

    # ------------------------------------------------------------ the queue
    def schedule(self, prop: "Propagator") -> None:
        """Enqueue a propagator (no-op if already queued)."""
        if prop.queued:
            return
        prop.queued = True
        if prop.priority == 0:
            self._queue_high.append(prop)
        else:
            self._queue_low.append(prop)

    def schedule_all(self) -> None:
        """Enqueue every registered propagator (root/fixpoint restart)."""
        for prop in self.propagators:
            self.schedule(prop)

    def wake(self, watchers: Iterable["Propagator"]) -> None:
        """Enqueue the propagators watching a changed domain."""
        for prop in watchers:
            self.schedule(prop)

    def clear_queue(self) -> None:
        """Drop all pending propagator activations (used after a failure)."""
        for q in (self._queue_high, self._queue_low):
            while q:
                q.popleft().queued = False

    def on_bound_tightened(self, bound: int) -> None:
        """Install a new objective upper bound and re-arm its propagator."""
        if self.objective_bound is None or bound < self.objective_bound:
            self.objective_bound = bound
        if self.objective_propagator is not None:
            self.schedule(self.objective_propagator)

    # ----------------------------------------------------------- the engine
    def propagate(self) -> None:
        """Run queued propagators to a fixpoint.

        Raises :class:`~repro.cp.errors.Infeasible` on a wipe-out; the caller
        is responsible for calling :meth:`clear_queue` before continuing the
        search from another node.
        """
        if self.profile is not None:
            self._propagate_profiled(self.profile)
            return
        qh, ql = self._queue_high, self._queue_low
        try:
            while True:
                if qh:
                    prop = qh.popleft()
                elif ql:
                    prop = ql.popleft()
                else:
                    return
                prop.queued = False
                self.propagation_count += 1
                prop.propagate(self)
        except Infeasible:
            self.clear_queue()
            raise

    def _propagate_profiled(self, profile: "EngineProfile") -> None:
        """The fixpoint loop with per-propagator-class accounting.

        Identical contract to :meth:`propagate`; trailed-mutation deltas
        around each execution attribute prunes to the propagator class.
        """
        qh, ql = self._queue_high, self._queue_low
        trail = self.trail
        t0 = profile.clock()
        profile.propagate_calls += 1
        try:
            while True:
                if qh:
                    prop = qh.popleft()
                elif ql:
                    prop = ql.popleft()
                else:
                    return
                prop.queued = False
                self.propagation_count += 1
                counters = profile.counters(type(prop).__name__)
                counters.runs += 1
                before = len(trail)
                try:
                    prop.propagate(self)
                except Infeasible:
                    counters.fails += 1
                    raise
                counters.prunes += len(trail) - before
        except Infeasible:
            self.clear_queue()
            raise
        finally:
            profile.propagate_time += profile.clock() - t0
