"""Backtrackable state management.

The solver explores a search tree depth-first.  Every domain mutation below a
choice point must be undone when the search backtracks.  We use the classic
*trailing* scheme: the first time a domain is touched at the current search
level, its previous bounds are pushed onto a trail; popping a level replays
the trail back to the level's mark.

A monotonically increasing ``magic`` counter (bumped on every push *and* pop)
lets domains detect cheaply whether they have already been saved at the
current node, so repeated tightenings of the same domain inside one node cost
one trail entry, not one per tightening.
"""

from __future__ import annotations

from typing import Any, List, Tuple


class Trail:
    """Records domain states so the search can backtrack in O(changes)."""

    __slots__ = ("_saved", "_marks", "magic")

    def __init__(self) -> None:
        self._saved: List[Tuple[Any, Any]] = []
        self._marks: List[int] = []
        #: Monotone counter distinguishing search nodes; domains compare their
        #: own stamp against it to decide whether a save is needed.
        self.magic: int = 1

    @property
    def level(self) -> int:
        """Current search depth (0 at the root)."""
        return len(self._marks)

    def push_level(self) -> None:
        """Open a new choice point."""
        self._marks.append(len(self._saved))
        self.magic += 1

    def pop_level(self) -> None:
        """Undo every recorded change since the matching :meth:`push_level`."""
        if not self._marks:
            raise RuntimeError("pop_level called at the root level")
        mark = self._marks.pop()
        saved = self._saved
        while len(saved) > mark:
            obj, state = saved.pop()
            obj._restore(state)
        self.magic += 1

    def pop_all(self) -> None:
        """Return to the root level, undoing everything."""
        while self._marks:
            self.pop_level()

    def record(self, obj: Any, state: Any) -> None:
        """Remember ``obj``'s ``state`` for restoration on backtrack.

        ``obj`` must implement ``_restore(state)``.
        """
        if self._marks:  # nothing to undo at the root level
            self._saved.append((obj, state))

    def __len__(self) -> int:
        return len(self._saved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trail(level={self.level}, entries={len(self._saved)})"
