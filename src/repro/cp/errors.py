"""Exception types shared across the CP solver."""

from __future__ import annotations


class Infeasible(Exception):
    """Raised by propagators when a domain wipes out.

    The search engine catches this to trigger backtracking; callers of
    :meth:`repro.cp.engine.Engine.propagate` at the root level see it as a
    proof that the model has no solution under the current bounds.
    """


class ModelError(ValueError):
    """Raised when a model is built with inconsistent arguments.

    Unlike :class:`Infeasible` this signals a programming error (e.g. a
    negative task length or mismatched demand list), not an over-constrained
    but well-formed instance.
    """
