"""Decision variables: booleans and (optional) interval variables.

:class:`IntervalVar` mirrors CP Optimizer's ``dvar interval``: a task with a
fixed processing time whose *start* is the decision, plus -- for the
matchmaking formulation of the paper (Table 1, constraint 1) -- an optional
*presence* status used by the ``alternative`` constraint to pick exactly one
(task, resource) copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cp.domain import ANY_EVENT, FIX_EVENT, IntDomain
from repro.cp.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cp.engine import Engine
    from repro.cp.propagators.base import Propagator


class BoolVar:
    """A 0/1 decision variable (a thin wrapper over an ``IntDomain``)."""

    __slots__ = ("domain", "name")

    def __init__(self, name: str = "") -> None:
        self.domain = IntDomain(0, 1, name=name)
        self.name = name

    @property
    def is_fixed(self) -> bool:
        return self.domain.is_fixed

    @property
    def value(self) -> int:
        return self.domain.value

    @property
    def can_be_true(self) -> bool:
        return self.domain.max == 1

    @property
    def can_be_false(self) -> bool:
        return self.domain.min == 0

    def set_true(self, engine: "Engine") -> bool:
        """Fix to 1; raises Infeasible when already 0."""
        return self.domain.set_min(1, engine)

    def set_false(self, engine: "Engine") -> bool:
        """Fix to 0; raises Infeasible when already 1."""
        return self.domain.set_max(0, engine)

    def watch(
        self,
        prop: "Propagator",
        events: int = FIX_EVENT,
        token: object = None,
    ) -> None:
        """Subscribe ``prop`` to this literal (by default: decisions only).

        A 0/1 domain has no intermediate bound moves, so :data:`FIX_EVENT`
        alone sees every decision.
        """
        self.domain.watch(prop, events, token)

    def __repr__(self) -> str:
        return repr(self.domain)


#: Presence states for an optional interval.
PRESENT = 1
ABSENT = 0


class IntervalVar:
    """A task of fixed integer ``length`` to be placed on the timeline.

    The decision is the start time, held in :attr:`start`.  The end is derived
    (``end = start + length``); helper accessors keep propagator code close to
    the usual scheduling vocabulary (est/lst/ect/lct).

    An interval may be *optional*: whether it appears in the schedule at all
    is itself a decision, held in :attr:`presence`.  Bounds of an absent
    interval are meaningless and propagators must ignore them.
    """

    __slots__ = ("start", "length", "presence", "demand", "name", "payload")

    def __init__(
        self,
        start_min: int,
        start_max: int,
        length: int,
        name: str = "",
        optional: bool = False,
        demand: int = 1,
        payload: object = None,
    ) -> None:
        if length < 0:
            raise ModelError(f"interval {name!r}: negative length {length}")
        if demand < 0:
            raise ModelError(f"interval {name!r}: negative demand {demand}")
        if start_min > start_max:
            raise ModelError(
                f"interval {name!r}: empty start window [{start_min}, {start_max}]"
            )
        self.start = IntDomain(start_min, start_max, name=f"{name}.start")
        self.length = int(length)
        self.presence: Optional[BoolVar] = (
            BoolVar(name=f"{name}.presence") if optional else None
        )
        self.demand = int(demand)
        self.name = name
        #: Free slot for callers to attach their own object (e.g. a Task).
        self.payload = payload

    # ------------------------------------------------------------- presence
    @property
    def is_optional(self) -> bool:
        return self.presence is not None

    @property
    def is_present(self) -> bool:
        """True when the interval is known to appear in the schedule."""
        return self.presence is None or (
            self.presence.is_fixed and self.presence.value == PRESENT
        )

    @property
    def is_absent(self) -> bool:
        return self.presence is not None and (
            self.presence.is_fixed and self.presence.value == ABSENT
        )

    @property
    def presence_undecided(self) -> bool:
        return self.presence is not None and not self.presence.is_fixed

    def set_present(self, engine: "Engine") -> bool:
        """Commit the optional interval to appear in the schedule."""
        if self.presence is None:
            return False
        return self.presence.set_true(engine)

    def set_absent(self, engine: "Engine") -> bool:
        """Remove the optional interval from the schedule."""
        if self.presence is None:
            from repro.cp.errors import Infeasible

            raise Infeasible(f"cannot make mandatory interval {self.name!r} absent")
        return self.presence.set_false(engine)

    # ----------------------------------------------------------------- time
    @property
    def est(self) -> int:
        """Earliest start time."""
        return self.start.min

    @property
    def lst(self) -> int:
        """Latest start time."""
        return self.start.max

    @property
    def ect(self) -> int:
        """Earliest completion time."""
        return self.start.min + self.length

    @property
    def lct(self) -> int:
        """Latest completion time."""
        return self.start.max + self.length

    @property
    def start_fixed(self) -> bool:
        return self.start.is_fixed

    @property
    def has_compulsory_part(self) -> bool:
        """True when some execution window is occupied in *every* placement.

        The compulsory part is ``[lst, ect)``; it is non-empty iff lst < ect.
        Only *present* intervals contribute compulsory parts to cumulative
        profiles.
        """
        return self.lst < self.ect

    def set_start_min(self, v: int, engine: "Engine") -> bool:
        """Raise the earliest start (est)."""
        return self.start.set_min(v, engine)

    def set_start_max(self, v: int, engine: "Engine") -> bool:
        """Lower the latest start (lst)."""
        return self.start.set_max(v, engine)

    def set_end_max(self, v: int, engine: "Engine") -> bool:
        """Impose a due date: end <= v."""
        return self.start.set_max(v - self.length, engine)

    def set_end_min(self, v: int, engine: "Engine") -> bool:
        """Impose a minimum completion: end >= v."""
        return self.start.set_min(v - self.length, engine)

    def fix_start(self, v: int, engine: "Engine") -> bool:
        """Assign the start time outright."""
        return self.start.fix(v, engine)

    # ----------------------------------------------------------- subscription
    def watch_start(
        self,
        prop: "Propagator",
        events: int = ANY_EVENT,
        token: object = None,
    ) -> None:
        """Subscribe ``prop`` to start-bound events of this interval."""
        self.start.watch(prop, events, token)

    def watch_presence(
        self,
        prop: "Propagator",
        events: int = FIX_EVENT,
        token: object = None,
    ) -> None:
        """Subscribe ``prop`` to presence decisions (no-op when mandatory)."""
        if self.presence is not None:
            self.presence.domain.watch(prop, events, token)

    def __repr__(self) -> str:
        pres = ""
        if self.presence is not None:
            if self.is_present:
                pres = "!"
            elif self.is_absent:
                pres = "×"
            else:
                pres = "?"
        return f"IntervalVar({self.name}{pres} start∈[{self.est},{self.lst}] len={self.length})"
