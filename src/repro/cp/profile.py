"""Resource usage profiles over time (the *time-table*).

Both the cumulative propagator and the list-scheduling heuristics need the
same primitive: a step function ``height(t)`` recording how much of a
resource's capacity is consumed at each instant, plus an *earliest fit* query
("from time ``est`` on, where is the first slot of ``length`` units where an
extra ``demand`` still fits under ``capacity``?").

The profile is kept as a sorted list of breakpoints; segments between
consecutive breakpoints have constant height.  Fit queries bisect to the
piece containing the candidate start and sweep only the pieces overlapping
the placement window, against a lazily rebuilt prefix-sum ``heights`` array
(one C-speed :func:`itertools.accumulate` per mutation batch) -- the
dominant cost of list scheduling before this was rebuilding segment tuples
and sweeping every segment from time zero on every query.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import accumulate
from typing import Iterable, List, Optional, Tuple

#: A maximal constant-height piece of the profile: (start, end, height).
Segment = Tuple[int, int, int]


class TimetableProfile:
    """A mutable step function built from half-open usage intervals."""

    __slots__ = ("_times", "_deltas", "_heights", "_segments_cache")

    def __init__(self) -> None:
        self._times: List[int] = []
        self._deltas: List[int] = []
        #: Prefix sums of ``_deltas`` (``_heights[i]`` = height over
        #: ``[_times[i], _times[i+1])``); rebuilt lazily after mutations.
        self._heights: Optional[List[int]] = None
        #: Memoised segments(); rebuilt lazily after mutations.
        self._segments_cache: Optional[List[Segment]] = None

    def add(self, start: int, end: int, demand: int) -> None:
        """Consume ``demand`` units over ``[start, end)``.

        The prefix-sum ``_heights`` array, when already materialised, is
        patched in place: only the pieces overlapping ``[start, end)`` are
        touched, so interleaved fit/add sequences (list scheduling places
        one task, then queries again) stay far from the O(n) full rebuild.
        """
        if end <= start or demand == 0:
            return
        self._segments_cache = None
        times = self._times
        deltas = self._deltas
        h = self._heights
        i = bisect_left(times, start)
        start_merged_left = False
        if i < len(times) and times[i] == start:
            d = deltas[i] + demand
            if d:
                deltas[i] = d
            else:
                del times[i]
                del deltas[i]
                if h is not None:
                    del h[i]
                i -= 1  # the piece merged into its left neighbour
                start_merged_left = True
            lo = i + 1 if start_merged_left else i
        else:
            times.insert(i, start)
            deltas.insert(i, demand)
            if h is not None:
                # Pre-update height of the piece being split.
                h.insert(i, h[i - 1] if i > 0 else 0)
            lo = i
        j = bisect_left(times, end, i + 1 if i >= 0 else 0)
        if j < len(times) and times[j] == end:
            d = deltas[j] - demand
            if d:
                deltas[j] = d
            else:
                del times[j]
                del deltas[j]
                if h is not None:
                    del h[j]
        else:
            times.insert(j, end)
            deltas.insert(j, -demand)
            if h is not None:
                if start_merged_left and j == i + 1:
                    # ``end`` splits the piece whose left breakpoint just
                    # cancel-merged away: its pre-update height is the left
                    # neighbour's height minus the cancelled delta.
                    split_h = (h[i] if i >= 0 else 0) - demand
                else:
                    split_h = h[j - 1] if j > 0 else 0
                h.insert(j, split_h)
        if h is not None:
            for k in range(lo, j):
                h[k] += demand

    def remove(self, start: int, end: int, demand: int) -> None:
        """Release ``demand`` units over ``[start, end)`` (inverse of add)."""
        self.add(start, end, -demand)

    # ------------------------------------------------------------- queries
    def _height_array(self) -> List[int]:
        heights = self._heights
        if heights is None:
            heights = self._heights = list(accumulate(self._deltas))
        return heights

    def segments(self) -> List[Segment]:
        """Non-zero-height maximal segments, sorted by time (cached)."""
        if self._segments_cache is not None:
            return self._segments_cache
        segs: List[Segment] = []
        height = 0
        prev: Optional[int] = None
        for t, d in zip(self._times, self._deltas):
            if prev is not None and height != 0 and t > prev:
                segs.append((prev, t, height))
            height += d
            prev = t
        self._segments_cache = segs
        return segs

    def height_at(self, t: int) -> int:
        """Profile height at instant ``t``."""
        i = bisect_right(self._times, t) - 1
        if i < 0:
            return 0
        return self._height_array()[i]

    def max_height(self) -> int:
        """Peak height of the profile over all time."""
        heights = self._height_array()
        if not heights:
            return 0
        best = max(heights)
        return best if best > 0 else 0

    def earliest_fit(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[int]:
        """First start ``s`` in ``[est, lst]`` where the task fits, else None.

        A zero-length or zero-demand task always fits at ``est``.
        """
        if length == 0 or demand == 0:
            return est
        times = self._times
        n = len(times)
        s = est
        if n:
            heights = self._height_array()
            limit = capacity - demand
            # Piece i covers [times[i], times[i+1]); start at the piece
            # containing s (earlier pieces end at or before s).
            i = bisect_right(times, s) - 1
            if i < 0:
                i = 0
            last = n - 1  # the open piece [times[-1], inf) has height 0
            while i < last:
                if times[i] >= s + length:
                    break
                h = heights[i]
                if h != 0 and h > limit:
                    b = times[i + 1]
                    if b > s:
                        s = b
                        if s > lst:
                            return None
                i += 1
        return s if s <= lst else None

    def fit_bounds(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[Tuple[int, int]]:
        """``(earliest_fit, latest_fit)`` in one sweep setup, or None.

        Exactly equivalent to calling :meth:`earliest_fit` then
        :meth:`latest_fit`, but the propagator hot loop pays the call and
        bisect setup once.  Returns None when no placement fits (both
        queries fail together: a feasible placement exists iff either
        sweep finds one).
        """
        if length == 0 or demand == 0:
            return est, lst
        times = self._times
        n = len(times)
        if not n:
            return est, lst
        heights = self._heights
        if heights is None:
            heights = self._heights = list(accumulate(self._deltas))
        limit = capacity - demand
        s = est
        i = bisect_right(times, s) - 1
        if i < 0:
            i = 0
        last = n - 1
        while i < last:
            if times[i] >= s + length:
                break
            h = heights[i]
            if h != 0 and h > limit:
                b = times[i + 1]
                if b > s:
                    s = b
                    if s > lst:
                        return None
            i += 1
        if s > lst:
            return None
        early = s
        s = lst
        i = bisect_left(times, s + length) - 1
        if i > n - 2:
            i = n - 2
        while i >= 0:
            if times[i] >= s + length:
                i -= 1
                continue
            if times[i + 1] <= s:
                break
            h = heights[i]
            if h != 0 and h > limit:
                s = times[i] - length
                if s < est:
                    # Unreachable when the earliest sweep succeeded (a
                    # feasible placement bounds the latest sweep from
                    # below); surface the inverted window to the caller
                    # rather than masking it as "no placement".
                    return early, s
            i -= 1
        return early, s

    def place_earliest(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[int]:
        """:meth:`earliest_fit` + :meth:`add` in one call (list-scheduler hot
        path); returns the chosen start, or None (profile untouched)."""
        s = self.earliest_fit(est, lst, length, demand, capacity)
        if s is not None:
            self.add(s, s + length, demand)
        return s

    def latest_fit(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[int]:
        """Last start ``s`` in ``[est, lst]`` where the task fits, else None."""
        if length == 0 or demand == 0:
            return lst
        times = self._times
        n = len(times)
        s = lst
        if n:
            heights = self._height_array()
            limit = capacity - demand
            # Sweep right-to-left from the last piece starting before the
            # placement window's end.
            i = bisect_left(times, s + length) - 1
            if i > n - 2:
                i = n - 2
            while i >= 0:
                if times[i] >= s + length:
                    i -= 1
                    continue
                if times[i + 1] <= s:
                    break
                h = heights[i]
                if h != 0 and h > limit:
                    s = times[i] - length
                    if s < est:
                        return None
                i -= 1
        return s if s >= est else None


def earliest_fit_in_segments(
    segments: Iterable[Segment],
    est: int,
    lst: int,
    length: int,
    demand: int,
    capacity: int,
) -> Optional[int]:
    """Sweep ``segments`` (sorted) for the earliest conflict-free placement.

    The candidate start only ever moves right, so one pass suffices.
    """
    s = est
    for a, b, h in segments:
        if b <= s:
            continue
        if a >= s + length:
            break
        if h + demand > capacity:
            s = b
            if s > lst:
                return None
    return s if s <= lst else None


def latest_fit_in_segments(
    segments: List[Segment],
    est: int,
    lst: int,
    length: int,
    demand: int,
    capacity: int,
) -> Optional[int]:
    """Mirror of :func:`earliest_fit_in_segments`, sweeping right-to-left."""
    s = lst
    for a, b, h in reversed(segments):
        if a >= s + length:
            continue
        if b <= s:
            break
        if h + demand > capacity:
            s = a - length
            if s < est:
                return None
    return s if s >= est else None
