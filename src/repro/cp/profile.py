"""Resource usage profiles over time (the *time-table*).

Both the cumulative propagator and the list-scheduling heuristics need the
same primitive: a step function ``height(t)`` recording how much of a
resource's capacity is consumed at each instant, plus an *earliest fit* query
("from time ``est`` on, where is the first slot of ``length`` units where an
extra ``demand`` still fits under ``capacity``?").

The profile is kept as a sorted list of breakpoints; segments between
consecutive breakpoints have constant height.  All operations are O(n) in the
number of breakpoints, which is bounded by twice the number of contributing
tasks -- ample for the instance sizes the scheduler solves per invocation.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

#: A maximal constant-height piece of the profile: (start, end, height).
Segment = Tuple[int, int, int]


class TimetableProfile:
    """A mutable step function built from half-open usage intervals."""

    __slots__ = ("_times", "_deltas", "_segments_cache")

    def __init__(self) -> None:
        self._times: List[int] = []
        self._deltas: List[int] = []
        #: Memoised segments(); list-scheduling runs many fit queries
        #: between mutations, so caching turns O(n^2) rebuilds into O(n).
        self._segments_cache: Optional[List[Segment]] = None

    def add(self, start: int, end: int, demand: int) -> None:
        """Consume ``demand`` units over ``[start, end)``."""
        if end <= start or demand == 0:
            return
        self._segments_cache = None
        self._bump(start, demand)
        self._bump(end, -demand)

    def _bump(self, t: int, delta: int) -> None:
        i = bisect.bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            self._deltas[i] += delta
            if self._deltas[i] == 0:
                del self._times[i]
                del self._deltas[i]
        else:
            self._times.insert(i, t)
            self._deltas.insert(i, delta)

    # ------------------------------------------------------------- queries
    def segments(self) -> List[Segment]:
        """Non-zero-height maximal segments, sorted by time (cached)."""
        if self._segments_cache is not None:
            return self._segments_cache
        segs: List[Segment] = []
        height = 0
        prev: Optional[int] = None
        for t, d in zip(self._times, self._deltas):
            if prev is not None and height != 0 and t > prev:
                segs.append((prev, t, height))
            height += d
            prev = t
        self._segments_cache = segs
        return segs

    def height_at(self, t: int) -> int:
        """Profile height at instant ``t``."""
        height = 0
        for tt, d in zip(self._times, self._deltas):
            if tt > t:
                break
            height += d
        return height

    def max_height(self) -> int:
        """Peak height of the profile over all time."""
        height = 0
        best = 0
        for d in self._deltas:
            height += d
            if height > best:
                best = height
        return best

    def earliest_fit(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[int]:
        """First start ``s`` in ``[est, lst]`` where the task fits, else None.

        A zero-length or zero-demand task always fits at ``est``.
        """
        if length == 0 or demand == 0:
            return est
        return earliest_fit_in_segments(
            self.segments(), est, lst, length, demand, capacity
        )

    def latest_fit(
        self,
        est: int,
        lst: int,
        length: int,
        demand: int,
        capacity: int,
    ) -> Optional[int]:
        """Last start ``s`` in ``[est, lst]`` where the task fits, else None."""
        if length == 0 or demand == 0:
            return lst
        return latest_fit_in_segments(
            self.segments(), est, lst, length, demand, capacity
        )


def earliest_fit_in_segments(
    segments: Iterable[Segment],
    est: int,
    lst: int,
    length: int,
    demand: int,
    capacity: int,
) -> Optional[int]:
    """Sweep ``segments`` (sorted) for the earliest conflict-free placement.

    The candidate start only ever moves right, so one pass suffices.
    """
    s = est
    for a, b, h in segments:
        if b <= s:
            continue
        if a >= s + length:
            break
        if h + demand > capacity:
            s = b
            if s > lst:
                return None
    return s if s <= lst else None


def latest_fit_in_segments(
    segments: List[Segment],
    est: int,
    lst: int,
    length: int,
    demand: int,
    capacity: int,
) -> Optional[int]:
    """Mirror of :func:`earliest_fit_in_segments`, sweeping right-to-left."""
    s = lst
    for a, b, h in reversed(segments):
        if a >= s + length:
            continue
        if b <= s:
            break
        if h + demand > capacity:
            s = a - length
            if s < est:
                return None
    return s if s >= est else None
