"""Independent solution validation.

Every solution the solver surfaces -- from the warm-start heuristic, the tree
search or LNS -- can be validated against the *declarative* model: start
windows, barriers, precedences, alternatives, cumulative capacities and the
reported objective.  The checker shares no propagation code with the solver
(it rebuilds profiles from scratch), so it doubles as the oracle for
property-based tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cp.model import CpModel
from repro.cp.profile import TimetableProfile
from repro.cp.solution import Solution
from repro.cp.variables import IntervalVar


def check_solution(model: CpModel, sol: Solution) -> List[str]:
    """Return a list of violation messages (empty = valid)."""
    violations: List[str] = []
    windows = model.original_windows

    # --- every mandatory interval has a start inside its pristine window
    for iv in model.intervals:
        if iv not in sol.starts:
            violations.append(f"missing start for {iv.name}")
            continue
        s = sol.starts[iv]
        est, lst = windows.get(iv, (iv.est, iv.lst))
        if not (est <= s <= lst):
            violations.append(
                f"{iv.name}: start {s} outside window [{est}, {lst}]"
            )
    if violations:
        return violations  # later checks need complete starts

    # --- alternatives: exactly one option chosen, belonging to the spec
    option_to_master: Dict[IntervalVar, IntervalVar] = {}
    for alt in model.alternatives:
        chosen = sol.choices.get(alt.master)
        if chosen is None:
            violations.append(f"{alt.name}: no option chosen")
            continue
        if chosen not in alt.options:
            violations.append(
                f"{alt.name}: chosen interval {chosen.name} is not an option"
            )
            continue
        option_to_master[chosen] = alt.master

    # --- cumulative capacities
    for spec in model.cumulatives:
        profile = TimetableProfile()
        for iv, demand in zip(spec.intervals, spec.demands):
            if iv.is_optional:
                master = option_to_master.get(iv)
                if master is None:
                    continue  # option not chosen -> absent
                s = sol.starts[master]
            else:
                s = sol.starts[iv]
            profile.add(s, s + iv.length, demand)
        peak = profile.max_height()
        if peak > spec.capacity:
            violations.append(
                f"{spec.name}: peak usage {peak} exceeds capacity {spec.capacity}"
            )

    # --- barriers (map -> reduce / workflow edges, with transfer delays)
    for b in model.barriers:
        if not b.first or not b.second:
            continue
        end_first = max(sol.starts[iv] + iv.length for iv in b.first)
        start_second = min(sol.starts[iv] for iv in b.second)
        if start_second < end_first + b.delay:
            violations.append(
                f"{b.name or 'barrier'}: second stage starts {start_second} "
                f"before first stage ends {end_first} (+ delay {b.delay})"
            )

    # --- generic precedences
    for p in model.precedences:
        if sol.starts[p.a] + p.a.length + p.delay > sol.starts[p.b]:
            violations.append(
                f"precedence {p.a.name} -> {p.b.name} violated"
            )

    # --- objective consistency
    if model.objective_bools is not None and sol.objective is not None:
        actual = sol.evaluate_objective(model)
        if actual != sol.objective:
            violations.append(
                f"objective {sol.objective} != recomputed late count {actual}"
            )

    return violations


def assert_valid(model: CpModel, sol: Solution) -> None:
    """Raise AssertionError with details if the solution is invalid."""
    violations = check_solution(model, sol)
    if violations:
        raise AssertionError(
            "invalid solution:\n  " + "\n  ".join(violations)
        )
