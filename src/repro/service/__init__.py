"""Scheduling-as-a-service: the online admission-control front-end.

The paper's core loop -- on each job arrival, solve the CP matchmaking /
scheduling model and decide whether the job's SLA deadline can be met --
is exactly an admission-control service.  This package lifts that loop out
of the simulator and serves it against wall-clock traffic:

* :mod:`repro.service.schemas` -- typed request/response payloads
  (``JobSpec`` in, ``SlaQuote`` / ``JobStatus`` out) with strict JSON
  round-tripping under the ``repro-service/1`` schema.
* :mod:`repro.service.batching` -- the arrival-batching stage: bursts are
  coalesced into one re-plan pass, bounded by batch size and hold time,
  with overload shedding above a pending ceiling.
* :mod:`repro.service.admission` -- the admission controller: a
  schedule-once planner built on the shared scheduler invocation API
  (:mod:`repro.core.invocation`), solving every quote through the
  resilience degradation ladder.
* :mod:`repro.service.server` -- the asyncio front-end: in-process async
  API plus a dependency-free HTTP endpoint (``/submit``, ``/status``,
  ``/cancel``, ``/metrics``, ``/health``, ``/shutdown``).
* :mod:`repro.service.loadgen` -- the deterministic in-process load
  harness and the open-loop HTTP load generator behind
  ``mrcp-rm loadtest``.
* :mod:`repro.service.fastapi_adapter` -- optional FastAPI application
  factory (install the ``[service]`` extra); the stdlib server above is
  the zero-dependency default.

Everything here runs on injectable clocks (:mod:`repro.obs.clocks`): a
manual service clock plus a pinned wall clock make admission verdicts --
and therefore the load-test bench cases -- byte-for-byte replayable.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.batching import ArrivalBatcher, BatchingConfig
from repro.service.schemas import (
    SERVICE_SCHEMA,
    JobSpec,
    JobStatus,
    SlaQuote,
)
from repro.service.server import SchedulerService, ServiceConfig

__all__ = [
    "SERVICE_SCHEMA",
    "JobSpec",
    "SlaQuote",
    "JobStatus",
    "BatchingConfig",
    "ArrivalBatcher",
    "AdmissionConfig",
    "AdmissionController",
    "ServiceConfig",
    "SchedulerService",
]
