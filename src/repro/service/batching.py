"""Arrival batching: coalesce bursts into one planning pass.

A CP solve per arrival is wasteful under bursty traffic -- the paper's
Table 2 algorithm already re-plans *all* open jobs on each arrival, so
ten arrivals in one tick should cost one pass, not ten.  The batcher
holds submissions briefly and releases them when either bound trips:

* ``max_batch_size`` -- a full batch flushes immediately;
* ``max_hold_seconds`` -- the oldest pending submission never waits
  longer than this, bounding worst-case admission latency.

Above ``max_pending`` queued submissions the batcher *sheds*: `offer`
refuses the entry and the service rejects it outright with reason
``overload_shed``, keeping quoting latency bounded under overload
instead of letting the queue grow without limit.

Determinism note: the batcher orders entries by submission sequence, and
the admission controller anchors each candidate's solve at its *own*
arrival tick (see :mod:`repro.service.admission`) -- which is why batch
size never changes a verdict, only how long the client waits for it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.service.schemas import JobSpec


@dataclass(frozen=True)
class BatchingConfig:
    """Bounds of the arrival-batching stage."""

    #: A batch this full flushes immediately.
    max_batch_size: int = 8
    #: Maximum service-clock seconds the oldest entry may be held.
    max_hold_seconds: float = 0.05
    #: Queue ceiling; offers beyond it are shed (reason ``overload_shed``).
    max_pending: int = 256
    #: Pending depth at which solves start at the ``cp_limited`` rung.
    overload_queue_depth: int = 32

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_hold_seconds < 0:
            raise ValueError("max_hold_seconds must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")


@dataclass(frozen=True)
class PendingSubmission:
    """One queued submission with its service-clock arrival."""

    spec: JobSpec
    #: Service-clock time the submission was offered (seconds, float).
    offered_at: float
    #: Monotone submission sequence number (total order within the service).
    seq: int


class ArrivalBatcher:
    """FIFO hold queue with size/hold-time flush bounds and a shed ceiling."""

    def __init__(self, config: Optional[BatchingConfig] = None) -> None:
        self.config = config or BatchingConfig()
        self._pending: "OrderedDict[str, PendingSubmission]" = OrderedDict()
        self.shed_total = 0
        self.flushed_total = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._pending

    @property
    def overloaded(self) -> bool:
        """Whether queue depth warrants starting solves at ``cp_limited``."""
        return len(self._pending) >= self.config.overload_queue_depth

    def offer(self, spec: JobSpec, now: float, seq: int) -> bool:
        """Queue a submission; False means it was shed (queue full)."""
        if len(self._pending) >= self.config.max_pending:
            self.shed_total += 1
            return False
        self._pending[spec.job_id] = PendingSubmission(spec, now, seq)
        return True

    def cancel(self, job_id: str) -> bool:
        """Drop a still-pending submission (cancel-before-plan)."""
        return self._pending.pop(job_id, None) is not None

    def due_at(self) -> Optional[float]:
        """Service time the next flush is due, or None when idle.

        A full batch is due immediately (returns the oldest offer time);
        otherwise the oldest entry's hold deadline.
        """
        if not self._pending:
            return None
        oldest = next(iter(self._pending.values()))
        if len(self._pending) >= self.config.max_batch_size:
            return oldest.offered_at
        return oldest.offered_at + self.config.max_hold_seconds

    def flush_due(self, now: float) -> List[PendingSubmission]:
        """Release up to one batch if a bound has tripped at ``now``."""
        due = self.due_at()
        if due is None or now < due:
            return []
        return self._take(self.config.max_batch_size)

    def flush_all(self, limit: Optional[int] = None) -> List[PendingSubmission]:
        """Release everything pending (shutdown drain), in batches."""
        return self._take(limit if limit is not None else len(self._pending))

    def _take(self, count: int) -> List[PendingSubmission]:
        batch: List[PendingSubmission] = []
        while self._pending and len(batch) < count:
            _, entry = self._pending.popitem(last=False)
            batch.append(entry)
        # Entries are queued in seq order already (OrderedDict FIFO), but
        # sort defensively: the admission order is part of the determinism
        # contract and must not depend on dict internals.
        batch.sort(key=lambda e: e.seq)
        self.flushed_total += len(batch)
        return batch
