"""Optional FastAPI adapter over :class:`~repro.service.server.SchedulerService`.

The core service is dependency-free (stdlib asyncio HTTP).  Deployments
that want OpenAPI docs, middleware, or an ASGI stack can install the
``[service]`` extra (``pip install .[service]``) and mount this app:

    from repro.service.fastapi_adapter import create_app
    app = create_app()          # then: uvicorn module:app

Import of this module *without* FastAPI installed raises a clear
:class:`RuntimeError` at app-creation time, not at import time, so the
rest of :mod:`repro.service` stays importable everywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.service.server import SchedulerService, ServiceConfig
from repro.workload.entities import Resource

try:  # pragma: no cover - exercised only with the [service] extra installed
    from fastapi import FastAPI, HTTPException

    _FASTAPI_AVAILABLE = True
except ImportError:  # pragma: no cover
    FastAPI = None  # type: ignore[assignment]
    HTTPException = None  # type: ignore[assignment]
    _FASTAPI_AVAILABLE = False


def fastapi_available() -> bool:
    """Whether the optional FastAPI dependency is importable."""
    return _FASTAPI_AVAILABLE


def create_app(
    resources: Optional[Sequence[Resource]] = None,
    config: Optional[ServiceConfig] = None,
):  # pragma: no cover - thin adapter; covered by the stdlib server tests
    """Build a FastAPI app exposing the same routes as the stdlib server."""
    if not _FASTAPI_AVAILABLE:
        raise RuntimeError(
            "FastAPI is not installed; install the [service] extra "
            "(pip install 'mrcp-rm[service]') or use the built-in stdlib "
            "server (mrcp-rm serve)."
        )
    service = SchedulerService(resources=resources, config=config)
    app = FastAPI(title="mrcp-rm admission service", version="1.0")
    app.state.service = service

    @app.on_event("startup")
    async def _start() -> None:
        await service.start()

    @app.on_event("shutdown")
    async def _stop() -> None:
        await service.close()

    @app.post("/submit")
    async def submit(payload: dict) -> dict:
        quote = await service.submit(payload)
        return quote.as_dict()

    @app.get("/status/{job_id}")
    async def status(job_id: str) -> dict:
        snapshot = service.status_sync(job_id)
        if snapshot is None:
            raise HTTPException(status_code=404, detail="unknown job")
        return snapshot.as_dict()

    @app.post("/cancel/{job_id}")
    async def cancel(job_id: str) -> dict:
        return {"cancelled": await service.cancel(job_id)}

    @app.get("/metrics")
    async def metrics() -> str:
        return service.metrics_text()

    @app.get("/health")
    async def health() -> dict:
        return service.health()

    return app
