"""The admission controller: schedule-once SLA quoting.

Where the simulator's :class:`~repro.core.mrcp_rm.MrcpRm` re-plans every
open job on each arrival (Table 2), the service quotes each candidate
*once* against the already-committed plan:

1. evict committed assignments that finished before the candidate's
   arrival tick (their slots are free again);
2. solve the Table 1 model with **only the candidate's tasks movable**
   and every committed assignment frozen -- a small, fast model solved
   through the degradation ladder with a tight fail limit;
3. admit iff the predicted completion meets the deadline, and if so
   commit the candidate's assignments so later quotes plan around them.

The schedule-once discipline is what makes a quote a *promise*: admitted
work is never re-planned, so a later burst cannot invalidate an earlier
quote.  The price is conservatism -- a job rejected now might have fit
had everything been re-packed -- which is the classic admission-control
trade (see docs/SERVICE.md for the comparison with the simulator loop).

Determinism: every candidate is solved at ``now = ceil(arrival)`` of
*its own* arrival, in submission order.  Batching upstream changes how
many candidates share one flush, never the ``now`` each one sees --
hence verdicts are invariant under batch size (property-tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.formulation import FormulationMode
from repro.core.invocation import solve_invocation, extract_assignments
from repro.core.schedule import SchedulingError, TaskAssignment
from repro.cp.solver import CpSolver, SolverParams
from repro.obs.logs import get_logger, kv
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.resilience.breaker import DegradationLadder, LadderConfig
from repro.service.schemas import (
    ADMITTED,
    CANCELLED,
    COMPLETED,
    REJECTED,
    JobSpec,
    JobStatus,
    SlaQuote,
)
from repro.workload.entities import Resource

_LOG = get_logger("service.admission")

#: Admission-latency buckets (milliseconds): quoting is a sub-second
#: operation by design, so the buckets resolve the 1ms..1s range.
ADMISSION_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0,
)


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the quoting solve (not of the batching stage)."""

    #: Formulation mode for quote solves (combined = Section V.D path).
    mode: FormulationMode = FormulationMode.COMBINED
    #: Solver budget per quote.  Deliberately tight: a quote must be fast,
    #: and the ladder's lower rungs catch the hard instances.
    solver_params: SolverParams = field(
        default_factory=lambda: SolverParams(
            time_limit=1.0, tree_fail_limit=200, use_lns=False
        )
    )
    ladder: LadderConfig = field(default_factory=LadderConfig)


@dataclass
class _CommittedJob:
    """Book-keeping for one admitted job."""

    spec: JobSpec
    quote: SlaQuote
    assignments: List[TaskAssignment]
    cancelled: bool = False


class AdmissionController:
    """Quotes submissions against the committed plan (single-threaded).

    The controller is synchronous and owns no clock of its own: callers
    hand in the candidate's service-time arrival.  ``wall_clock`` is only
    used to measure per-quote solve latency and is injectable so bench
    replays can pin it (:class:`repro.obs.clocks.PinnedClock`).
    """

    def __init__(
        self,
        resources: Sequence[Resource],
        config: Optional[AdmissionConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not resources:
            raise ValueError("admission needs at least one resource")
        self.resources = list(resources)
        self.config = config or AdmissionConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.wall_clock = wall_clock or time.perf_counter
        self._solver = CpSolver(self.config.solver_params)
        self._ladder = DegradationLadder(self.config.ladder, self._solver)
        self._jobs: Dict[str, _CommittedJob] = {}
        self._rejected: Dict[str, SlaQuote] = {}
        self._next_numeric_id = 1
        self._m_requests = self.registry.counter("service.requests")
        self._m_admitted = self.registry.counter("service.admitted")
        self._m_rejected = self.registry.counter("service.rejected")
        self._m_shed = self.registry.counter("service.shed")
        self._m_committed = self.registry.gauge("service.committed_jobs")
        self._m_latency = self.registry.histogram(
            "service.admission_latency_ms", ADMISSION_LATENCY_BUCKETS_MS
        )

    # ------------------------------------------------------------- quoting
    def quote(
        self, spec: JobSpec, arrival: float, start_rung: str = "cp_full"
    ) -> SlaQuote:
        """Quote one submission arriving at service time ``arrival``.

        ``start_rung`` is the overload fast-path: the server passes
        ``cp_limited`` when its queue is deep, skipping the full solve.
        """
        t0 = self.wall_clock()
        now = int(ceil(arrival))
        self._m_requests.inc()
        if spec.job_id in self._jobs or spec.job_id in self._rejected:
            quote = self._finish(
                spec, False, "duplicate", None, None, "none", now, t0
            )
            return quote
        self._evict_completed(now)
        frozen = self._frozen_assignments()
        candidate = spec.to_job(self._next_numeric_id, now)
        try:
            outcome, formulation = solve_invocation(
                [candidate],
                self.resources,
                now,
                running=frozen,
                mode=self.config.mode,
                solver=self._solver,
                ladder=self._ladder,
                start_rung=start_rung,
            )
        except SchedulingError as exc:
            # The frozen plan itself became unplaceable (should not happen
            # under schedule-once; reject rather than crash the service).
            _LOG.warning("quote solve failed %s", kv(job=spec.job_id, err=str(exc)))
            return self._finish(
                spec, False, "infeasible", None, None, "none", now, t0
            )
        if not outcome:
            return self._finish(
                spec, False, "infeasible", None, None, outcome.rung, now, t0
            )
        try:
            complete = extract_assignments(
                formulation, outcome.solution, frozen, self.resources
            )
        except SchedulingError as exc:
            _LOG.warning(
                "decomposition failed %s", kv(job=spec.job_id, err=str(exc))
            )
            return self._finish(
                spec, False, "infeasible", None, None, outcome.rung, now, t0
            )
        candidate_ids = {t.id for t in candidate.tasks}
        mine = [a for a in complete if a.task.id in candidate_ids]
        completion = max(a.start + a.task.duration for a in mine)
        if completion <= candidate.deadline:
            self._next_numeric_id += 1
            quote = self._finish(
                spec,
                True,
                "deadline_met",
                completion,
                candidate.deadline,
                outcome.rung,
                now,
                t0,
            )
            self._jobs[spec.job_id] = _CommittedJob(spec, quote, mine)
            self._m_committed.set(float(len(self._jobs)))
            return quote
        return self._finish(
            spec,
            False,
            "deadline_missed",
            completion,
            candidate.deadline,
            outcome.rung,
            now,
            t0,
        )

    def shed(self, spec: JobSpec, arrival: float) -> SlaQuote:
        """Reject without solving (batcher refused the submission)."""
        t0 = self.wall_clock()
        now = int(ceil(arrival))
        self._m_requests.inc()
        self._m_shed.inc()
        return self._finish(
            spec, False, "overload_shed", None, None, "none", now, t0
        )

    def invalid(self, job_id: str, arrival: float, error: str) -> SlaQuote:
        """Record a validation rejection (payload never reached the batcher)."""
        t0 = self.wall_clock()
        now = int(ceil(arrival))
        self._m_requests.inc()
        _LOG.warning("invalid submission %s", kv(job=job_id, err=error))
        return self._finish_id(job_id, "invalid", now, t0)

    def _finish_id(self, job_id: str, reason: str, now: int, t0: float) -> SlaQuote:
        solve_ms = (self.wall_clock() - t0) * 1000.0
        quote = SlaQuote(
            job_id=job_id,
            admitted=False,
            reason=reason,
            predicted_completion=None,
            deadline=None,
            rung="none",
            solve_ms=solve_ms,
            arrival=now,
        )
        self._m_rejected.inc()
        self._rejected.setdefault(job_id, quote)
        self._m_latency.observe(solve_ms)
        return quote

    def _finish(
        self,
        spec: JobSpec,
        admitted: bool,
        reason: str,
        completion: Optional[int],
        deadline: Optional[int],
        rung: str,
        now: int,
        t0: float,
    ) -> SlaQuote:
        solve_ms = (self.wall_clock() - t0) * 1000.0
        quote = SlaQuote(
            job_id=spec.job_id,
            admitted=admitted,
            reason=reason,
            predicted_completion=completion,
            deadline=deadline,
            rung=rung,
            solve_ms=solve_ms,
            arrival=now,
        )
        if admitted:
            self._m_admitted.inc()
        else:
            self._m_rejected.inc()
            if reason not in ("duplicate",):
                self._rejected[spec.job_id] = quote
        self._m_latency.observe(solve_ms)
        return quote

    # ------------------------------------------------------ committed plan
    def _frozen_assignments(self) -> List[TaskAssignment]:
        frozen: List[TaskAssignment] = []
        for job in self._jobs.values():
            if not job.cancelled:
                frozen.extend(job.assignments)
        return frozen

    def _evict_completed(self, now: int) -> None:
        """Release assignments whose tasks finished before ``now``."""
        done: List[str] = []
        for job_id, job in self._jobs.items():
            job.assignments = [
                a for a in job.assignments if a.start + a.task.duration > now
            ]
            if not job.assignments:
                done.append(job_id)
        # Fully-elapsed jobs stay queryable as COMPLETED but stop
        # occupying slots (they are dropped from the frozen set).
        for job_id in done:
            self._jobs[job_id].assignments = []

    # ------------------------------------------------------------ lifecycle
    def cancel(self, job_id: str, now: float) -> bool:
        """Cancel an admitted job: frees its remaining planned slots."""
        job = self._jobs.get(job_id)
        if job is None or job.cancelled:
            return False
        tick = int(ceil(now))
        if not job.assignments or all(
            a.start + a.task.duration <= tick for a in job.assignments
        ):
            return False  # already completed: nothing left to cancel
        job.cancelled = True
        job.assignments = []
        self._m_committed.set(
            float(sum(1 for j in self._jobs.values() if not j.cancelled))
        )
        return True

    def status(self, job_id: str, now: float) -> Optional[JobStatus]:
        """Lifecycle snapshot, or None for an unknown job."""
        tick = int(ceil(now))
        job = self._jobs.get(job_id)
        if job is not None:
            if job.cancelled:
                return JobStatus(job_id, CANCELLED, job.quote)
            remaining = [
                (a.task.id, a.start, a.start + a.task.duration)
                for a in job.assignments
                if a.start + a.task.duration > tick
            ]
            if not remaining and (
                job.quote.predicted_completion is None
                or job.quote.predicted_completion <= tick
            ):
                return JobStatus(job_id, COMPLETED, job.quote)
            return JobStatus(job_id, ADMITTED, job.quote, planned=remaining)
        quote = self._rejected.get(job_id)
        if quote is not None:
            return JobStatus(job_id, REJECTED, quote)
        return None

    @property
    def committed_count(self) -> int:
        return sum(1 for j in self._jobs.values() if not j.cancelled)
