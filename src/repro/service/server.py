"""The asyncio admission front-end and its dependency-free HTTP server.

:class:`SchedulerService` is layered deliberately:

* a **synchronous core** (``submit_sync`` / ``pump`` / ``cancel_sync`` /
  ``status_sync`` / ``drain``) that owns the batcher and the admission
  controller and never touches an event loop -- the deterministic
  in-process load harness (:mod:`repro.service.loadgen`) drives exactly
  this surface under a :class:`~repro.obs.clocks.ManualServiceClock`;
* an **asyncio shell** (``submit`` / ``cancel`` / ``close`` and the
  batch loop) that maps the core onto wall-clock time: submissions park
  on futures, one background task wakes at each batch deadline, and
  shutdown drains the queue so no submitter is left hanging;
* a **stdlib HTTP/1.1 endpoint** (``serve``) exposing the API as JSON
  over ``asyncio.start_server`` -- no third-party web framework, so the
  core install stays dependency-free (a FastAPI adapter lives behind the
  ``[service]`` extra in :mod:`repro.service.fastapi_adapter`).

Routes: ``POST /submit``, ``GET /status/<job>``, ``POST /cancel/<job>``,
``GET /metrics`` (OpenMetrics, reusing the PR 6 exporter), ``GET
/health``, ``POST /shutdown``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.clocks import ServiceClock, WallServiceClock
from repro.obs.logs import get_logger, kv
from repro.obs.metrics import MetricsRegistry
from repro.obs.export import render_openmetrics
from repro.obs.timeseries import WallSeriesSampler
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.batching import ArrivalBatcher, BatchingConfig, PendingSubmission
from repro.service.schemas import (
    PENDING,
    CANCELLED,
    JobSpec,
    JobStatus,
    SlaQuote,
    ValidationError,
)
from repro.workload.entities import Resource, make_uniform_cluster

_LOG = get_logger("service.server")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the front-end needs besides the cluster itself."""

    batching: BatchingConfig = field(default_factory=BatchingConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    host: str = "127.0.0.1"
    port: int = 8351


class SchedulerService:
    """Admission-control service around :class:`AdmissionController`.

    The sync core is single-threaded by construction: the asyncio shell
    serialises everything through one event loop, and the in-process
    loadgen calls it from one thread.  All timing flows through the
    injectable ``clock`` (service time axis) and the controller's
    ``wall_clock`` (latency measurement), which is what makes load-test
    bench cases replayable.
    """

    def __init__(
        self,
        resources: Optional[Sequence[Resource]] = None,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[ServiceClock] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        tracer: Optional[Tracer] = None,
        sampler: Optional[WallSeriesSampler] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock if clock is not None else WallServiceClock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.resources = list(resources) if resources else make_uniform_cluster(4)
        self.controller = AdmissionController(
            self.resources,
            self.config.admission,
            registry=self.registry,
            wall_clock=wall_clock,
        )
        self.batcher = ArrivalBatcher(self.config.batching)
        self._seq = 0
        self._precancelled: Dict[str, SlaQuote] = {}
        self._started_at = self.clock.now()
        self._m_pending = self.registry.gauge("service.pending")
        self._m_batches = self.registry.counter("service.batches")
        self.sampler = sampler
        if sampler is not None:
            sampler.add_probe("service.pending", lambda: float(len(self.batcher)))
            sampler.add_probe(
                "service.committed",
                lambda: float(self.controller.committed_count),
            )
        # asyncio shell state (unused on the pure-sync path):
        self._futures: Dict[str, "asyncio.Future[SlaQuote]"] = {}
        self._wake: Optional[asyncio.Event] = None
        self._loop_task: Optional["asyncio.Task[None]"] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._closing = False

    # ============================================================ sync core
    def _parse(self, payload) -> Tuple[Optional[JobSpec], Optional[SlaQuote]]:
        """(spec, None) for a valid submission, (None, quote) otherwise."""
        now = self.clock.now()
        if isinstance(payload, JobSpec):
            try:
                payload.validate()
                return payload, None
            except ValidationError as exc:
                return None, self.controller.invalid(payload.job_id, now, str(exc))
        job_id = "?"
        if isinstance(payload, dict):
            job_id = str(payload.get("job_id") or "?")
        try:
            return JobSpec.from_dict(payload), None
        except ValidationError as exc:
            return None, self.controller.invalid(job_id, now, str(exc))

    def submit_sync(self, payload) -> Optional[SlaQuote]:
        """Offer a submission to the batcher.

        Returns an immediate verdict for anything that never reaches the
        solver (invalid payloads, duplicates of queued work, overload
        shedding); returns ``None`` when the submission is queued -- its
        quote arrives from a later :meth:`pump`.
        """
        spec, verdict = self._parse(payload)
        if verdict is not None:
            return verdict
        assert spec is not None
        now = self.clock.now()
        if spec.job_id in self.batcher:
            return self.controller.invalid(
                spec.job_id, now, "already queued (duplicate submission)"
            )
        self._seq += 1
        if not self.batcher.offer(spec, now, self._seq):
            return self.controller.shed(spec, now)
        self._m_pending.set(float(len(self.batcher)))
        return None

    def _quote_batch(self, batch: List[PendingSubmission]) -> List[SlaQuote]:
        """Quote one flushed batch in submission order.

        The overload fast-path is decided per flush: with the queue still
        deep after taking this batch, every quote in it starts the ladder
        at ``cp_limited`` (skipping the full solve keeps latency bounded
        while the backlog drains).
        """
        if not batch:
            return []
        self._m_batches.inc()
        start_rung = "cp_limited" if self.batcher.overloaded else "cp_full"
        quotes: List[SlaQuote] = []
        with self.tracer.span(
            "service.batch", "service", {"size": len(batch), "rung": start_rung}
        ) as span:
            for entry in batch:
                quotes.append(
                    self.controller.quote(
                        entry.spec, entry.offered_at, start_rung=start_rung
                    )
                )
            if self.tracer.enabled:
                span.add(admitted=sum(1 for q in quotes if q.admitted))
        self._m_pending.set(float(len(self.batcher)))
        return quotes

    def pump(self) -> List[SlaQuote]:
        """Flush every due batch at the current service time (sync driver)."""
        quotes: List[SlaQuote] = []
        while True:
            now = self.clock.now()
            if self.sampler is not None:
                self.sampler.maybe_sample(now)
            batch = self.batcher.flush_due(now)
            if not batch:
                return quotes
            quotes.extend(self._quote_batch(batch))

    def drain(self) -> List[SlaQuote]:
        """Quote everything still queued (shutdown path)."""
        quotes: List[SlaQuote] = []
        while len(self.batcher):
            quotes.extend(
                self._quote_batch(
                    self.batcher.flush_all(self.config.batching.max_batch_size)
                )
            )
        return quotes

    def cancel_sync(self, job_id: str) -> bool:
        """Cancel queued or admitted work; False when there is nothing to."""
        now = self.clock.now()
        if self.batcher.cancel(job_id):
            # Cancel-before-plan: the job never reached the solver.
            self._precancelled[job_id] = SlaQuote(
                job_id=job_id,
                admitted=False,
                reason="cancelled",
                predicted_completion=None,
                deadline=None,
                rung="none",
                solve_ms=0.0,
                arrival=int(ceil(now)),
            )
            self._m_pending.set(float(len(self.batcher)))
            return True
        return self.controller.cancel(job_id, now)

    def status_sync(self, job_id: str) -> Optional[JobStatus]:
        """Lifecycle snapshot, or None for a job the service never saw."""
        if job_id in self.batcher:
            return JobStatus(job_id, PENDING)
        pre = self._precancelled.get(job_id)
        if pre is not None:
            return JobStatus(job_id, CANCELLED, pre)
        return self.controller.status(job_id, self.clock.now())

    def metrics_text(self) -> str:
        """The OpenMetrics exposition of the service registry."""
        return render_openmetrics(self.registry)

    def health(self) -> Dict[str, object]:
        """Liveness payload for ``GET /health``."""
        return {
            "status": "closing" if self._closing else "ok",
            "uptime_seconds": round(self.clock.now() - self._started_at, 3),
            "pending": len(self.batcher),
            "committed": self.controller.committed_count,
            "shed_total": self.batcher.shed_total,
        }

    # ========================================================= asyncio shell
    async def start(self) -> None:
        """Start the background batch loop (idempotent)."""
        if self._loop_task is not None:
            return
        self._wake = asyncio.Event()
        self._closing = False
        self._loop_task = asyncio.create_task(
            self._run_batches(), name="service-batch-loop"
        )

    async def submit(self, payload) -> SlaQuote:
        """Submit and await the quote (resolves when its batch is planned)."""
        spec, verdict = self._parse(payload)
        if verdict is not None:
            return verdict
        assert spec is not None
        quote = self.submit_sync(spec)
        if quote is not None:
            return quote
        fut: "asyncio.Future[SlaQuote]" = asyncio.get_running_loop().create_future()
        self._futures[spec.job_id] = fut
        if self._wake is not None:
            self._wake.set()
        return await fut

    async def cancel(self, job_id: str) -> bool:
        """Cancel a job; a still-queued submitter resolves with reason ``cancelled``."""
        cancelled = self.cancel_sync(job_id)
        pre = self._precancelled.get(job_id)
        if pre is not None:
            self._resolve(pre)
        return cancelled

    def _resolve(self, quote: SlaQuote) -> None:
        fut = self._futures.pop(quote.job_id, None)
        if fut is not None and not fut.done():
            fut.set_result(quote)

    async def _run_batches(self) -> None:
        assert self._wake is not None
        while not self._closing:
            due = self.batcher.due_at()
            timeout = None
            if due is not None:
                timeout = max(0.0, due - self.clock.now())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if self._closing:
                break
            for quote in self.pump():
                self._resolve(quote)

    async def close(self) -> None:
        """Drain, stop the batch loop, and close the HTTP listener."""
        self._closing = True
        if self._wake is not None:
            self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        for quote in self.drain():
            self._resolve(quote)
        # Anyone still parked (e.g. cancelled entries that never quoted)
        # gets an explicit cancellation rather than a hang.
        for job_id, fut in list(self._futures.items()):
            if not fut.done():
                fut.cancel()
            self._futures.pop(job_id, None)
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        _LOG.info("service closed %s", kv(committed=self.controller.committed_count))

    # ============================================================ HTTP layer
    async def serve(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> None:
        """Run the HTTP endpoint until ``POST /shutdown`` (or cancellation)."""
        await self.start()
        self._shutdown_requested = asyncio.Event()
        self._http_server = await asyncio.start_server(
            self._handle_connection,
            host if host is not None else self.config.host,
            port if port is not None else self.config.port,
        )
        addr = self._http_server.sockets[0].getsockname()
        _LOG.info("service listening %s", kv(host=addr[0], port=addr[1]))
        print(f"mrcp-rm service listening on http://{addr[0]}:{addr[1]}", flush=True)
        try:
            await self._shutdown_requested.wait()
        finally:
            await self.close()

    @property
    def bound_port(self) -> Optional[int]:
        """The actual listening port (useful with ``port=0`` in tests)."""
        if self._http_server is None or not self._http_server.sockets:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
            await _write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - defensive edge
            _LOG.warning("request failed %s", kv(err=str(exc)))
            try:
                await _write_response(writer, 500, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object]:
        if method == "POST" and path == "/submit":
            try:
                payload = json.loads(body.decode() or "{}")
            except json.JSONDecodeError as exc:
                return 400, {"error": f"bad JSON: {exc}"}
            quote = await self.submit(payload)
            return 200, quote.as_dict()
        if method == "GET" and path.startswith("/status/"):
            status = self.status_sync(path[len("/status/"):])
            if status is None:
                return 404, {"error": "unknown job"}
            return 200, status.as_dict()
        if method == "POST" and path.startswith("/cancel/"):
            ok = await self.cancel(path[len("/cancel/"):])
            return (200 if ok else 409), {"cancelled": ok}
        if method == "GET" and path == "/metrics":
            return 200, self.metrics_text()
        if method == "GET" and path == "/health":
            return 200, self.health()
        if method == "POST" and path == "/shutdown":
            if self._shutdown_requested is not None:
                self._shutdown_requested.set()
            return 200, {"status": "shutting down"}
        return 404, {"error": f"no route {method} {path}"}


# ------------------------------------------------------------- HTTP helpers
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one HTTP/1.1 request: (method, path, body)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    body = b""
    if content_length > 0:
        body = await reader.readexactly(content_length)
    return method, path, body


async def _write_response(
    writer: asyncio.StreamWriter, status: int, payload: object
) -> None:
    """Send one JSON (or plain-text) HTTP/1.1 response and flush."""
    if isinstance(payload, str):
        body = payload.encode()
        content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        content_type = "application/json"
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              409: "Conflict", 500: "Internal Server Error"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
