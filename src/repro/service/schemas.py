"""Typed request/response payloads of the admission service.

Everything crossing the service boundary is a plain dataclass with a
strict ``as_dict``/``from_dict`` JSON round trip under the
``repro-service/1`` schema tag.  Two invariants matter:

* **Validation happens at the edge.**  ``JobSpec.validate`` rejects
  malformed submissions (no tasks, non-positive durations, deadline at or
  before earliest start) before anything reaches the solver, so the
  admission controller only ever sees well-formed work.
* **Verdicts are canonical.**  ``SlaQuote.verdict_key`` is the quote with
  every wall-clock-dependent field (``solve_ms``) stripped; the batching
  determinism property and the load-test digest both hash this canonical
  form, which is what "byte-identical verdicts across batch sizes" means
  operationally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.entities import Job, Task, TaskKind

#: Schema tag embedded in every service payload.
SERVICE_SCHEMA = "repro-service/1"

#: Job lifecycle states reported by ``status``.
PENDING = "pending"        # accepted into the arrival batch, not yet planned
ADMITTED = "admitted"      # quoted: predicted completion <= deadline
REJECTED = "rejected"      # quoted: cannot meet the deadline (or shed/invalid)
CANCELLED = "cancelled"    # cancelled by the client before completion
COMPLETED = "completed"    # all committed work finished (service time passed)

_STATES = (PENDING, ADMITTED, REJECTED, CANCELLED, COMPLETED)


class ValidationError(ValueError):
    """A submission failed edge validation (maps to HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A client-submitted MapReduce job with its SLA.

    Durations are integer seconds on the service time axis;
    ``earliest_start`` and ``deadline`` are *relative* offsets from the
    job's arrival (the client does not know the service clock).
    """

    job_id: str
    map_durations: Tuple[int, ...]
    reduce_durations: Tuple[int, ...] = ()
    #: Seconds after arrival before the job may start (>= 0).
    earliest_start: int = 0
    #: Seconds after arrival by which the job must complete (> earliest_start).
    deadline: int = 0

    def validate(self) -> None:
        """Raise :class:`ValidationError` unless the spec is well-formed."""
        if not self.job_id or not str(self.job_id).strip():
            raise ValidationError("job_id must be a non-empty string")
        if not self.map_durations and not self.reduce_durations:
            raise ValidationError(f"job {self.job_id}: no tasks")
        for d in (*self.map_durations, *self.reduce_durations):
            if int(d) <= 0:
                raise ValidationError(
                    f"job {self.job_id}: task durations must be positive, got {d}"
                )
        if self.earliest_start < 0:
            raise ValidationError(
                f"job {self.job_id}: earliest_start must be >= 0"
            )
        if self.deadline <= self.earliest_start:
            raise ValidationError(
                f"job {self.job_id}: deadline ({self.deadline}) must exceed "
                f"earliest_start ({self.earliest_start})"
            )

    def to_job(self, numeric_id: int, arrival: int) -> Job:
        """Materialise the core :class:`Job` at an absolute arrival time."""
        maps = [
            Task(f"{self.job_id}-m{i}", numeric_id, TaskKind.MAP, int(d))
            for i, d in enumerate(self.map_durations)
        ]
        reduces = [
            Task(f"{self.job_id}-r{i}", numeric_id, TaskKind.REDUCE, int(d))
            for i, d in enumerate(self.reduce_durations)
        ]
        return Job(
            id=numeric_id,
            arrival_time=arrival,
            earliest_start=arrival + self.earliest_start,
            deadline=arrival + self.deadline,
            map_tasks=maps,
            reduce_tasks=reduces,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready spec payload, tagged with the schema version."""
        return {
            "schema": SERVICE_SCHEMA,
            "job_id": self.job_id,
            "map_durations": list(self.map_durations),
            "reduce_durations": list(self.reduce_durations),
            "earliest_start": self.earliest_start,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        schema = data.get("schema", SERVICE_SCHEMA)
        if schema != SERVICE_SCHEMA:
            raise ValidationError(f"unsupported schema {schema!r}")
        try:
            spec = cls(
                job_id=str(data["job_id"]),
                map_durations=tuple(int(d) for d in data.get("map_durations", [])),
                reduce_durations=tuple(
                    int(d) for d in data.get("reduce_durations", [])
                ),
                earliest_start=int(data.get("earliest_start", 0)),
                deadline=int(data.get("deadline", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed job spec: {exc}") from exc
        spec.validate()
        return spec


@dataclass(frozen=True)
class SlaQuote:
    """The service's answer to one submission.

    ``predicted_completion`` and ``deadline`` are absolute service times;
    ``solve_ms`` is real wall time spent quoting and is excluded from the
    canonical verdict (it varies run to run even when the decision does
    not).
    """

    job_id: str
    admitted: bool
    #: "deadline_met" | "deadline_missed" | "overload_shed" |
    #: "infeasible" | "invalid" | "duplicate"
    reason: str
    #: Absolute service time the plan completes the job (None if no plan).
    predicted_completion: Optional[int]
    #: Absolute service-time deadline the quote was judged against.
    deadline: Optional[int]
    #: Ladder rung that produced the plan ("none" when nothing solved).
    rung: str
    #: Wall milliseconds spent producing this quote (non-canonical).
    solve_ms: float
    #: Absolute service time the submission was taken into the batcher.
    arrival: int

    def verdict_key(self) -> Tuple:
        """The canonical verdict: everything except wall-clock noise."""
        return (
            self.job_id,
            self.admitted,
            self.reason,
            self.predicted_completion,
            self.deadline,
            self.rung,
            self.arrival,
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready quote payload, tagged with the schema version."""
        return {
            "schema": SERVICE_SCHEMA,
            "job_id": self.job_id,
            "admitted": self.admitted,
            "reason": self.reason,
            "predicted_completion": self.predicted_completion,
            "deadline": self.deadline,
            "rung": self.rung,
            "solve_ms": round(self.solve_ms, 3),
            "arrival": self.arrival,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SlaQuote":
        return cls(
            job_id=str(data["job_id"]),
            admitted=bool(data["admitted"]),
            reason=str(data["reason"]),
            predicted_completion=(
                None
                if data.get("predicted_completion") is None
                else int(data["predicted_completion"])  # type: ignore[arg-type]
            ),
            deadline=(
                None if data.get("deadline") is None else int(data["deadline"])  # type: ignore[arg-type]
            ),
            rung=str(data.get("rung", "none")),
            solve_ms=float(data.get("solve_ms", 0.0)),
            arrival=int(data.get("arrival", 0)),
        )


@dataclass
class JobStatus:
    """Lifecycle snapshot returned by ``status(job_id)``."""

    job_id: str
    state: str
    quote: Optional[SlaQuote] = None
    #: Remaining planned (task_id, start, end) triples for admitted jobs.
    planned: List[Tuple[str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.state not in _STATES:
            raise ValueError(f"unknown job state {self.state!r}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready status payload; the quote is inlined when present."""
        return {
            "schema": SERVICE_SCHEMA,
            "job_id": self.job_id,
            "state": self.state,
            "quote": None if self.quote is None else self.quote.as_dict(),
            "planned": [list(p) for p in self.planned],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobStatus":
        quote = data.get("quote")
        return cls(
            job_id=str(data["job_id"]),
            state=str(data["state"]),
            quote=None if quote is None else SlaQuote.from_dict(quote),  # type: ignore[arg-type]
            planned=[
                (str(t), int(s), int(e)) for t, s, e in data.get("planned", [])  # type: ignore[union-attr]
            ],
        )


def verdict_digest(quotes: Sequence[SlaQuote]) -> str:
    """A stable hex digest over canonical verdicts (order-insensitive).

    The loadgen pins this into the bench baseline: any change in any
    admission decision -- across code changes or batch-size choices --
    changes the digest.
    """
    import hashlib

    lines = sorted(repr(q.verdict_key()) for q in quotes)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]
