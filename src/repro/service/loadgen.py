"""Deterministic load generation for the admission service.

Two drivers share one seeded arrival stream:

* :func:`run_inprocess` -- the replayable harness: a
  :class:`~repro.obs.clocks.ManualServiceClock` is advanced to each
  arrival and the service's sync core is pumped directly, so the whole
  run is single-threaded and the admission verdicts depend only on
  (seed, profile, cluster, batching config).  This is what the
  ``service_admission_latency`` bench case and the batching-determinism
  property test drive.
* :func:`run_against_url` -- the end-to-end smoke driver behind
  ``mrcp-rm loadtest``: the same stream is POSTed to a live HTTP
  endpoint over asyncio connections (open-loop, paced by wall time
  compressed by ``time_scale``).

Latency accounting is split on purpose: *solve* latency (inside the
controller, wall clock, pinnable) versus *admission* latency as observed
by the client (includes batching hold time).  The in-process report
carries both; the bench baseline pins only the deterministic verdict
digest and counts, while the measured wall percentile feeds the
calibration-normalised wall gate.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.clocks import ManualServiceClock
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.service.schemas import JobSpec, SlaQuote, verdict_digest
from repro.service.server import SchedulerService, ServiceConfig
from repro.workload.entities import Job, make_uniform_cluster
from repro.workload.synthetic import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
)

#: Client-observed admission latency buckets (service-time seconds).
OBSERVED_LATENCY_BUCKETS_S = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one generated load run (fully seed-determined)."""

    requests: int = 200
    seed: int = 0
    #: Mean arrivals per service-time second.
    arrival_rate: float = 0.5
    #: Map/reduce task count bounds (kept small: quotes must be fast).
    map_tasks_range: Tuple[int, int] = (1, 6)
    reduce_tasks_range: Tuple[int, int] = (1, 3)
    #: Upper bound on map-task durations (seconds).
    e_max: int = 20
    #: U[1, x] multiplier on the minimum execution time for deadlines.
    #: Low values produce tight SLAs -- the mix of admits and rejects the
    #: smoke gate asserts on comes from here.
    deadline_multiplier_max: float = 2.0
    #: Probability a request is an advance reservation (starts later).
    ar_probability: float = 0.25
    #: Advance-reservation start offset bound (seconds).
    s_max: int = 60

    def to_workload_params(self, cluster_slots: Tuple[int, int]) -> SyntheticWorkloadParams:
        """Translate the profile into the paper's synthetic-workload knobs."""
        map_slots, reduce_slots = cluster_slots
        return SyntheticWorkloadParams(
            num_jobs=self.requests,
            map_tasks_range=self.map_tasks_range,
            reduce_tasks_range=(
                max(1, self.reduce_tasks_range[0]), max(1, self.reduce_tasks_range[1])
            ),
            e_max=self.e_max,
            ar_probability=self.ar_probability,
            s_max=self.s_max,
            deadline_multiplier_max=self.deadline_multiplier_max,
            arrival_rate=self.arrival_rate,
            total_map_slots=map_slots,
            total_reduce_slots=reduce_slots,
        )


def generate_request_stream(
    profile: LoadProfile, cluster_slots: Tuple[int, int] = (8, 8)
) -> List[Tuple[float, JobSpec]]:
    """The seeded (arrival service time, spec) stream both drivers replay.

    Jobs come from the paper's Table 3 synthetic model; specs carry SLA
    offsets *relative* to arrival, as a real client would send them.
    """
    jobs = generate_synthetic_workload(
        profile.to_workload_params(cluster_slots), seed=profile.seed
    )
    stream: List[Tuple[float, JobSpec]] = []
    for job in jobs:
        stream.append((float(job.arrival_time), _spec_of(job)))
    return stream


def _spec_of(job: Job) -> JobSpec:
    return JobSpec(
        job_id=f"load-{job.id}",
        map_durations=tuple(t.duration for t in job.map_tasks),
        reduce_durations=tuple(t.duration for t in job.reduce_tasks),
        earliest_start=job.earliest_start - job.arrival_time,
        deadline=job.deadline - job.arrival_time,
    )


@dataclass
class LoadTestReport:
    """What one load run produced (all fields JSON-serialisable)."""

    requests: int
    admitted: int
    rejected: int
    shed: int
    #: Order-insensitive sha256 prefix over canonical verdicts.
    digest: str
    #: Client-observed admission latency percentiles.
    latency_p50: float
    latency_p99: float
    latency_max: float
    #: Unit of the latency fields ("s" observed / "ms" solve wall).
    latency_unit: str
    #: Full latency histogram (for the CI failure artifact).
    histogram: Dict[str, object] = field(default_factory=dict)
    quotes: List[SlaQuote] = field(default_factory=list)

    def as_dict(self, include_quotes: bool = False) -> Dict[str, object]:
        """JSON-ready report; ``include_quotes`` adds every per-job quote."""
        data = {
            "requests": self.requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "digest": self.digest,
            "latency_p50": round(self.latency_p50, 6),
            "latency_p99": round(self.latency_p99, 6),
            "latency_max": round(self.latency_max, 6),
            "latency_unit": self.latency_unit,
            "histogram": self.histogram,
        }
        if include_quotes:
            data["quotes"] = [q.as_dict() for q in self.quotes]
        return data


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def _summarise(
    quotes: Sequence[SlaQuote], latencies: Sequence[float], unit: str
) -> LoadTestReport:
    ordered = sorted(latencies)
    hist = Histogram("loadtest.admission_latency", OBSERVED_LATENCY_BUCKETS_S)
    for v in latencies:
        hist.observe(v)
    return LoadTestReport(
        requests=len(quotes),
        admitted=sum(1 for q in quotes if q.admitted),
        rejected=sum(1 for q in quotes if not q.admitted and q.reason != "overload_shed"),
        shed=sum(1 for q in quotes if q.reason == "overload_shed"),
        digest=verdict_digest(quotes),
        latency_p50=_percentile(ordered, 0.50),
        latency_p99=_percentile(ordered, 0.99),
        latency_max=ordered[-1] if ordered else 0.0,
        latency_unit=unit,
        histogram=hist.as_dict(),
        quotes=list(quotes),
    )


def run_inprocess(
    profile: Optional[LoadProfile] = None,
    config: Optional[ServiceConfig] = None,
    num_resources: int = 4,
    registry: Optional[MetricsRegistry] = None,
) -> LoadTestReport:
    """Drive the sync core under a manual clock (fully deterministic).

    The manual clock is advanced to each arrival; due batches are pumped
    *before* the next offer (exactly what the asyncio loop would have
    done by then) and the queue is drained at the end of the stream.
    Client-observed latency of a quote is flush-time minus offer-time on
    the service clock -- deterministic, unlike solve wall time.
    """
    profile = profile or LoadProfile()
    config = config or ServiceConfig()
    clock = ManualServiceClock()
    service = SchedulerService(
        resources=make_uniform_cluster(num_resources),
        config=config,
        registry=registry,
        clock=clock,
    )
    slots = (num_resources * 2, num_resources * 2)
    stream = generate_request_stream(profile, slots)
    quotes: List[SlaQuote] = []
    offered_at: Dict[str, float] = {}
    latencies: List[float] = []

    def collect(batch_quotes: List[SlaQuote]) -> None:
        now = clock.now()
        for q in batch_quotes:
            quotes.append(q)
            latencies.append(max(0.0, now - offered_at.pop(q.job_id, now)))

    for arrival, spec in stream:
        # Fire every batch that falls due strictly before this arrival at
        # its own due time, so hold-time bounds are honoured exactly.
        while True:
            due = service.batcher.due_at()
            if due is None or due > arrival:
                break
            clock.advance_to(max(clock.now(), due))
            collect(service.pump())
        clock.advance_to(max(clock.now(), arrival))
        immediate = service.submit_sync(spec)
        if immediate is not None:
            quotes.append(immediate)
            latencies.append(0.0)
        else:
            offered_at[spec.job_id] = arrival
        collect(service.pump())
    # End of stream: run the hold timer out rather than short-circuiting,
    # then drain whatever remains (mirrors service shutdown).
    due = service.batcher.due_at()
    if due is not None:
        clock.advance_to(max(clock.now(), due))
        collect(service.pump())
    collect(service.drain())
    return _summarise(quotes, latencies, "s")


async def run_against_url(
    base_url: str,
    profile: Optional[LoadProfile] = None,
    time_scale: float = 0.02,
    cluster_slots: Tuple[int, int] = (8, 8),
) -> LoadTestReport:
    """Replay the stream against a live endpoint (smoke / e2e driver).

    ``time_scale`` compresses service-time inter-arrival gaps into wall
    seconds (0.02 -> a 50s-spaced stream plays in 1s steps).  Latency is
    wall seconds from POST to response; verdicts still come back digest-
    stable because the server anchors each quote at its arrival tick.
    """
    profile = profile or LoadProfile()
    host, port = _parse_base_url(base_url)
    stream = generate_request_stream(profile, cluster_slots)
    quotes: List[SlaQuote] = []
    latencies: List[float] = []
    loop = asyncio.get_running_loop()
    started = loop.time()
    tasks: List[asyncio.Task] = []

    async def fire(delay: float, spec: JobSpec) -> None:
        target = started + delay
        pause = target - loop.time()
        if pause > 0:
            await asyncio.sleep(pause)
        t0 = loop.time()
        status, payload = await _http_json(
            host, port, "POST", "/submit", spec.as_dict()
        )
        if status == 200:
            quotes.append(SlaQuote.from_dict(payload))
            latencies.append(loop.time() - t0)

    first_arrival = stream[0][0] if stream else 0.0
    for arrival, spec in stream:
        delay = (arrival - first_arrival) * time_scale
        tasks.append(asyncio.create_task(fire(delay, spec)))
    await asyncio.gather(*tasks)
    return _summarise(quotes, latencies, "s")


def _parse_base_url(base_url: str) -> Tuple[str, int]:
    from urllib.parse import urlparse

    parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
    return parsed.hostname or "127.0.0.1", parsed.port or 80


async def _http_json(
    host: str, port: int, method: str, path: str, payload: Optional[dict] = None
) -> Tuple[int, dict]:
    """One short-lived HTTP/1.1 exchange (no external client library)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    status_line = head_part.split(b"\r\n", 1)[0].decode("latin-1")
    status = int(status_line.split()[1]) if len(status_line.split()) > 1 else 0
    try:
        parsed = json.loads(body_part.decode() or "{}")
    except json.JSONDecodeError:
        parsed = {"raw": body_part.decode(errors="replace")}
    return status, parsed
