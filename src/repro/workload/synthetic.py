"""The Table 3 synthetic workload generator.

Every parameter of the paper's factor-at-a-time study is a field of
:class:`SyntheticWorkloadParams`:

=====================  =========================================  ==========
paper symbol           field                                      paper range
=====================  =========================================  ==========
``k_j^mp``             ``map_tasks_range`` (DU)                   DU[1, 100]
``k_j^rd``             ``reduce_tasks_range`` (DU)                DU[1, 100]
``me``                 ``DU[1, e_max]`` via ``e_max``             {10,50,100}
``re``                 ``3*sum(me)/k_rd + DU[reduce_extra]``      DU[1, 10]
``p``                  ``ar_probability``                         {.1,.5,.9}
``s_max``              ``s_max`` (DU offset upper bound)          {1e4,5e4,2.5e5}
``d_UL``               ``deadline_multiplier_max`` (U upper)      {2, 5, 10}
``lambda``             ``arrival_rate`` (Poisson)                 {.001..0.02}
=====================  =========================================  ==========

Defaults follow DESIGN.md Section 4 (the boldface defaults of Table 3 are
not recoverable from the text; these are consistent with every reported
default-run observation).  A ``scale`` factor shrinks task counts and the
correlated time parameters proportionally for laptop-sized runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.entities import Job, Task, TaskKind, minimum_execution_time


@dataclass
class SyntheticWorkloadParams:
    """Knobs of the Table 3 workload model."""

    num_jobs: int = 50
    #: DU bounds for the number of map / reduce tasks per job.
    map_tasks_range: Tuple[int, int] = (1, 100)
    reduce_tasks_range: Tuple[int, int] = (1, 100)
    #: Upper bound of the DU map-task execution time (seconds).
    e_max: int = 50
    #: DU bounds of the additive noise on reduce task times.
    reduce_extra_range: Tuple[int, int] = (1, 10)
    #: Probability that a job is an advance reservation (s_j > v_j).
    ar_probability: float = 0.5
    #: Upper bound of the DU start-time offset for AR jobs (seconds).
    s_max: int = 10_000
    #: d_UL: upper bound of the U[1, d_UL] deadline multiplier.
    deadline_multiplier_max: float = 5.0
    #: Poisson arrival rate (jobs per second).
    arrival_rate: float = 0.01
    #: Cluster totals used to compute TE (minimum execution time).
    total_map_slots: int = 100
    total_reduce_slots: int = 100
    #: Proportional shrink factor applied to task counts (1.0 = paper scale).
    scale: float = 1.0
    #: First job id (arrival times start at 0).
    first_job_id: int = 0

    def scaled_range(self, rng: Tuple[int, int]) -> Tuple[int, int]:
        """A DU range with its upper bound shrunk by ``scale``."""
        lo, hi = rng
        hi = max(lo, int(round(hi * self.scale)))
        return lo, hi

    def validate(self) -> None:
        """Reject out-of-range parameters before generation."""
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if not 0.0 <= self.ar_probability <= 1.0:
            raise ValueError("ar_probability outside [0, 1]")
        if self.e_max < 1:
            raise ValueError("e_max must be >= 1")
        if self.deadline_multiplier_max < 1.0:
            raise ValueError("deadline multiplier upper bound must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        for name, (lo, hi) in (
            ("map_tasks_range", self.map_tasks_range),
            ("reduce_tasks_range", self.reduce_tasks_range),
            ("reduce_extra_range", self.reduce_extra_range),
        ):
            if lo < 0 or hi < lo:
                raise ValueError(f"{name} [{lo}, {hi}] is invalid")


def generate_synthetic_workload(
    params: SyntheticWorkloadParams,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
) -> List[Job]:
    """Draw ``params.num_jobs`` jobs following Table 3.

    Separate named streams are used per workload dimension so that (say)
    changing ``e_max`` does not perturb arrival times -- the common random
    number discipline used for factor-at-a-time comparisons.
    """
    params.validate()
    streams = streams or RandomStreams(seed)
    arrivals = streams.distributions("synthetic.arrivals")
    counts = streams.distributions("synthetic.task_counts")
    durations = streams.distributions("synthetic.durations")
    starts = streams.distributions("synthetic.start_times")
    deadlines = streams.distributions("synthetic.deadlines")

    jobs: List[Job] = []
    now = 0.0
    map_lo, map_hi = params.scaled_range(params.map_tasks_range)
    red_lo, red_hi = params.scaled_range(params.reduce_tasks_range)

    for i in range(params.num_jobs):
        job_id = params.first_job_id + i
        now += arrivals.exponential_rate(params.arrival_rate)
        arrival = int(round(now))

        k_mp = counts.du(map_lo, map_hi)
        k_rd = counts.du(red_lo, red_hi)

        map_tasks = [
            Task(
                id=f"t{job_id}_m{k}",
                job_id=job_id,
                kind=TaskKind.MAP,
                duration=durations.du(1, params.e_max),
            )
            for k in range(k_mp)
        ]
        total_me = sum(t.duration for t in map_tasks)

        reduce_tasks = []
        if k_rd > 0:
            base = (3.0 * total_me) / k_rd
            for k in range(k_rd):
                extra = durations.du(*params.reduce_extra_range)
                reduce_tasks.append(
                    Task(
                        id=f"t{job_id}_r{k}",
                        job_id=job_id,
                        kind=TaskKind.REDUCE,
                        duration=max(1, int(round(base)) + extra),
                    )
                )

        if params.ar_probability > 0 and starts.bernoulli(params.ar_probability):
            s_j = arrival + starts.du(1, params.s_max)
        else:
            s_j = arrival

        job = Job(
            id=job_id,
            arrival_time=arrival,
            earliest_start=s_j,
            deadline=0,  # placeholder until TE is known
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
        )
        te = minimum_execution_time(
            job, params.total_map_slots, params.total_reduce_slots
        )
        multiplier = deadlines.uniform(1.0, params.deadline_multiplier_max)
        job.deadline = s_j + int(math.ceil(te * multiplier))
        jobs.append(job)

    return jobs
