"""Workload sanity validation.

Catches generator bugs (and malformed hand-written traces) before they turn
into confusing scheduler behaviour: SLA ordering (arrival <= earliest start
< deadline), positive durations, task/job id consistency, and unique ids.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workload.entities import Job, TaskKind


def validate_jobs(jobs: Sequence[Job]) -> List[str]:
    """Return a list of problems (empty = workload is well-formed)."""
    problems: List[str] = []
    seen_job_ids = set()
    seen_task_ids = set()

    for job in jobs:
        if job.id in seen_job_ids:
            problems.append(f"duplicate job id {job.id}")
        seen_job_ids.add(job.id)

        if job.earliest_start < job.arrival_time:
            problems.append(
                f"job {job.id}: earliest start {job.earliest_start} before "
                f"arrival {job.arrival_time}"
            )
        if job.deadline <= job.earliest_start:
            problems.append(
                f"job {job.id}: deadline {job.deadline} not after earliest "
                f"start {job.earliest_start}"
            )
        if not job.map_tasks and not job.reduce_tasks:
            problems.append(f"job {job.id}: has no tasks")
        if job.reduce_tasks and not job.map_tasks:
            problems.append(f"job {job.id}: reduces without maps")

        for task in job.tasks:
            if task.id in seen_task_ids:
                problems.append(f"duplicate task id {task.id}")
            seen_task_ids.add(task.id)
            if task.job_id != job.id:
                problems.append(
                    f"task {task.id}: job_id {task.job_id} != parent {job.id}"
                )
            if task.duration < 1:
                problems.append(
                    f"task {task.id}: non-positive duration {task.duration}"
                )
            if task.demand < 1:
                problems.append(f"task {task.id}: non-positive demand {task.demand}")
        for task in job.map_tasks:
            if task.kind is not TaskKind.MAP:
                problems.append(f"task {task.id}: in map list but kind {task.kind}")
        for task in job.reduce_tasks:
            if task.kind is not TaskKind.REDUCE:
                problems.append(
                    f"task {task.id}: in reduce list but kind {task.kind}"
                )

    arrivals = [j.arrival_time for j in jobs]
    if arrivals != sorted(arrivals):
        problems.append("jobs are not sorted by arrival time")
    return problems
