"""The Table 4 synthetic Facebook workload.

The paper (like Verma et al. [8]) does not use the raw October-2009 Facebook
traces directly: it uses the *derived model* -- a ten-type job mix over 1000
jobs plus LogNormal task execution times fitted to the trace CDFs:

* map task time (ms)    ~ LogNormal(mu=9.9511, sigma^2=1.6764)
* reduce task time (ms) ~ LogNormal(mu=12.375, sigma^2=1.6262)

This module reproduces exactly that model.  Earliest start times equal
arrival times (p = 0) and deadlines use the Table 3 rule with d_UL = 2, as
in Section VI.B.1.  The comparison system is 64 resources with one map and
one reduce slot each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.entities import Job, Task, TaskKind, minimum_execution_time

#: Table 4: (map tasks, reduce tasks, number of jobs out of 1000).
FACEBOOK_JOB_TYPES: Tuple[Tuple[int, int, int], ...] = (
    (1, 0, 380),
    (2, 0, 160),
    (10, 3, 140),
    (50, 0, 80),
    (100, 0, 60),
    (200, 50, 60),
    (400, 0, 40),
    (800, 180, 40),
    (2400, 360, 20),
    (4800, 0, 20),
)

#: LogNormal(mu, sigma^2) of task execution times, in milliseconds.
MAP_TIME_LOGNORMAL: Tuple[float, float] = (9.9511, 1.6764)
REDUCE_TIME_LOGNORMAL: Tuple[float, float] = (12.375, 1.6262)


@dataclass
class FacebookWorkloadParams:
    """Knobs of the Facebook-derived workload (Figures 2-3 setup)."""

    num_jobs: int = 1000
    #: Poisson arrival rate (jobs/second); the paper sweeps 1e-4..5e-4.
    arrival_rate: float = 0.0001
    #: d_UL of the deadline multiplier U[1, d_UL] (paper: 2).
    deadline_multiplier_max: float = 2.0
    #: Cluster totals for TE: 64 resources x 1 map slot / 1 reduce slot.
    total_map_slots: int = 64
    total_reduce_slots: int = 64
    #: Proportional shrink factor on task counts for laptop-scale runs.
    scale: float = 1.0
    #: Cap on a single task's duration in seconds (0 = uncapped).  The
    #: LogNormal tail occasionally produces multi-hour tasks; the paper's
    #: simulations keep them, so the default is uncapped.
    max_task_seconds: int = 0
    #: Use the exact Table 4 mix (the 1000-job trace composition, shuffled)
    #: instead of weighted sampling.  Requires ``num_jobs`` to be a multiple
    #: of 1000 / gcd = 1000... in practice: any multiple of 50 works because
    #: every Table 4 count is a multiple of 20; see ``validate``.
    exact_mix: bool = False
    first_job_id: int = 0

    def validate(self) -> None:
        """Reject out-of-range parameters before generation."""
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.deadline_multiplier_max < 1.0:
            raise ValueError("deadline multiplier upper bound must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.exact_mix and self.num_jobs % 50 != 0:
            # every Table 4 count is a multiple of 20 over 1000 jobs, so the
            # mix reproduces exactly at any multiple of 1000/20 = 50 jobs
            raise ValueError(
                f"exact_mix requires num_jobs to be a multiple of 50, "
                f"got {self.num_jobs}"
            )


def _scaled_counts(k_mp: int, k_rd: int, scale: float) -> Tuple[int, int]:
    """Shrink task counts, preserving map-only-ness and at-least-one-map."""
    sm = max(1, int(round(k_mp * scale))) if k_mp > 0 else 0
    sr = max(1, int(round(k_rd * scale))) if k_rd > 0 else 0
    return sm, sr


def _duration_seconds(
    dists, lognormal: Tuple[float, float], cap_seconds: int
) -> int:
    ms = dists.lognormal(*lognormal)
    seconds = max(1, int(math.ceil(ms / 1000.0)))
    if cap_seconds > 0:
        seconds = min(seconds, cap_seconds)
    return seconds


def generate_facebook_workload(
    params: FacebookWorkloadParams,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
) -> List[Job]:
    """Draw jobs following the Table 4 mix and LogNormal task times.

    Job types are sampled with probabilities proportional to the Table 4
    counts, so any ``num_jobs`` reproduces the trace's type distribution in
    expectation (at ``num_jobs=1000`` the paper's exact mix in expectation).
    """
    params.validate()
    streams = streams or RandomStreams(seed)
    arrivals = streams.distributions("facebook.arrivals")
    types = streams.distributions("facebook.job_types")
    durations = streams.distributions("facebook.durations")
    deadlines = streams.distributions("facebook.deadlines")

    weights = [count for (_, _, count) in FACEBOOK_JOB_TYPES]
    exact_sequence: List[Tuple[int, int]] = []
    if params.exact_mix:
        # the trace's exact composition, shuffled into a random arrival order
        per_block = params.num_jobs // 1000 if params.num_jobs >= 1000 else 0
        remainder_blocks = (params.num_jobs % 1000) // 50
        for k_mp, k_rd, count in FACEBOOK_JOB_TYPES:
            copies = count * per_block + (count // 20) * remainder_blocks
            exact_sequence.extend([(k_mp, k_rd)] * copies)
        order = types.gen.permutation(len(exact_sequence))
        exact_sequence = [exact_sequence[int(i)] for i in order]

    jobs: List[Job] = []
    now = 0.0
    for i in range(params.num_jobs):
        job_id = params.first_job_id + i
        now += arrivals.exponential_rate(params.arrival_rate)
        arrival = int(round(now))

        if params.exact_mix:
            k_mp, k_rd = exact_sequence[i]
        else:
            k_mp, k_rd, _ = types.choice(FACEBOOK_JOB_TYPES, weights)
        k_mp, k_rd = _scaled_counts(k_mp, k_rd, params.scale)

        map_tasks = [
            Task(
                id=f"t{job_id}_m{k}",
                job_id=job_id,
                kind=TaskKind.MAP,
                duration=_duration_seconds(
                    durations, MAP_TIME_LOGNORMAL, params.max_task_seconds
                ),
            )
            for k in range(k_mp)
        ]
        reduce_tasks = [
            Task(
                id=f"t{job_id}_r{k}",
                job_id=job_id,
                kind=TaskKind.REDUCE,
                duration=_duration_seconds(
                    durations, REDUCE_TIME_LOGNORMAL, params.max_task_seconds
                ),
            )
            for k in range(k_rd)
        ]

        job = Job(
            id=job_id,
            arrival_time=arrival,
            earliest_start=arrival,  # p = 0 for this workload
            deadline=0,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
        )
        te = minimum_execution_time(
            job, params.total_map_slots, params.total_reduce_slots
        )
        multiplier = deadlines.uniform(1.0, params.deadline_multiplier_max)
        job.deadline = arrival + int(math.ceil(te * multiplier))
        jobs.append(job)

    return jobs
