"""Workload trace persistence (JSON round-trip).

Generated workloads can be saved and reloaded so that an experiment is
re-runnable bit-for-bit, and so that schedulers under comparison consume the
*identical* job stream (as the paper does when comparing MRCP-RM with
MinEDF-WC on the same Facebook workload).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.workload.entities import Job, Task, TaskKind

TRACE_FORMAT_VERSION = 1


def _task_to_dict(task: Task) -> dict:
    return {
        "id": task.id,
        "job_id": task.job_id,
        "kind": task.kind.value,
        "duration": task.duration,
        "demand": task.demand,
    }


def _task_from_dict(data: dict) -> Task:
    return Task(
        id=data["id"],
        job_id=data["job_id"],
        kind=TaskKind(data["kind"]),
        duration=int(data["duration"]),
        demand=int(data.get("demand", 1)),
    )


def jobs_to_json(jobs: List[Job]) -> str:
    """Serialise a MapReduce job stream (SLAs + tasks, no runtime state)."""
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "jobs": [
            {
                "id": job.id,
                "arrival_time": job.arrival_time,
                "earliest_start": job.earliest_start,
                "deadline": job.deadline,
                "map_tasks": [_task_to_dict(t) for t in job.map_tasks],
                "reduce_tasks": [_task_to_dict(t) for t in job.reduce_tasks],
            }
            for job in jobs
        ],
    }
    return json.dumps(payload, indent=1)


def jobs_from_json(text: str) -> List[Job]:
    """Parse a job stream written by :func:`jobs_to_json`."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {version!r}")
    jobs = []
    for j in payload["jobs"]:
        jobs.append(
            Job(
                id=int(j["id"]),
                arrival_time=int(j["arrival_time"]),
                earliest_start=int(j["earliest_start"]),
                deadline=int(j["deadline"]),
                map_tasks=[_task_from_dict(t) for t in j["map_tasks"]],
                reduce_tasks=[_task_from_dict(t) for t in j["reduce_tasks"]],
            )
        )
    return jobs


def save_trace(jobs: List[Job], path: Union[str, Path]) -> None:
    """Write a job stream to ``path`` as JSON."""
    Path(path).write_text(jobs_to_json(jobs))


def load_trace(path: Union[str, Path]) -> List[Job]:
    """Read a job stream previously saved with :func:`save_trace`."""
    return jobs_from_json(Path(path).read_text())


# ----------------------------------------------------------- DAG workflows

def workflows_to_json(jobs) -> str:
    """Serialise :class:`~repro.workload.workflows.WorkflowJob` streams."""
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "kind": "workflow",
        "workflows": [
            {
                "id": job.id,
                "arrival_time": job.arrival_time,
                "earliest_start": job.earliest_start,
                "deadline": job.deadline,
                "stages": [
                    {
                        "name": stage.name,
                        "tasks": [_task_to_dict(t) for t in stage.tasks],
                    }
                    for stage in job.stages
                ],
                "edges": [list(e) for e in job.edges],
                "edge_delays": [
                    [a, b, d] for (a, b), d in sorted(job.edge_delays.items())
                ],
            }
            for job in jobs
        ],
    }
    return json.dumps(payload, indent=1)


def workflows_from_json(text: str):
    """Parse a workflow stream written by :func:`workflows_to_json`."""
    from repro.workload.workflows import Stage, WorkflowJob

    payload = json.loads(text)
    if payload.get("version") != TRACE_FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')!r}")
    if payload.get("kind") != "workflow":
        raise ValueError("not a workflow trace (missing kind=workflow)")
    out = []
    for w in payload["workflows"]:
        out.append(
            WorkflowJob(
                id=int(w["id"]),
                arrival_time=int(w["arrival_time"]),
                earliest_start=int(w["earliest_start"]),
                deadline=int(w["deadline"]),
                stages=[
                    Stage(
                        name=s["name"],
                        tasks=[_task_from_dict(t) for t in s["tasks"]],
                    )
                    for s in w["stages"]
                ],
                edges=[tuple(e) for e in w["edges"]],
                edge_delays={
                    (a, b): int(d) for a, b, d in w.get("edge_delays", [])
                },
            )
        )
    return out


def save_workflow_trace(jobs, path: Union[str, Path]) -> None:
    """Write a workflow stream to ``path`` as JSON."""
    Path(path).write_text(workflows_to_json(jobs))


def load_workflow_trace(path: Union[str, Path]):
    """Read a workflow stream saved with :func:`save_workflow_trace`."""
    return workflows_from_json(Path(path).read_text())
