"""Workload substrate: MapReduce jobs, SLAs, resources and generators.

Implements the two workload models of the paper's evaluation:

* :mod:`repro.workload.synthetic` -- the parameterised Table 3 model used by
  the factor-at-a-time experiments (Figures 4-9),
* :mod:`repro.workload.facebook` -- the synthetic Facebook workload of
  Table 4 (job-type mix + LogNormal task times) used for the comparison with
  MinEDF-WC (Figures 2-3).

Entities carry both the SLA attributes of Section III.A (earliest start
time, per-task execution times, deadline) and the runtime bookkeeping fields
of Section V.A (``is_completed``, ``is_prev_scheduled``).
"""

from repro.workload.entities import (
    Job,
    Resource,
    Task,
    TaskKind,
    cluster_capacities,
    make_heterogeneous_cluster,
    make_uniform_cluster,
    minimum_execution_time,
)
from repro.workload.synthetic import (
    SyntheticWorkloadParams,
    generate_synthetic_workload,
)
from repro.workload.facebook import (
    FACEBOOK_JOB_TYPES,
    MAP_TIME_LOGNORMAL,
    REDUCE_TIME_LOGNORMAL,
    FacebookWorkloadParams,
    generate_facebook_workload,
)
from repro.workload.traces import jobs_from_json, jobs_to_json, load_trace, save_trace
from repro.workload.validate import validate_jobs
from repro.workload.workflows import (
    Stage,
    WorkflowJob,
    WorkflowWorkloadParams,
    from_mapreduce,
    generate_workflow_workload,
    validate_workflows,
)

__all__ = [
    "Task",
    "TaskKind",
    "Job",
    "Resource",
    "cluster_capacities",
    "make_heterogeneous_cluster",
    "make_uniform_cluster",
    "minimum_execution_time",
    "SyntheticWorkloadParams",
    "generate_synthetic_workload",
    "FacebookWorkloadParams",
    "generate_facebook_workload",
    "FACEBOOK_JOB_TYPES",
    "MAP_TIME_LOGNORMAL",
    "REDUCE_TIME_LOGNORMAL",
    "jobs_to_json",
    "jobs_from_json",
    "save_trace",
    "load_trace",
    "validate_jobs",
    "Stage",
    "WorkflowJob",
    "WorkflowWorkloadParams",
    "from_mapreduce",
    "generate_workflow_workload",
    "validate_workflows",
]
