"""General multi-stage workflows with user-specified precedence (DAGs).

The paper closes (Section VII) with "generalization of the resource manager
by incorporating capabilities for handling more complex workflows with
user-specified precedence relationships warrants further investigation".
This module provides that generalisation:

* a :class:`WorkflowJob` is a DAG of *stages*; each stage is a set of
  parallel tasks, and an edge ``A -> B`` means every task of B starts after
  every task of A completes (the MapReduce barrier, per edge);
* a classic MapReduce job is exactly the two-stage chain
  (:func:`from_mapreduce`);
* stages consume either map-slot or reduce-slot capacity via their tasks'
  :class:`~repro.workload.entities.TaskKind` -- matching the paper's
  two-pool resource model;
* :func:`generate_workflow_workload` draws random layered DAGs with the
  Table 3 distribution style, for open-system experiments.

DAG hygiene (acyclicity, connectivity of stage names) is checked with
``networkx``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.sim.rng import RandomStreams
from repro.workload.entities import Job, Task, TaskKind, _phase_makespan


@dataclass
class Stage:
    """A set of parallel tasks forming one node of the workflow DAG."""

    name: str
    tasks: List[Task] = field(default_factory=list)

    @property
    def duration_lower_bound(self) -> int:
        return max((t.duration for t in self.tasks), default=0)

    @property
    def total_work(self) -> int:
        return sum(t.duration for t in self.tasks)


@dataclass
class WorkflowJob:
    """A job whose execution is a DAG of stages with an end-to-end SLA.

    Duck-compatible with :class:`~repro.workload.entities.Job` everywhere
    the resource manager, executor and metrics need it (``tasks``,
    ``is_completed``, ``earliest_start``, ``deadline``...).
    """

    id: int
    arrival_time: int
    earliest_start: int
    deadline: int
    stages: List[Stage] = field(default_factory=list)
    #: Stage-name precedence edges (pred, succ).
    edges: List[Tuple[str, str]] = field(default_factory=list)
    #: Optional per-edge data-transfer delays in seconds (communication
    #: cost of shipping intermediate data; paper Section VII mentions
    #: communication links as future work).  Missing edges default to 0.
    edge_delays: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ structure
    def graph(self) -> "nx.DiGraph":
        """The stage DAG as a networkx DiGraph."""
        g = nx.DiGraph()
        for stage in self.stages:
            g.add_node(stage.name)
        g.add_edges_from(self.edges)
        return g

    def validate(self) -> None:
        """Structural hygiene: unique stages, known edges, acyclic, non-empty stages, delay sanity."""
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"workflow {self.id}: duplicate stage names")
        if not self.stages:
            raise ValueError(f"workflow {self.id}: no stages")
        known = set(names)
        for a, b in self.edges:
            if a not in known or b not in known:
                raise ValueError(
                    f"workflow {self.id}: edge ({a}, {b}) references an "
                    f"unknown stage"
                )
            if a == b:
                raise ValueError(f"workflow {self.id}: self-edge on {a}")
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"workflow {self.id}: precedence cycle {cycle}")
        for stage in self.stages:
            if not stage.tasks:
                raise ValueError(
                    f"workflow {self.id}: stage {stage.name} has no tasks"
                )
        edge_set = set(map(tuple, self.edges))
        for edge, delay in self.edge_delays.items():
            if tuple(edge) not in edge_set:
                raise ValueError(
                    f"workflow {self.id}: delay on unknown edge {edge}"
                )
            if delay < 0:
                raise ValueError(
                    f"workflow {self.id}: negative delay on edge {edge}"
                )

    def edge_delay(self, pred: str, succ: str) -> int:
        """Transfer delay on edge (pred, succ); 0 when unspecified."""
        return self.edge_delays.get((pred, succ), 0)

    def topological_stages(self) -> Tuple[List[Stage], List[List[int]]]:
        """(stages in topological order, predecessor indices per stage)."""
        stages, preds, _ = self.topological_structure()
        return stages, preds

    def topological_structure(
        self,
    ) -> Tuple[List[Stage], List[List[int]], List[List[int]]]:
        """(stages in topological order, predecessor indices, transfer
        delays aligned with the predecessor lists)."""
        by_name = {s.name: s for s in self.stages}
        order = list(nx.topological_sort(self.graph()))
        index = {name: i for i, name in enumerate(order)}
        preds: List[List[int]] = [[] for _ in order]
        delays: List[List[int]] = [[] for _ in order]
        for a, b in self.edges:
            entry = (index[a], self.edge_delay(a, b))
            preds[index[b]].append(entry[0])
            delays[index[b]].append(entry[1])
        for i in range(len(order)):
            paired = sorted(zip(preds[i], delays[i]))
            preds[i] = [p for p, _ in paired]
            delays[i] = [d for _, d in paired]
        return [by_name[name] for name in order], preds, delays

    def terminal_stage_names(self) -> List[str]:
        """Stages with no successors -- they define job completion."""
        g = self.graph()
        return [n for n in g.nodes if g.out_degree(n) == 0]

    # ------------------------------------------------- Job-compatible API
    @property
    def tasks(self) -> List[Task]:
        return [t for s in self.stages for t in s.tasks]

    @property
    def total_work(self) -> int:
        return sum(t.duration for t in self.tasks)

    @property
    def is_completed(self) -> bool:
        return all(t.is_completed for t in self.tasks)

    @property
    def pending_tasks(self) -> List[Task]:
        return [t for t in self.tasks if not t.is_completed]

    @property
    def last_stage_tasks(self) -> List[Task]:
        terminal = set(self.terminal_stage_names())
        return [t for s in self.stages if s.name in terminal for t in s.tasks]

    def laxity(self) -> int:
        """Slack: deadline - earliest start - total work (paper VI.B)."""
        return self.deadline - self.earliest_start - self.total_work

    def reset_runtime_state(self) -> None:
        """Clear every task's execution flags (new replication)."""
        for t in self.tasks:
            t.reset_runtime_state()

    def with_earliest_start(self, earliest_start: int) -> "WorkflowJob":
        """A shallow view with a clamped effective EST (Table 2 lines 1-4)."""
        if earliest_start == self.earliest_start:
            return self
        view = WorkflowJob.__new__(WorkflowJob)
        view.id = self.id
        view.arrival_time = self.arrival_time
        view.earliest_start = earliest_start
        view.deadline = self.deadline
        view.stages = self.stages
        view.edges = self.edges
        view.edge_delays = self.edge_delays
        return view

    # -------------------------------------------------------------- timing
    def critical_path_time(
        self, total_map_slots: int, total_reduce_slots: int
    ) -> int:
        """TE for workflows: longest path of per-stage LPT makespans,
        including per-edge transfer delays."""
        stages, preds, delays = self.topological_structure()
        finish = [0] * len(stages)
        for i, stage in enumerate(stages):
            map_durs = [t.duration for t in stage.tasks if t.is_map]
            red_durs = [t.duration for t in stage.tasks if t.is_reduce]
            span = _phase_makespan(map_durs, total_map_slots) if map_durs else 0
            if red_durs:
                span += _phase_makespan(red_durs, total_reduce_slots)
            start = max(
                (finish[p] + d for p, d in zip(preds[i], delays[i])),
                default=0,
            )
            finish[i] = start + span
        return max(finish)


def from_mapreduce(job: Job) -> WorkflowJob:
    """View a classic MapReduce job as a two-stage workflow."""
    stages = [Stage("map", list(job.map_tasks))]
    edges: List[Tuple[str, str]] = []
    if job.reduce_tasks:
        stages.append(Stage("reduce", list(job.reduce_tasks)))
        edges.append(("map", "reduce"))
    return WorkflowJob(
        id=job.id,
        arrival_time=job.arrival_time,
        earliest_start=job.earliest_start,
        deadline=job.deadline,
        stages=stages,
        edges=edges,
    )


def validate_workflows(jobs: Sequence[WorkflowJob]) -> List[str]:
    """Workload-level hygiene for workflow streams."""
    problems: List[str] = []
    seen_jobs = set()
    seen_tasks = set()
    for job in jobs:
        if job.id in seen_jobs:
            problems.append(f"duplicate workflow id {job.id}")
        seen_jobs.add(job.id)
        try:
            job.validate()
        except ValueError as exc:
            problems.append(str(exc))
            continue
        if job.earliest_start < job.arrival_time:
            problems.append(f"workflow {job.id}: EST before arrival")
        if job.deadline <= job.earliest_start:
            problems.append(f"workflow {job.id}: deadline not after EST")
        for t in job.tasks:
            if t.id in seen_tasks:
                problems.append(f"duplicate task id {t.id}")
            seen_tasks.add(t.id)
            if t.duration < 1:
                problems.append(f"task {t.id}: non-positive duration")
            if t.job_id != job.id:
                problems.append(f"task {t.id}: wrong parent {t.job_id}")
    return problems


@dataclass
class WorkflowWorkloadParams:
    """Random layered-DAG workload in the Table 3 style."""

    num_jobs: int = 20
    #: DU bounds on the number of stages per workflow.
    stages_range: Tuple[int, int] = (2, 5)
    #: DU bounds on tasks per stage.
    tasks_per_stage_range: Tuple[int, int] = (1, 8)
    #: DU upper bound of task execution times (seconds).
    e_max: int = 20
    #: Probability that a stage consumes reduce slots instead of map slots.
    reduce_stage_probability: float = 0.3
    #: Probability of an extra (skip-level) edge beyond the spine chain.
    extra_edge_probability: float = 0.3
    #: DU bounds on per-edge data-transfer delays (seconds); (0, 0) = none.
    transfer_delay_range: Tuple[int, int] = (0, 0)
    #: d_UL of the deadline multiplier U[1, d_UL] over the critical path.
    deadline_multiplier_max: float = 3.0
    arrival_rate: float = 0.01
    total_map_slots: int = 20
    total_reduce_slots: int = 20
    first_job_id: int = 0

    def validate(self) -> None:
        """Reject out-of-range parameters before generation."""
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        lo, hi = self.stages_range
        if lo < 1 or hi < lo:
            raise ValueError(f"stages_range [{lo}, {hi}] invalid")
        lo, hi = self.tasks_per_stage_range
        if lo < 1 or hi < lo:
            raise ValueError(f"tasks_per_stage_range [{lo}, {hi}] invalid")
        if self.e_max < 1:
            raise ValueError("e_max must be >= 1")
        if not 0 <= self.reduce_stage_probability <= 1:
            raise ValueError("reduce_stage_probability outside [0, 1]")
        if not 0 <= self.extra_edge_probability <= 1:
            raise ValueError("extra_edge_probability outside [0, 1]")
        lo, hi = self.transfer_delay_range
        if lo < 0 or hi < lo:
            raise ValueError(f"transfer_delay_range [{lo}, {hi}] invalid")
        if self.deadline_multiplier_max < 1:
            raise ValueError("deadline multiplier upper bound must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")


def generate_workflow_workload(
    params: WorkflowWorkloadParams,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
) -> List[WorkflowJob]:
    """Draw an open stream of random layered-DAG workflows.

    Each stage ``i`` (i > 0) depends on one *random* earlier stage (a
    random-tree spine guaranteeing connectivity while creating parallel
    branches); extra edges between non-adjacent stages are then added with
    ``extra_edge_probability``, serialising branches into diamonds and
    fan-ins.  (A chain spine would make skip-level edges transitively
    redundant -- density would have no effect at all.)
    """
    params.validate()
    streams = streams or RandomStreams(seed)
    arrivals = streams.distributions("workflow.arrivals")
    shape = streams.distributions("workflow.shape")
    durations = streams.distributions("workflow.durations")
    deadlines = streams.distributions("workflow.deadlines")

    jobs: List[WorkflowJob] = []
    now = 0.0
    for i in range(params.num_jobs):
        job_id = params.first_job_id + i
        now += arrivals.exponential_rate(params.arrival_rate)
        arrival = int(round(now))

        n_stages = shape.du(*params.stages_range)
        stages: List[Stage] = []
        for s in range(n_stages):
            kind = (
                TaskKind.REDUCE
                if shape.bernoulli(params.reduce_stage_probability)
                else TaskKind.MAP
            )
            k = shape.du(*params.tasks_per_stage_range)
            tasks = [
                Task(
                    id=f"w{job_id}_s{s}_t{t}",
                    job_id=job_id,
                    kind=kind,
                    duration=durations.du(1, params.e_max),
                )
                for t in range(k)
            ]
            stages.append(Stage(f"s{s}", tasks))

        edges = []
        parents = {}
        for s in range(1, n_stages):
            parent = shape.du(0, s - 1)
            parents[s] = parent
            edges.append((f"s{parent}", f"s{s}"))
        for a in range(n_stages):
            for b in range(a + 1, n_stages):
                if parents.get(b) == a:
                    continue  # already the spine edge
                if shape.bernoulli(params.extra_edge_probability):
                    edges.append((f"s{a}", f"s{b}"))

        edge_delays = {}
        lo, hi = params.transfer_delay_range
        if hi > 0:
            edge_delays = {edge: durations.du(lo, hi) for edge in edges}

        job = WorkflowJob(
            id=job_id,
            arrival_time=arrival,
            earliest_start=arrival,
            deadline=arrival + 1,  # placeholder until TE is known
            stages=stages,
            edges=edges,
            edge_delays=edge_delays,
        )
        te = job.critical_path_time(
            params.total_map_slots, params.total_reduce_slots
        )
        multiplier = deadlines.uniform(1.0, params.deadline_multiplier_max)
        job.deadline = arrival + max(1, int(math.ceil(te * multiplier)))
        jobs.append(job)
    return jobs
