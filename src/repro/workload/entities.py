"""Job, Task and Resource entities (paper Sections III.A and V.A).

All times are integer simulated seconds: the CP formulation reasons over
integer start times (CP Optimizer does the same without discretising time;
our solver uses integral bounds), and second-level granularity matches the
paper's workload parameters.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class TaskKind(enum.Enum):
    """Map or reduce task (selects the slot pool consumed)."""
    MAP = "map"
    REDUCE = "reduce"


@dataclass
class Task:
    """One map or reduce task.

    ``duration`` is the execution time :math:`e_t` (includes input read and
    shuffle, per Section III.A); ``demand`` is the resource capacity
    requirement :math:`q_t` (1 in the paper).  The two boolean flags are the
    runtime attributes of the Java implementation (Section V.A).
    """

    id: str
    job_id: int
    kind: TaskKind
    duration: int
    demand: int = 1
    is_completed: bool = False
    is_prev_scheduled: bool = False
    #: Simulation time the task finished (None while pending/running);
    #: lets schedulers compute stage readiness (e.g. transfer delays).
    completed_at: Optional[int] = None
    #: Number of execution attempts that *failed* (fault injection); the
    #: recovery policy compares this against its retry budget.
    attempts: int = 0
    #: The planned duration before runtime perturbation first revealed a
    #: different actual execution time (None while unperturbed).  Stragglers
    #: are drawn against this, so retries never compound factors.
    nominal_duration: Optional[int] = None

    @property
    def is_map(self) -> bool:
        return self.kind is TaskKind.MAP

    @property
    def is_reduce(self) -> bool:
        return self.kind is TaskKind.REDUCE

    def reset_runtime_state(self) -> None:
        """Clear execution flags so the task can be re-run (new replication)."""
        self.is_completed = False
        self.is_prev_scheduled = False
        self.completed_at = None
        self.attempts = 0
        if self.nominal_duration is not None:
            self.duration = self.nominal_duration
            self.nominal_duration = None


@dataclass
class Job:
    """A MapReduce job with an SLA (earliest start, execution times, deadline)."""

    id: int
    arrival_time: int  # v_j
    earliest_start: int  # s_j  (>= arrival time)
    deadline: int  # d_j
    map_tasks: List[Task] = field(default_factory=list)
    reduce_tasks: List[Task] = field(default_factory=list)

    # -------------------------------------------------------------- derived
    @property
    def tasks(self) -> List[Task]:
        return self.map_tasks + self.reduce_tasks

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_tasks)

    @property
    def total_map_work(self) -> int:
        return sum(t.duration for t in self.map_tasks)

    @property
    def total_reduce_work(self) -> int:
        return sum(t.duration for t in self.reduce_tasks)

    @property
    def total_work(self) -> int:
        return self.total_map_work + self.total_reduce_work

    @property
    def last_stage_tasks(self) -> List[Task]:
        """The tasks whose completion defines the job's completion time.

        Map-only jobs (common in the Facebook mix) complete with their maps.
        """
        return self.reduce_tasks if self.reduce_tasks else self.map_tasks

    def laxity(self) -> int:
        """Slack: ``d_j - s_j - sum(e_t)`` (paper, Section VI.B)."""
        return self.deadline - self.earliest_start - self.total_work

    @property
    def is_completed(self) -> bool:
        return all(t.is_completed for t in self.tasks)

    @property
    def pending_tasks(self) -> List[Task]:
        return [t for t in self.tasks if not t.is_completed]

    def reset_runtime_state(self) -> None:
        """Clear every task's execution flags (new replication)."""
        for t in self.tasks:
            t.reset_runtime_state()

    def with_earliest_start(self, earliest_start: int) -> "Job":
        """A shallow view with a clamped effective EST (Table 2 lines 1-4).

        The task lists are shared -- only the SLA field differs -- so the
        resource manager can feed the clamped value to the CP model while
        the metrics keep using the original ``earliest_start``.
        """
        if earliest_start == self.earliest_start:
            return self
        return Job(
            id=self.id,
            arrival_time=self.arrival_time,
            earliest_start=earliest_start,
            deadline=self.deadline,
            map_tasks=self.map_tasks,
            reduce_tasks=self.reduce_tasks,
        )

    def copy(self) -> "Job":
        """Deep copy with fresh runtime state (for re-running replications)."""
        return Job(
            id=self.id,
            arrival_time=self.arrival_time,
            earliest_start=self.earliest_start,
            deadline=self.deadline,
            map_tasks=[_fresh_copy(t) for t in self.map_tasks],
            reduce_tasks=[_fresh_copy(t) for t in self.reduce_tasks],
        )


def _fresh_copy(task: Task) -> Task:
    """A pristine copy of ``task`` at its nominal (pre-perturbation) duration."""
    duration = (
        task.nominal_duration
        if task.nominal_duration is not None
        else task.duration
    )
    return Task(task.id, task.job_id, task.kind, duration, task.demand)


@dataclass(frozen=True)
class Resource:
    """A worker with independent map/reduce slot counts (Section III.A)."""

    id: int
    map_capacity: int  # c_r^mp
    reduce_capacity: int  # c_r^rd

    def __post_init__(self) -> None:
        if self.map_capacity < 0 or self.reduce_capacity < 0:
            raise ValueError(f"resource {self.id}: negative capacity")


def make_uniform_cluster(
    num_resources: int, map_capacity: int = 2, reduce_capacity: int = 2
) -> List[Resource]:
    """The paper's system model: ``m`` identical resources."""
    if num_resources <= 0:
        raise ValueError(f"need at least one resource, got {num_resources}")
    return [
        Resource(i, map_capacity, reduce_capacity) for i in range(num_resources)
    ]


def make_heterogeneous_cluster(
    slot_spec: Sequence[Tuple[int, int]],
) -> List[Resource]:
    """A cluster from explicit per-resource (map slots, reduce slots) pairs.

    The paper's model allows non-uniform resources (Section III.A defines
    per-resource capacities); the evaluation only uses uniform clusters, but
    the joint formulation and the V.D regrouping handle mixed shapes --
    e.g. ``[(4, 0), (0, 4), (2, 2)]`` for specialised map/reduce machines.
    """
    if not slot_spec:
        raise ValueError("need at least one resource")
    return [
        Resource(i, int(mp), int(rd)) for i, (mp, rd) in enumerate(slot_spec)
    ]


def cluster_capacities(resources: Sequence[Resource]) -> Tuple[int, int]:
    """(total map slots, total reduce slots)."""
    return (
        sum(r.map_capacity for r in resources),
        sum(r.reduce_capacity for r in resources),
    )


def _phase_makespan(durations: Iterable[int], slots: int) -> int:
    """LPT list-scheduling makespan of independent tasks on ``slots`` machines."""
    durations = sorted(durations, reverse=True)
    if not durations:
        return 0
    if slots <= 0:
        raise ValueError("phase with tasks needs at least one slot")
    if slots >= len(durations):
        return durations[0]
    heap = [0] * slots
    for d in durations:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + d)
    return max(heap)


def minimum_execution_time(
    job: Job, total_map_slots: int, total_reduce_slots: int
) -> int:
    """``TE``: the job's minimum completion time on an empty system (Table 3).

    Maps run first (LPT on all map slots), then -- because of the barrier --
    reduces (LPT on all reduce slots).
    """
    map_span = _phase_makespan(
        (t.duration for t in job.map_tasks), total_map_slots
    )
    reduce_span = _phase_makespan(
        (t.duration for t in job.reduce_tasks), total_reduce_slots
    )
    return map_span + reduce_span
