"""Slot-based cluster execution for policy-driven schedulers.

The Hadoop-style execution model MinEDF-WC assumes: each resource exposes
map/reduce slots; whenever a slot frees (or a job arrives / becomes
eligible) the scheduling *policy* is consulted and may start pending tasks
on free slots immediately.  Tasks are never preempted.

This is deliberately different from MRCP-RM's plan-driven executor
(:mod:`repro.core.executor`): the baselines pull work when capacity frees,
MRCP-RM pushes work at planned instants.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.schedule import SchedulingError, SlotKind
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import PRIORITY_RELEASE, Simulator
from repro.workload.entities import Job, Resource, Task


class SlotCluster:
    """Tracks free map/reduce slots per resource and runs tasks on them."""

    def __init__(
        self,
        sim: Simulator,
        resources: Sequence[Resource],
        on_task_complete: Optional[Callable[[Task, int], None]] = None,
    ) -> None:
        self.sim = sim
        self.resources = list(resources)
        self._free: Dict[Tuple[int, SlotKind], int] = {}
        for r in self.resources:
            self._free[(r.id, SlotKind.MAP)] = r.map_capacity
            self._free[(r.id, SlotKind.REDUCE)] = r.reduce_capacity
        self.on_task_complete = on_task_complete
        self._running: Dict[str, Tuple[Task, int]] = {}
        self.tasks_started = 0

    # -------------------------------------------------------------- queries
    def free_count(self, kind: SlotKind) -> int:
        """Total free slots of ``kind`` across the cluster."""
        return sum(
            count for (rid, k), count in self._free.items() if k is kind
        )

    def free_resources(self, kind: SlotKind) -> List[int]:
        """Resource ids with at least one free slot of ``kind``."""
        return [
            rid
            for (rid, k), count in self._free.items()
            if k is kind and count > 0
        ]

    def running_count(self) -> int:
        """Number of tasks currently executing."""
        return len(self._running)

    # ------------------------------------------------------------ execution
    def start_task(self, task: Task, resource_id: int) -> None:
        """Occupy a slot and run ``task`` to completion."""
        kind = SlotKind.for_task(task)
        key = (resource_id, kind)
        if key not in self._free:
            raise SchedulingError(f"unknown resource {resource_id}")
        if self._free[key] <= 0:
            raise SchedulingError(
                f"no free {kind.value} slot on resource {resource_id} "
                f"for task {task.id}"
            )
        if task.id in self._running or task.is_completed:
            raise SchedulingError(f"task {task.id} started twice")
        self._free[key] -= 1
        self._running[task.id] = (task, resource_id)
        task.is_prev_scheduled = True
        self.tasks_started += 1
        self.sim.schedule(
            task.duration,
            lambda: self._complete(task, resource_id),
            PRIORITY_RELEASE,
        )

    def _complete(self, task: Task, resource_id: int) -> None:
        del self._running[task.id]
        task.is_completed = True
        task.completed_at = int(self.sim.now)
        self._free[(resource_id, SlotKind.for_task(task))] += 1
        if self.on_task_complete is not None:
            self.on_task_complete(task, resource_id)

    def assert_quiescent(self) -> None:
        """After a drained run: nothing running, all slots returned."""
        if self._running:
            raise SchedulingError(
                f"{len(self._running)} tasks still running at drain"
            )
        for r in self.resources:
            if self._free[(r.id, SlotKind.MAP)] != r.map_capacity:
                raise SchedulingError(f"resource {r.id}: leaked map slots")
            if self._free[(r.id, SlotKind.REDUCE)] != r.reduce_capacity:
                raise SchedulingError(f"resource {r.id}: leaked reduce slots")


class SlotPolicy:
    """Strategy interface: pick (task, resource) pairs to start *now*."""

    name = "policy"

    def select(
        self,
        cluster: SlotCluster,
        jobs: Sequence[Job],
        now: float,
    ) -> List[Tuple[Task, int]]:
        """Return task placements; every placement must use a free slot.

        ``jobs`` are the active (arrived, uncompleted) jobs whose earliest
        start time has been reached, in arrival order.  The policy is
        re-invoked after every event, so returning a subset is fine.
        """
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    @staticmethod
    def eligible_tasks(job: Job) -> List[Task]:
        """Pending tasks that may start now.

        MapReduce jobs: maps always, reduces only once every map has
        completed (the barrier).  DAG workflows: a stage's tasks become
        eligible when every predecessor stage has fully completed.
        Workflows with data-transfer delays are not supported by the
        slot-pull execution model (the scheduler has no wake-up for "ready
        in d seconds"); route those through MRCP-RM.
        """
        if hasattr(job, "topological_structure"):
            stages, preds, delays = job.topological_structure()
            if any(d for ds in delays for d in ds):
                raise ValueError(
                    f"workflow {job.id}: slot-based schedulers do not "
                    f"support transfer delays; use MRCP-RM"
                )
            eligible: List[Task] = []
            for i, stage in enumerate(stages):
                if any(
                    not t.is_completed
                    for p in preds[i]
                    for t in stages[p].tasks
                ):
                    continue  # some predecessor stage still running/pending
                eligible.extend(
                    t
                    for t in stage.tasks
                    if not t.is_completed and not t.is_prev_scheduled
                )
            return eligible
        pending_maps = [
            t for t in job.map_tasks if not t.is_completed and not t.is_prev_scheduled
        ]
        if pending_maps:
            return pending_maps
        if any(not t.is_completed for t in job.map_tasks):
            return []  # maps all dispatched but still running: barrier holds
        return [
            t
            for t in job.reduce_tasks
            if not t.is_completed and not t.is_prev_scheduled
        ]

    @staticmethod
    def place_tasks(
        free_left: Dict[Tuple[int, SlotKind], int],
        tasks: Sequence[Task],
        limit: Optional[int] = None,
    ) -> List[Tuple[Task, int]]:
        """Greedy placement of up to ``limit`` tasks onto remaining slots.

        ``free_left`` is the caller's running tally of free slots (start a
        dispatch round with a copy of the cluster's state and thread it
        through successive calls); it is decremented in place.
        """
        placements: List[Tuple[Task, int]] = []
        if limit is None:
            limit = len(tasks)
        for task in tasks:
            if len(placements) >= limit:
                break
            kind = SlotKind.for_task(task)
            # Least-loaded resource first: spread tasks out.
            candidates = [
                (count, r)
                for (r, k), count in free_left.items()
                if k is kind and count > 0
            ]
            if not candidates:
                continue
            candidates.sort(key=lambda p: (-p[0], p[1]))
            rid = candidates[0][1]
            free_left[(rid, kind)] -= 1
            placements.append((task, rid))
        return placements

    @staticmethod
    def free_snapshot(cluster: SlotCluster) -> Dict[Tuple[int, SlotKind], int]:
        return dict(cluster._free)


class SlotScheduler:
    """Event loop glue: arrivals, barriers, policy dispatch, metrics."""

    def __init__(
        self,
        sim: Simulator,
        resources: Sequence[Resource],
        policy: SlotPolicy,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.metrics = metrics
        self.cluster = SlotCluster(
            sim, resources, on_task_complete=self._task_done
        )
        self._jobs: Dict[int, Job] = {}
        self._active: Dict[int, Job] = {}  # eligible, uncompleted
        self._arrival_order: List[int] = []

    # --------------------------------------------------------------- intake
    def submit(self, job: Job) -> None:
        """A user submits a job at the current simulation time."""
        now = self.sim.now
        if self.metrics is not None:
            self.metrics.job_arrived(job)
        self._jobs[job.id] = job
        self._arrival_order.append(job.id)
        if job.earliest_start > now:
            self.sim.schedule_at(
                job.earliest_start, lambda j=job: self._activate(j)
            )
        else:
            self._activate(job)

    def _activate(self, job: Job) -> None:
        self._active[job.id] = job
        self._dispatch()

    def _task_done(self, task: Task, resource_id: int) -> None:
        job = self._jobs[task.job_id]
        if job.is_completed:
            self._active.pop(job.id, None)
            if self.metrics is not None:
                self.metrics.job_completed(job, self.sim.now)
        self._dispatch()

    # ------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        t0 = _time.perf_counter()
        jobs = [
            self._jobs[jid]
            for jid in self._arrival_order
            if jid in self._active
        ]
        placements = self.policy.select(self.cluster, jobs, self.sim.now)
        for task, rid in placements:
            self.cluster.start_task(task, rid)
        if self.metrics is not None:
            self.metrics.record_overhead(
                _time.perf_counter() - t0, sim_time=self.sim.now
            )

    @property
    def active_jobs(self) -> List[Job]:
        return list(self._active.values())
