"""The ARIA makespan performance model (Verma et al. [8]).

MinEDF-WC sizes each job's slot allocation from bounds on the completion
time of a phase of ``k`` independent tasks on ``n`` slots:

* lower bound: ``W / n``   (perfect packing of total work ``W``),
* upper bound: ``(W - max) / n + max`` (the classic list-scheduling bound).

ARIA uses the average of the two as its estimate, i.e.

    T_avg(n) = (W - max/2) / n + max/2

and allocates the minimum total number of slots such that the map estimate
plus the reduce estimate fits in the time remaining to the deadline.  The
continuous relaxation has the well-known Lagrange solution

    n_m = (A + sqrt(A*B)) / D',   n_r = (B + sqrt(A*B)) / D'

with ``A``/``B`` the adjusted phase works and ``D'`` the deadline budget
less the constant terms.  We take that closed form, round up, clamp to the
task counts, and repair with a short local search (the rounding can leave
the constraint violated by a sliver).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def phase_time_estimate(durations: Sequence[int], slots: int) -> float:
    """ARIA's average-of-bounds estimate for one phase on ``slots`` slots."""
    if not durations:
        return 0.0
    if slots <= 0:
        raise ValueError("slots must be positive for a non-empty phase")
    work = float(sum(durations))
    longest = float(max(durations))
    return (work - longest / 2.0) / slots + longest / 2.0


def _min_slots_single_phase(durations: Sequence[int], budget: float) -> int:
    """Smallest n with estimate <= budget, or len(durations) if impossible."""
    k = len(durations)
    if k == 0:
        return 0
    work = float(sum(durations))
    longest = float(max(durations))
    denom = budget - longest / 2.0
    if denom <= 0:
        return k
    n = max(1, math.ceil((work - longest / 2.0) / denom))
    return min(n, k)


def min_slots_for_deadline(
    map_durations: Sequence[int],
    reduce_durations: Sequence[int],
    time_budget: float,
) -> Tuple[int, int]:
    """Minimum (map slots, reduce slots) meeting ``time_budget``.

    When the deadline cannot be met even at maximum parallelism the model
    returns (k_m, k_r): ARIA falls back to running the job as fast as
    possible.
    """
    k_m, k_r = len(map_durations), len(reduce_durations)
    if k_m == 0 and k_r == 0:
        return 0, 0
    if k_m == 0:
        return 0, _min_slots_single_phase(reduce_durations, time_budget)
    if k_r == 0:
        return _min_slots_single_phase(map_durations, time_budget), 0

    w_m, m_m = float(sum(map_durations)), float(max(map_durations))
    w_r, m_r = float(sum(reduce_durations)), float(max(reduce_durations))
    a = w_m - m_m / 2.0
    b = w_r - m_r / 2.0
    budget = time_budget - (m_m + m_r) / 2.0

    if budget <= 0:
        return k_m, k_r

    # Continuous optimum via Lagrange multipliers, then integer repair.
    root = math.sqrt(max(a, 0.0) * max(b, 0.0))
    n_m = max(1, math.ceil((a + root) / budget)) if a > 0 else 1
    n_r = max(1, math.ceil((b + root) / budget)) if b > 0 else 1
    n_m, n_r = min(n_m, k_m), min(n_r, k_r)

    def fits(nm: int, nr: int) -> bool:
        return (
            phase_time_estimate(map_durations, nm)
            + phase_time_estimate(reduce_durations, nr)
            <= time_budget
        )

    # Repair upward (rounding may undershoot), preferring the cheaper bump.
    while not fits(n_m, n_r):
        if n_m >= k_m and n_r >= k_r:
            return k_m, k_r
        gain_m = (
            phase_time_estimate(map_durations, n_m)
            - phase_time_estimate(map_durations, min(n_m + 1, k_m))
            if n_m < k_m
            else -1.0
        )
        gain_r = (
            phase_time_estimate(reduce_durations, n_r)
            - phase_time_estimate(reduce_durations, min(n_r + 1, k_r))
            if n_r < k_r
            else -1.0
        )
        if gain_m >= gain_r:
            n_m = min(n_m + 1, k_m)
        else:
            n_r = min(n_r + 1, k_r)

    # Trim any slack the closed form over-provisioned.
    while n_m > 1 and fits(n_m - 1, n_r):
        n_m -= 1
    while n_r > 1 and fits(n_m, n_r - 1):
        n_r -= 1
    return n_m, n_r


def remaining_durations(tasks) -> List[int]:
    """Durations of a task list's uncompleted members (scheduler helper)."""
    return [t.duration for t in tasks if not t.is_completed]
