"""Plain earliest-deadline-first slot scheduling.

Every free slot goes to the eligible task of the job with the earliest
deadline (maximum parallelism -- no minimum-allocation sizing).  A useful
reference point between FCFS and MinEDF-WC.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.slot_cluster import SlotCluster, SlotPolicy
from repro.workload.entities import Job, Task


class EdfPolicy(SlotPolicy):
    """Greedy EDF with maximum parallelism."""

    name = "edf"

    def select(
        self,
        cluster: SlotCluster,
        jobs: Sequence[Job],
        now: float,
    ) -> List[Tuple[Task, int]]:
        free_left = self.free_snapshot(cluster)
        placements: List[Tuple[Task, int]] = []
        for job in sorted(jobs, key=lambda j: (j.deadline, j.arrival_time, j.id)):
            eligible = self.eligible_tasks(job)
            if eligible:
                placements.extend(self.place_tasks(free_left, eligible))
        return placements
