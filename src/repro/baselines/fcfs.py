"""First-come-first-served slot scheduling.

Jobs receive slots in arrival order, each at maximum parallelism.  The
deadline-oblivious floor that any SLA-aware policy should beat.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.slot_cluster import SlotCluster, SlotPolicy
from repro.workload.entities import Job, Task


class FcfsPolicy(SlotPolicy):
    """Arrival-order dispatch with maximum parallelism."""

    name = "fcfs"

    def select(
        self,
        cluster: SlotCluster,
        jobs: Sequence[Job],
        now: float,
    ) -> List[Tuple[Task, int]]:
        free_left = self.free_snapshot(cluster)
        placements: List[Tuple[Task, int]] = []
        for job in jobs:  # jobs arrive already in arrival order
            eligible = self.eligible_tasks(job)
            if eligible:
                placements.extend(self.place_tasks(free_left, eligible))
        return placements
