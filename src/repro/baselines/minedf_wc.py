"""MinEDF-WC (Verma et al. [8]): minimum-allocation EDF, work-conserving.

The policy the paper compares MRCP-RM against (Figures 2-3).  On every
scheduling event:

1. Active jobs are ordered earliest-deadline-first.
2. Each job is allocated the *minimum* number of slots the ARIA performance
   model says it needs to meet its deadline from the current instant
   (:func:`repro.baselines.perf_model.min_slots_for_deadline`), counting
   slots it already holds (running tasks).
3. Work conservation: slots still free after the minimum pass are handed to
   jobs with pending tasks, again in EDF order.

De-allocation ("WC" in the name) is emergent: allocations are recomputed on
every event and running tasks are never preempted, so a newly arrived urgent
job reclaims spare capacity as loaned slots free up -- exactly the paper's
"dynamically allocate and de-allocate resources (task slots) from active
jobs as required".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.perf_model import min_slots_for_deadline
from repro.baselines.slot_cluster import SlotCluster, SlotPolicy
from repro.core.schedule import SlotKind
from repro.workload.entities import Job, Task


def _running_counts(job: Job) -> Tuple[int, int]:
    """(running maps, running reduces): dispatched but not completed.

    Partitioned by task kind so DAG workflows (whose stages each consume
    one slot kind) are sized correctly too.
    """
    rm = rr = 0
    for t in job.tasks:
        if t.is_prev_scheduled and not t.is_completed:
            if t.is_map:
                rm += 1
            else:
                rr += 1
    return rm, rr


class MinEdfWcPolicy(SlotPolicy):
    """Minimum EDF with work-conserving spare-slot allocation."""

    name = "minedf-wc"

    def select(
        self,
        cluster: SlotCluster,
        jobs: Sequence[Job],
        now: float,
    ) -> List[Tuple[Task, int]]:
        edf_jobs = sorted(jobs, key=lambda j: (j.deadline, j.arrival_time, j.id))
        free_left = self.free_snapshot(cluster)
        placements: List[Tuple[Task, int]] = []
        leftovers: List[Tuple[Job, List[Task]]] = []

        # ---- pass 1: minimum allocations, EDF order
        for job in edf_jobs:
            eligible = self.eligible_tasks(job)
            if not eligible:
                continue
            budget = float(job.deadline - now)
            map_rem = [
                t.duration for t in job.tasks if t.is_map and not t.is_completed
            ]
            red_rem = [
                t.duration
                for t in job.tasks
                if t.is_reduce and not t.is_completed
            ]
            n_m, n_r = min_slots_for_deadline(map_rem, red_rem, budget)
            running_m, running_r = _running_counts(job)
            if SlotKind.for_task(eligible[0]) is SlotKind.MAP:
                want = max(0, n_m - running_m)
            else:
                want = max(0, n_r - running_r)
            placed = self.place_tasks(free_left, eligible, limit=want)
            placements.extend(placed)
            placed_ids = {t.id for t, _ in placed}
            rest = [t for t in eligible if t.id not in placed_ids]
            if rest:
                leftovers.append((job, rest))

        # ---- pass 2: work conservation -- spare slots to pending tasks
        for _, rest in leftovers:
            placements.extend(self.place_tasks(free_left, rest))
        return placements
