"""Baseline schedulers the paper compares against (Section VI.B.1).

* :mod:`repro.baselines.minedf_wc` -- MinEDF-WC from Verma, Cherkasova,
  Campbell [8]: earliest-deadline-first job ordering, *minimum* slot
  allocations derived from the ARIA makespan performance model, and
  work-conserving use of spare slots with reclaim on new arrivals.
* :mod:`repro.baselines.edf` -- plain EDF with maximum parallelism.
* :mod:`repro.baselines.fcfs` -- first-come-first-served.

All three run on the slot-based cluster model of
:mod:`repro.baselines.slot_cluster`: tasks start when a slot frees up
(work-pulling), unlike MRCP-RM's plan-driven executor.
"""

from repro.baselines.perf_model import (
    min_slots_for_deadline,
    phase_time_estimate,
)
from repro.baselines.slot_cluster import SlotCluster, SlotPolicy, SlotScheduler
from repro.baselines.minedf_wc import MinEdfWcPolicy
from repro.baselines.edf import EdfPolicy
from repro.baselines.fcfs import FcfsPolicy

__all__ = [
    "phase_time_estimate",
    "min_slots_for_deadline",
    "SlotCluster",
    "SlotPolicy",
    "SlotScheduler",
    "MinEdfWcPolicy",
    "EdfPolicy",
    "FcfsPolicy",
]
