"""Per-figure experiment definitions (Figures 2-9) plus ablations.

Every figure of the paper's evaluation maps to a :class:`FigureSeries`: the
factor being varied, and one :class:`~repro.experiments.runner.RunConfig`
per (factor value, scheduler) combination.

Two profiles:

* ``SCALED`` (default): the same parameter *geometry* as Table 3/4 with task
  counts and the cluster shrunk 5x (synthetic) / 10x (Facebook) and short
  job streams -- minutes of wall time on a laptop.  Workload intensity
  (work per job relative to cluster capacity per inter-arrival) is
  preserved, so the figures' qualitative shapes are reproduced.
* ``PAPER``: the original Table 3/4 values.  Expect hours of wall time; use
  for spot checks rather than sweeps.

The boldface (default) values of Table 3 are not recoverable from the
paper's text; DESIGN.md Section 4 records the choices used here
(e_max=50, p=0.5, s_max=10000, d_UL=5, lambda=0.01, m=50).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.core.formulation import FormulationMode
from repro.core.mrcp_rm import MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.experiments.runner import RunConfig, SystemConfig
from repro.workload import (
    FacebookWorkloadParams,
    SyntheticWorkloadParams,
    WorkflowWorkloadParams,
)

SCALED = "scaled"
PAPER = "paper"
PROFILES = (SCALED, PAPER)


@dataclass
class LabeledConfig:
    """One point of a figure: a factor value (and scheduler) to run."""

    label: str
    factor_value: float
    scheduler: str
    config: RunConfig


@dataclass
class FigureSeries:
    """All runs needed to regenerate one figure."""

    figure: str
    title: str
    factor: str
    configs: List[LabeledConfig]
    metrics: Sequence[str] = ("O", "T", "P")
    notes: str = ""


def _check_profile(profile: str) -> None:
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected {PROFILES}")


# --------------------------------------------------------------------------
# Baseline parameterisations per profile
# --------------------------------------------------------------------------

def default_solver_params(profile: str) -> SolverParams:
    """Per-invocation CP budget for the given profile."""
    if profile == SCALED:
        return SolverParams(time_limit=0.15, tree_fail_limit=300)
    return SolverParams(time_limit=0.5, tree_fail_limit=1000)


def default_mrcp_config(profile: str) -> MrcpRmConfig:
    """MRCP-RM configuration with the profile's solver budget."""
    return MrcpRmConfig(solver=default_solver_params(profile))


def default_synthetic_params(profile: str) -> SyntheticWorkloadParams:
    """Table 3 defaults (DESIGN.md Section 4), scaled 5x when requested."""
    _check_profile(profile)
    if profile == SCALED:
        return SyntheticWorkloadParams(
            num_jobs=40,
            map_tasks_range=(1, 20),
            reduce_tasks_range=(1, 20),
            e_max=50,
            ar_probability=0.5,
            s_max=10_000,
            deadline_multiplier_max=5.0,
            arrival_rate=0.01,
        )
    return SyntheticWorkloadParams(
        num_jobs=400,
        map_tasks_range=(1, 100),
        reduce_tasks_range=(1, 100),
        e_max=50,
        ar_probability=0.5,
        s_max=10_000,
        deadline_multiplier_max=5.0,
        arrival_rate=0.01,
    )


def default_synthetic_system(profile: str) -> SystemConfig:
    """The paper's system defaults (m=50 x (2,2)); m=10 when scaled."""
    return SystemConfig(
        num_resources=10 if profile == SCALED else 50,
        map_slots=2,
        reduce_slots=2,
    )


def default_facebook_params(profile: str) -> FacebookWorkloadParams:
    """Table 4 workload defaults per profile (10x scaled or full)."""
    _check_profile(profile)
    if profile == SCALED:
        return FacebookWorkloadParams(
            num_jobs=60,
            arrival_rate=0.0001,
            deadline_multiplier_max=2.0,
            scale=0.1,
        )
    return FacebookWorkloadParams(
        num_jobs=1000,
        arrival_rate=0.0001,
        deadline_multiplier_max=2.0,
        scale=1.0,
    )


def default_facebook_system(profile: str) -> SystemConfig:
    """Figures 2-3 system: 64 x (1,1) resources (8 when scaled)."""
    return SystemConfig(
        num_resources=8 if profile == SCALED else 64,
        map_slots=1,
        reduce_slots=1,
    )


def _synthetic_config(profile: str, **overrides) -> RunConfig:
    params = default_synthetic_params(profile)
    system = default_synthetic_system(profile)
    mrcp = default_mrcp_config(profile)
    cfg = RunConfig(
        scheduler="mrcp-rm",
        workload="synthetic",
        synthetic=params,
        system=system,
        mrcp=mrcp,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


# --------------------------------------------------------------------------
# Figures 2-3: MRCP-RM vs MinEDF-WC on the Facebook workload
# --------------------------------------------------------------------------

def _facebook_lambdas(profile: str) -> List[float]:
    # Paper sweeps 0.0001 .. 0.0005 jobs/s.
    return [0.0001, 0.0002, 0.0003, 0.0004, 0.0005]


def _fig2_fig3(profile: str, figure: str, title: str, metrics) -> FigureSeries:
    configs: List[LabeledConfig] = []
    for lam in _facebook_lambdas(profile):
        for sched in ("mrcp-rm", "minedf-wc"):
            fb = replace(default_facebook_params(profile), arrival_rate=lam)
            cfg = RunConfig(
                scheduler=sched,
                workload="facebook",
                facebook=fb,
                system=default_facebook_system(profile),
                mrcp=default_mrcp_config(profile),
            )
            configs.append(
                LabeledConfig(
                    label=f"lambda={lam:g}/{sched}",
                    factor_value=lam,
                    scheduler=sched,
                    config=cfg,
                )
            )
    return FigureSeries(
        figure=figure,
        title=title,
        factor="lambda (jobs/s)",
        configs=configs,
        metrics=metrics,
        notes=(
            "Facebook Table 4 workload; deadlines U[1,2]*TE; p=0; "
            "1 map + 1 reduce slot per resource."
        ),
    )


# --------------------------------------------------------------------------
# Figures 4-9: factor-at-a-time on the synthetic workload
# --------------------------------------------------------------------------

def _factor_series(
    profile: str,
    figure: str,
    title: str,
    factor: str,
    values: Sequence[float],
    apply: Callable[[RunConfig, float], None],
    notes: str = "",
) -> FigureSeries:
    configs = []
    for v in values:
        cfg = _synthetic_config(profile)
        apply(cfg, v)
        configs.append(
            LabeledConfig(
                label=f"{factor}={v:g}",
                factor_value=v,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure=figure,
        title=title,
        factor=factor,
        configs=configs,
        notes=notes,
    )


def _fig4(profile: str) -> FigureSeries:
    def apply(cfg: RunConfig, v: float) -> None:
        cfg.synthetic = replace(cfg.synthetic, e_max=int(v))

    return _factor_series(
        profile,
        "fig4",
        "Effect of task execution times (e_max)",
        "e_max",
        [10, 50, 100],
        apply,
        notes="O and T should increase with e_max; P ~2% at e_max=100.",
    )


def _fig5(profile: str) -> FigureSeries:
    def apply(cfg: RunConfig, v: float) -> None:
        cfg.synthetic = replace(cfg.synthetic, s_max=int(v))

    return _factor_series(
        profile,
        "fig5",
        "Effect of earliest start times (s_max)",
        "s_max",
        [10_000, 50_000, 250_000],
        apply,
        notes="O, T and P should all decrease as s_max grows.",
    )


def _fig6(profile: str) -> FigureSeries:
    def apply(cfg: RunConfig, v: float) -> None:
        cfg.synthetic = replace(cfg.synthetic, ar_probability=v)

    return _factor_series(
        profile,
        "fig6",
        "Effect of the advance-reservation probability (p)",
        "p",
        [0.1, 0.5, 0.9],
        apply,
        notes="Same trend as fig5 but weaker in O (s_max stays small).",
    )


def _fig7(profile: str) -> FigureSeries:
    def apply(cfg: RunConfig, v: float) -> None:
        cfg.synthetic = replace(cfg.synthetic, deadline_multiplier_max=v)

    return _factor_series(
        profile,
        "fig7",
        "Effect of the deadline multiplier (d_UL)",
        "d_UL",
        [2, 5, 10],
        apply,
        notes="O and P should drop sharply from d_UL=2 to 5 and 10.",
    )


def _fig8(profile: str) -> FigureSeries:
    def apply(cfg: RunConfig, v: float) -> None:
        cfg.synthetic = replace(cfg.synthetic, arrival_rate=v)

    return _factor_series(
        profile,
        "fig8",
        "Effect of the job arrival rate (lambda)",
        "lambda",
        [0.001, 0.01, 0.015, 0.02],
        apply,
        notes="O, T and P should all increase with lambda.",
    )


def _fig9(profile: str) -> FigureSeries:
    values = [5, 10, 20] if profile == SCALED else [25, 50, 100]

    configs = []
    for v in values:
        cfg = _synthetic_config(profile)
        cfg.system = replace(cfg.system, num_resources=int(v))
        configs.append(
            LabeledConfig(
                label=f"m={v:g}",
                factor_value=v,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="fig9",
        title="Effect of the number of resources (m)",
        factor="m",
        configs=configs,
        notes="T, P and O should all increase as m shrinks.",
    )


# --------------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# --------------------------------------------------------------------------

def _ablation_separation(profile: str) -> FigureSeries:
    configs = []
    for mode in (FormulationMode.COMBINED, FormulationMode.JOINT):
        cfg = _synthetic_config(profile)
        # Joint mode builds (tasks x resources) optional intervals; keep the
        # instance compact even in the paper profile.
        if profile == PAPER:
            cfg.synthetic = replace(cfg.synthetic, num_jobs=60)
        cfg.mrcp = replace(default_mrcp_config(profile), mode=mode)
        configs.append(
            LabeledConfig(
                label=f"mode={mode.value}",
                factor_value=0.0 if mode is FormulationMode.COMBINED else 1.0,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-separation",
        title="V.D ablation: combined-resource vs joint matchmaking",
        factor="mode",
        configs=configs,
        notes="Combined mode should show substantially lower O at equal P.",
    )


def _ablation_est_deferral(profile: str) -> FigureSeries:
    configs = []
    for deferral in (True, False):
        cfg = _synthetic_config(profile)
        # Deferral matters when many jobs have far-future start times.
        cfg.synthetic = replace(cfg.synthetic, ar_probability=0.9, s_max=50_000)
        cfg.mrcp = replace(default_mrcp_config(profile), est_deferral=deferral)
        configs.append(
            LabeledConfig(
                label=f"deferral={'on' if deferral else 'off'}",
                factor_value=1.0 if deferral else 0.0,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-est-deferral",
        title="V.E ablation: earliest-start-time deferral",
        factor="deferral",
        configs=configs,
        notes="Deferral should reduce O (fewer tasks re-planned per solve).",
    )


def _ablation_ordering(profile: str) -> FigureSeries:
    configs = []
    for order in ("edf", "laxity", "input"):
        cfg = _synthetic_config(profile)
        cfg.mrcp = replace(default_mrcp_config(profile), ordering=order)
        configs.append(
            LabeledConfig(
                label=f"ordering={order}",
                factor_value=float(["edf", "laxity", "input"].index(order)),
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-ordering",
        title="VI.B ablation: job ordering strategies",
        factor="ordering",
        configs=configs,
        notes="The paper reports no significant difference; EDF slightly best.",
    )


def _ablation_lns(profile: str) -> FigureSeries:
    configs = []
    for use_lns in (True, False):
        cfg = _synthetic_config(profile)
        # Make deadlines tight so the improvement phase has work to do.
        cfg.synthetic = replace(cfg.synthetic, deadline_multiplier_max=2.0)
        solver = replace(default_solver_params(profile), use_lns=use_lns)
        cfg.mrcp = replace(default_mrcp_config(profile), solver=solver)
        configs.append(
            LabeledConfig(
                label=f"lns={'on' if use_lns else 'off'}",
                factor_value=1.0 if use_lns else 0.0,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-lns",
        title="Solver ablation: LNS improvement phase",
        factor="lns",
        configs=configs,
        notes="LNS should lower P under tight deadlines at equal budget.",
    )


def _ablation_replanning(profile: str) -> FigureSeries:
    configs = []
    for replan in (True, False):
        cfg = _synthetic_config(profile)
        cfg.synthetic = replace(cfg.synthetic, deadline_multiplier_max=2.0)
        cfg.mrcp = replace(default_mrcp_config(profile), replan=replan)
        configs.append(
            LabeledConfig(
                label=f"replan={'on' if replan else 'off'}",
                factor_value=1.0 if replan else 0.0,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-replanning",
        title="V.B ablation: incremental re-planning vs schedule-once",
        factor="replan",
        configs=configs,
        notes="Re-planning should reduce P (late jobs) at higher O.",
    )


def default_workflow_params(profile: str) -> WorkflowWorkloadParams:
    """Random layered-DAG workload defaults per profile (extension)."""
    _check_profile(profile)
    if profile == SCALED:
        return WorkflowWorkloadParams(
            num_jobs=25,
            stages_range=(2, 4),
            tasks_per_stage_range=(1, 6),
            e_max=20,
            arrival_rate=0.01,
        )
    return WorkflowWorkloadParams(
        num_jobs=200,
        stages_range=(2, 6),
        tasks_per_stage_range=(1, 20),
        e_max=50,
        arrival_rate=0.01,
    )


def _ablation_hints(profile: str) -> FigureSeries:
    """Solution hints (Fig. 1's "incrementally builds on the previous
    solution"): re-using the prior plan as a warm start."""
    configs = []
    for hints in (True, False):
        cfg = _synthetic_config(profile)
        cfg.synthetic = replace(cfg.synthetic, deadline_multiplier_max=2.0)
        cfg.mrcp = replace(default_mrcp_config(profile), use_hints=hints)
        configs.append(
            LabeledConfig(
                label=f"hints={'on' if hints else 'off'}",
                factor_value=1.0 if hints else 0.0,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ablation-hints",
        title="Fig. 1 ablation: previous-solution warm starts",
        factor="hints",
        configs=configs,
        notes="Hints should not raise P; O may drop when arrivals fit "
        "around the existing plan.",
    )


def _ext_workflow_depth(profile: str) -> FigureSeries:
    """Extension experiment (paper Section VII): DAG workflows of growing
    depth through MRCP-RM -- deeper critical paths mean longer turnarounds
    and more constrained solves."""
    configs = []
    for max_stages in (2, 4, 6):
        wf = replace(
            default_workflow_params(profile),
            stages_range=(max(2, max_stages - 1), max_stages),
        )
        cfg = RunConfig(
            scheduler="mrcp-rm",
            workload="workflow",
            workflow=wf,
            system=default_synthetic_system(profile),
            mrcp=default_mrcp_config(profile),
        )
        configs.append(
            LabeledConfig(
                label=f"stages<={max_stages}",
                factor_value=float(max_stages),
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ext-workflow-depth",
        title="Extension: DAG workflow depth (Section VII generalisation)",
        factor="max stages",
        configs=configs,
        notes="Deeper DAGs (longer critical paths) should raise T; all "
        "precedence edges hold by construction (validated per solve).",
    )


def _ext_workflow_density(profile: str) -> FigureSeries:
    """Extension experiment: DAG density via extra skip-level edges."""
    configs = []
    for density in (0.0, 0.4, 0.8):
        wf = replace(
            default_workflow_params(profile), extra_edge_probability=density
        )
        cfg = RunConfig(
            scheduler="mrcp-rm",
            workload="workflow",
            workflow=wf,
            system=default_synthetic_system(profile),
            mrcp=default_mrcp_config(profile),
        )
        configs.append(
            LabeledConfig(
                label=f"density={density:g}",
                factor_value=density,
                scheduler="mrcp-rm",
                config=cfg,
            )
        )
    return FigureSeries(
        figure="ext-workflow-density",
        title="Extension: DAG precedence density",
        factor="extra edge probability",
        configs=configs,
        notes="More precedence edges restrict overlap; T should not drop as "
        "density rises.",
    )


_FIGURES: Dict[str, Callable[[str], FigureSeries]] = {
    "fig2": lambda p: _fig2_fig3(
        p, "fig2", "MRCP-RM vs MinEDF-WC: proportion of late jobs", ("P",)
    ),
    "fig3": lambda p: _fig2_fig3(
        p, "fig3", "MRCP-RM vs MinEDF-WC: average turnaround time", ("T",)
    ),
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "ablation-separation": _ablation_separation,
    "ablation-est-deferral": _ablation_est_deferral,
    "ablation-ordering": _ablation_ordering,
    "ablation-lns": _ablation_lns,
    "ablation-replanning": _ablation_replanning,
    "ablation-hints": _ablation_hints,
    "ext-workflow-depth": _ext_workflow_depth,
    "ext-workflow-density": _ext_workflow_density,
}


def list_figures() -> List[str]:
    """Names of every reproducible figure and ablation."""
    return list(_FIGURES)


def figure_series(figure: str, profile: str = SCALED) -> FigureSeries:
    """Build the run configurations for one figure/ablation."""
    _check_profile(profile)
    try:
        builder = _FIGURES[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; available: {', '.join(_FIGURES)}"
        ) from None
    return builder(profile)
