"""Experiment harness: the paper's evaluation (Section VI) as code.

* :mod:`repro.experiments.runner` -- run one configuration (workload x
  system x scheduler) for one or more replications and collect O/N/T/P.
* :mod:`repro.experiments.configs` -- the per-figure experiment definitions
  (Figures 2-9), each in a laptop-sized *scaled* profile and the paper's
  original *paper* profile.
* :mod:`repro.experiments.pool` -- parallel sweep engine: fan a
  (configuration x replication) grid out over worker processes with
  deterministic per-cell seeding and order-independent merging.
* :mod:`repro.experiments.reporting` -- plain-text series/tables matching
  the figures' data.
"""

from repro.experiments.runner import (
    RunConfig,
    SystemConfig,
    run_once,
    run_replicated,
)
from repro.experiments.pool import (
    CellOutcome,
    SweepCell,
    SweepResult,
    SweepSpec,
    cell_seed,
    run_sweep,
)
from repro.experiments.configs import (
    PAPER,
    SCALED,
    FigureSeries,
    LabeledConfig,
    figure_series,
    list_figures,
)
from repro.experiments.reporting import format_series, run_series, series_rows

__all__ = [
    "RunConfig",
    "SystemConfig",
    "run_once",
    "run_replicated",
    "CellOutcome",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "cell_seed",
    "run_sweep",
    "SCALED",
    "PAPER",
    "LabeledConfig",
    "FigureSeries",
    "figure_series",
    "list_figures",
    "format_series",
    "run_series",
    "series_rows",
]
