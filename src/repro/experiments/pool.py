"""Parallel experiment sweeps with deterministic fan-out.

The paper's evaluation is a factor-at-a-time sweep (Figures 2-9): every
figure is a grid of (configuration x replication) cells, each an independent
simulation run.  :func:`run_sweep` fans such a grid out over a
``ProcessPoolExecutor`` while keeping three guarantees:

**Deterministic seeding.**  Every cell's seed derives from the sweep's root
seed through a stable hash of the cell's *semantic coordinates* -- the
workload parameters and the replication index -- never from worker identity,
submission order, or completion order (:func:`cell_seed`).  Two cells with
identical workload parameters (e.g. the mrcp-rm and minedf-wc arms of
Figure 2, or the on/off arms of an ablation) share a seed and therefore face
the *identical* job stream, preserving the paper's paired comparisons.

**Crash isolation with bounded retry.**  A cell whose worker raises -- or
whose worker process dies outright -- marks only that cell failed; the sweep
always runs to completion.  Each cell is attempted at most ``retries + 1``
times.  A hard worker death breaks the whole process pool, so every cell
that was in flight is charged one attempt and the pool is rebuilt for the
survivors.

**Order-independent merging.**  Results are merged in cell-index order
regardless of completion order, and all wall-clock timing is kept out of the
merged artifacts, so ``run_sweep(spec, workers=4)`` writes byte-identical
``sweep.json`` / ``sweep.csv`` to ``run_sweep(spec, workers=1)``.  Byte
identity additionally requires ``SweepSpec.deterministic`` (the default):
each cell's solver budget is rewritten to be fail-limited rather than
time-limited (the bench-suite trick) and the overhead metric O is measured
through a pinned virtual wall clock, making O a deterministic proxy (clock
samples per invocation) instead of noisy real time.  Disable it
(``deterministic=False``) to measure real wall-clock overhead; N/T/P then
stay reproducible only while the solver's real time limit never binds.

Workers write their own per-cell JSON (and, with ``capture=True``, a Chrome
trace) under ``<out_dir>/cells/``; the parent merges them and ``--resume``
re-reads finished cells instead of re-running them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cp.solver import SolverParams
from repro.experiments.configs import FigureSeries, LabeledConfig
from repro.experiments.runner import RunConfig, run_once
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.obs.clocks import PinnedClock
from repro.obs.timeseries import TelemetryConfig, read_series_jsonl

SWEEP_SCHEMA = "repro-sweep/1"
SWEEP_SERIES_SCHEMA = "repro-sweep-series/1"

#: Time limit large enough that the fail limit always binds first: the
#: explored search tree -- and hence N/T/P -- is identical on every machine.
_DETERMINISTIC_TIME_LIMIT = 1.0e6
#: Fail limit substituted when a config left the tree search unlimited.
_DETERMINISTIC_FAIL_LIMIT = 300

#: Ordered CSV columns of the deterministic per-cell metrics.
_CSV_METRICS = ("O", "N", "T", "P")
_CSV_COUNTS = (
    "jobs_arrived",
    "jobs_completed",
    "jobs_failed",
    "scheduler_invocations",
    "makespan",
)


# --------------------------------------------------------------------------
# Deterministic seeding
# --------------------------------------------------------------------------


def stable_hash(text: str) -> int:
    """A 63-bit integer hash of ``text``, stable across processes/machines.

    ``hash()`` is salted per process (PYTHONHASHSEED); sha256 is not.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


def workload_key(config: RunConfig) -> str:
    """The cell coordinate that identifies a config's *job stream*.

    Mirrors :func:`repro.experiments.runner._generate_jobs`: the workload
    depends on the generator parameters with the system's slot totals
    substituted in, and on nothing else.  Scheduler choice and solver knobs
    deliberately stay out, so competing schedulers (and ablation arms) over
    the same workload share a seed and face identical jobs.
    """
    params = getattr(config, config.workload, None)
    if params is None:
        # Invalid configs must still produce *a* key: validation errors are
        # reported by the worker as a failed cell, not a parent crash.
        return f"{config.workload}:<missing>"
    params = replace(
        params,
        total_map_slots=config.system.total_map_slots,
        total_reduce_slots=config.system.total_reduce_slots,
    )
    return f"{config.workload}:{params!r}"


def cell_seed(root_seed: int, config: RunConfig, replication: int) -> int:
    """Derive one cell's seed from the root seed and its coordinates.

    The hash covers (root seed, workload coordinates, replication) only --
    worker identity and completion order can never leak in.
    """
    return stable_hash(f"{root_seed}|{workload_key(config)}|{replication}")


# PinnedClock moved to repro.obs.clocks (the service path needs it without
# importing the process-pool machinery); re-exported here so existing
# imports -- and pickles referencing this module -- keep working.


def deterministic_solver_params(params: SolverParams) -> SolverParams:
    """Rewrite a solver budget so search effort is machine-independent.

    Huge time limit (never binds), fail-limited tree search, LNS off (its
    improvement loop is time-budgeted and would reintroduce wall-clock
    dependence).  The same recipe the bench suite pins its baselines with.
    """
    return replace(
        params,
        time_limit=_DETERMINISTIC_TIME_LIMIT,
        tree_fail_limit=params.tree_fail_limit or _DETERMINISTIC_FAIL_LIMIT,
        use_lns=False,
    )


def _canonical_config(
    config: RunConfig, seed: int, deterministic: bool
) -> RunConfig:
    """The exact config a cell runs: derived seed, optionally pinned."""
    cfg = replace(config, seed=seed)
    if deterministic:
        cfg = replace(
            cfg,
            mrcp=replace(
                cfg.mrcp, solver=deterministic_solver_params(cfg.mrcp.solver)
            ),
            obs=replace(cfg.obs, wall_clock=PinnedClock()),
        )
    return cfg


# --------------------------------------------------------------------------
# Spec and cells
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One (configuration x replication) grid point of a sweep."""

    index: int
    figure: str
    label: str
    scheduler: str
    factor_value: float
    replication: int
    seed: int
    config: RunConfig


@dataclass
class SweepSpec:
    """A sweep: labelled configurations x replications under one root seed."""

    name: str
    configs: List[LabeledConfig]
    factor: str = "factor"
    replications: int = 1
    root_seed: int = 0
    #: Pin solver budgets and the overhead clock so merged output is
    #: byte-identical for any worker count (see module docstring).
    deterministic: bool = True
    #: Have each worker write its cell's Chrome trace next to the cell JSON
    #: (requires ``out_dir``); feeds the per-cell utilization strips of
    #: :func:`write_sweep_report`.
    capture: bool = False
    #: Have each worker sample live telemetry and write a per-cell series
    #: JSONL next to the cell JSON (requires ``out_dir``); the parent rolls
    #: all cell series up into ``sweep.series.jsonl``
    #: (:func:`merge_cell_series`).  Off by default so ``sweep.json`` stays
    #: byte-identical with earlier releases.
    telemetry: bool = False

    @classmethod
    def from_series(
        cls,
        series: FigureSeries,
        replications: int = 1,
        root_seed: int = 0,
        **overrides: Any,
    ) -> "SweepSpec":
        """Build the sweep reproducing one figure/ablation series."""
        return cls(
            name=series.figure,
            configs=list(series.configs),
            factor=series.factor,
            replications=replications,
            root_seed=root_seed,
            **overrides,
        )

    def validate(self) -> None:
        """Reject empty/ill-formed sweeps before any cell runs."""
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if not self.configs:
            raise ValueError("sweep has no configurations")
        labels = [c.label for c in self.configs]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate config labels in sweep: {labels}")

    def cells(self) -> List[SweepCell]:
        """The full grid, in the deterministic (config, replication) order."""
        self.validate()
        out: List[SweepCell] = []
        for labeled in self.configs:
            for rep in range(self.replications):
                seed = cell_seed(self.root_seed, labeled.config, rep)
                out.append(
                    SweepCell(
                        index=len(out),
                        figure=self.name,
                        label=labeled.label,
                        scheduler=labeled.scheduler,
                        factor_value=labeled.factor_value,
                        replication=rep,
                        seed=seed,
                        config=_canonical_config(
                            labeled.config, seed, self.deterministic
                        ),
                    )
                )
        return out


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


@dataclass
class CellJob:
    """Everything a worker needs to run one cell (must stay picklable)."""

    cell: SweepCell
    attempt: int = 1
    out_dir: Optional[str] = None
    capture: bool = False
    telemetry: bool = False


@dataclass
class CellOutcome:
    """One cell's result as reported by a worker (or the retry logic)."""

    index: int
    figure: str
    label: str
    scheduler: str
    factor_value: float
    replication: int
    seed: int
    status: str  # "ok" | "failed"
    attempts: int
    error: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    #: real wall seconds of the attempt -- informational only, never merged
    #: into the deterministic artifacts
    wall: float = 0.0

    def row(self) -> Dict[str, Any]:
        """The cell's deterministic merged-artifact row (no wall time)."""
        return {
            "index": self.index,
            "figure": self.figure,
            "label": self.label,
            "scheduler": self.scheduler,
            "factor_value": self.factor_value,
            "replication": self.replication,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "metrics": dict(self.metrics),
            "counts": dict(self.counts),
        }


def cell_json_path(out_dir: str, index: int) -> str:
    """Per-cell result file: ``<out_dir>/cells/cell-0007.json``."""
    return os.path.join(out_dir, "cells", f"cell-{index:04d}.json")


def cell_trace_path(out_dir: str, index: int) -> str:
    """Per-cell Chrome trace written when the sweep captures traces."""
    return os.path.join(out_dir, "cells", f"cell-{index:04d}.trace.json")


def cell_series_path(out_dir: str, index: int) -> str:
    """Per-cell telemetry series written when the sweep samples telemetry."""
    return os.path.join(out_dir, "cells", f"cell-{index:04d}.series.jsonl")


def _one_line(text: str, limit: int = 400) -> str:
    """Collapse an error message to one bounded line for the artifacts."""
    flat = " ".join(str(text).split())
    return flat[:limit]


def _outcome_skeleton(cell: SweepCell, attempt: int) -> CellOutcome:
    return CellOutcome(
        index=cell.index,
        figure=cell.figure,
        label=cell.label,
        scheduler=cell.scheduler,
        factor_value=cell.factor_value,
        replication=cell.replication,
        seed=cell.seed,
        status="failed",
        attempts=attempt,
    )


def _write_cell_file(out_dir: str, outcome: CellOutcome) -> None:
    """Atomically persist one cell outcome (rename over partial writes)."""
    path = cell_json_path(out_dir, outcome.index)
    payload = dict(outcome.row())
    payload["wall"] = outcome.wall
    atomic_write_json(path, payload)


def execute_cell(job: CellJob) -> CellOutcome:
    """Run one cell to completion; never raises (crash isolation).

    This is the function shipped to pool workers.  Any exception -- config
    validation, workload generation, solver, executor invariants -- is
    captured as a failed outcome so one bad cell cannot take down the sweep.
    When the sweep has an output directory the worker persists its own
    result file (and optionally the run's trace) before returning.
    """
    cell = job.cell
    outcome = _outcome_skeleton(cell, job.attempt)
    config = cell.config
    obs = config.obs
    if isinstance(obs.wall_clock, PinnedClock):
        # Every attempt starts from a virgin clock, whether the cell runs
        # in-process (workers=1), in a forked worker, or as a retry.
        obs = replace(obs, wall_clock=PinnedClock(obs.wall_clock.tick))
    if job.capture and job.out_dir is not None:
        obs = replace(obs, trace_out=cell_trace_path(job.out_dir, cell.index))
    if job.telemetry and job.out_dir is not None:
        # Respect a caller-supplied telemetry config (cadence, capacity),
        # but the series always lands at the cell's canonical path.
        telemetry = obs.telemetry or TelemetryConfig()
        telemetry = replace(
            telemetry,
            enabled=True,
            series_out=cell_series_path(job.out_dir, cell.index),
        )
        obs = replace(obs, telemetry=telemetry)
    if obs is not config.obs:
        config = replace(config, obs=obs)
    t0 = time.perf_counter()
    try:
        metrics = run_once(config, replication=0)
    except Exception as exc:  # noqa: BLE001 -- isolation is the point
        outcome.error = _one_line(f"{type(exc).__name__}: {exc}")
    else:
        outcome.status = "ok"
        outcome.metrics = {k: float(v) for k, v in metrics.as_dict().items()}
        outcome.counts = {
            "jobs_arrived": metrics.jobs_arrived,
            "jobs_completed": metrics.jobs_completed,
            "jobs_failed": metrics.jobs_failed,
            "scheduler_invocations": metrics.scheduler_invocations,
            "makespan": metrics.makespan,
        }
    outcome.wall = time.perf_counter() - t0
    if job.out_dir is not None:
        _write_cell_file(job.out_dir, outcome)
    return outcome


# --------------------------------------------------------------------------
# Merged result
# --------------------------------------------------------------------------


@dataclass
class SweepResult:
    """All cell outcomes of one sweep, merged in cell-index order."""

    name: str
    factor: str
    root_seed: int
    replications: int
    deterministic: bool
    outcomes: List[CellOutcome]
    #: real wall seconds of the whole sweep (informational, not merged)
    wall: float = 0.0
    #: worker count the sweep ran with (informational, not merged)
    workers: int = 1

    @property
    def ok_cells(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def failed_cells(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status != "ok"]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-label means of O/N/T/P over the ok replications.

        Sums run in replication order (cell-index order), so the floats --
        and the serialised artifacts -- are independent of completion order.
        """
        grouped: Dict[str, List[CellOutcome]] = {}
        for o in self.outcomes:
            grouped.setdefault(o.label, []).append(o)
        out: Dict[str, Dict[str, float]] = {}
        for label, cells in grouped.items():
            ok = [c for c in cells if c.status == "ok"]
            entry: Dict[str, float] = {
                "cells": float(len(cells)),
                "ok": float(len(ok)),
                "failed": float(len(cells) - len(ok)),
            }
            for m in _CSV_METRICS:
                values = [c.metrics[m] for c in ok if m in c.metrics]
                if values:
                    entry[m] = sum(values) / len(values)
            out[label] = entry
        return out

    def to_json_dict(self) -> Dict[str, Any]:
        """The deterministic merged document (schema ``repro-sweep/1``)."""
        return {
            "schema": SWEEP_SCHEMA,
            "sweep": {
                "name": self.name,
                "factor": self.factor,
                "root_seed": self.root_seed,
                "replications": self.replications,
                "deterministic": self.deterministic,
                "cells": len(self.outcomes),
            },
            "cells": [o.row() for o in self.outcomes],
            "summary": self.summary(),
        }

    def to_json(self) -> str:
        """Serialise :meth:`to_json_dict` with a stable key order."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"

    def to_csv(self) -> str:
        """One row per cell, in cell-index order, ``repr``-exact floats."""
        value_cols = ",".join(_CSV_METRICS + _CSV_COUNTS)
        header = (
            "index,figure,label,scheduler,factor_value,replication,seed,"
            f"status,attempts,{value_cols}"
        )
        lines = [header]
        for o in self.outcomes:
            cells = [
                str(o.index),
                o.figure,
                o.label,
                o.scheduler,
                repr(o.factor_value),
                str(o.replication),
                str(o.seed),
                o.status,
                str(o.attempts),
            ]
            cells += [
                repr(o.metrics[m]) if m in o.metrics else ""
                for m in _CSV_METRICS
            ]
            cells += [str(o.counts[c]) if c in o.counts else "" for c in _CSV_COUNTS]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def write(self, out_dir: str) -> Dict[str, str]:
        """Write the merged artifacts; returns name -> path.

        ``sweep.json`` and ``sweep.csv`` are the byte-identity surface;
        ``sweep.timing.json`` carries the (non-deterministic) wall clocks.
        """
        os.makedirs(out_dir, exist_ok=True)
        paths = {
            "json": os.path.join(out_dir, "sweep.json"),
            "csv": os.path.join(out_dir, "sweep.csv"),
            "timing": os.path.join(out_dir, "sweep.timing.json"),
        }
        atomic_write_text(paths["json"], self.to_json())
        atomic_write_text(paths["csv"], self.to_csv())
        timing = {
            "wall": self.wall,
            "workers": self.workers,
            "cell_walls": {o.index: o.wall for o in self.outcomes},
        }
        atomic_write_json(paths["timing"], timing)
        return paths


#: Headline fields copied from each cell's final telemetry sample into the
#: fleet rollup row.
_ROLLUP_FINAL = (
    "O",
    "N",
    "T",
    "P",
    "sim_time",
    "jobs_arrived",
    "jobs_completed",
    "jobs_failed",
    "invocations",
)


def _series_rollup(
    meta: Dict[str, Any], samples: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Compress one cell's telemetry series into a fleet-rollup entry.

    Keeps the series shape (sample counts, cadence), the final sample's
    headline fields, and the per-field peaks over the whole series --
    enough to spot the hot cells of a sweep without re-shipping every
    sample.
    """
    final = samples[-1] if samples else {}
    peaks: Dict[str, float] = {}
    for sample in samples:
        for key, value in sample.items():
            if key == "seq" or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                peaks[key] = max(peaks.get(key, value), value)
        for name, value in (sample.get("probes") or {}).items():
            key = f"probes.{name}"
            peaks[key] = max(peaks.get(key, value), value)
    return {
        "samples": meta.get("samples"),
        "total_samples": meta.get("total_samples"),
        "dropped": meta.get("dropped"),
        "interval": meta.get("interval"),
        "final": {k: final[k] for k in _ROLLUP_FINAL if k in final},
        "peaks": {k: peaks[k] for k in sorted(peaks)},
    }


def merge_cell_series(out_dir: str, cells: Sequence[SweepCell]) -> str:
    """Merge per-cell telemetry series into ``<out_dir>/sweep.series.jsonl``.

    One meta line (schema :data:`SWEEP_SERIES_SCHEMA`), then one line per
    cell in cell-index order: the cell's identity plus a
    :func:`_series_rollup` of its series, or ``"series": null`` when the
    cell left no readable series file (failed cell, telemetry disabled).
    Cell series are deterministic and the merge order is the cell index,
    so the rollup is byte-identical for any worker count.
    """
    path = os.path.join(out_dir, "sweep.series.jsonl")
    lines = [
        json.dumps(
            {"schema": SWEEP_SERIES_SCHEMA, "cells": len(cells)},
            sort_keys=True,
        )
    ]
    for cell in cells:
        row: Dict[str, Any] = {
            "index": cell.index,
            "label": cell.label,
            "replication": cell.replication,
            "seed": cell.seed,
            "series": None,
        }
        try:
            meta, samples = read_series_jsonl(
                cell_series_path(out_dir, cell.index)
            )
        except (OSError, ValueError):
            pass
        else:
            row["series"] = _series_rollup(meta, samples)
        lines.append(json.dumps(row, sort_keys=True))
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def merge_outcomes(
    cells: Sequence[SweepCell], outcomes: Dict[int, CellOutcome]
) -> List[CellOutcome]:
    """Order outcomes by cell index -- the merge is a pure sort, so any
    completion order produces the same list."""
    missing = [c.index for c in cells if c.index not in outcomes]
    if missing:
        raise ValueError(f"sweep incomplete: no outcome for cells {missing}")
    return [outcomes[c.index] for c in cells]


# --------------------------------------------------------------------------
# Resume
# --------------------------------------------------------------------------


def _load_resumable(out_dir: str, cell: SweepCell) -> Optional[CellOutcome]:
    """A previously persisted *ok* outcome for this exact cell, if any.

    The file must match the cell's identity (figure/label/replication/seed):
    a results directory from a different sweep or root seed never poisons a
    resumed run -- its cells simply re-execute.
    """
    path = cell_json_path(out_dir, cell.index)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    identity = ("figure", "label", "replication", "seed")
    if any(payload.get(k) != getattr(cell, k) for k in identity):
        return None
    if payload.get("status") != "ok":
        return None
    return CellOutcome(
        index=cell.index,
        figure=cell.figure,
        label=cell.label,
        scheduler=cell.scheduler,
        factor_value=cell.factor_value,
        replication=cell.replication,
        seed=cell.seed,
        status="ok",
        attempts=int(payload.get("attempts", 1)),
        metrics={k: float(v) for k, v in payload.get("metrics", {}).items()},
        counts={k: int(v) for k, v in payload.get("counts", {}).items()},
        wall=float(payload.get("wall", 0.0)),
    )


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


def _safe_run(runner: Callable[[CellJob], CellOutcome], job: CellJob) -> CellOutcome:
    """Run a cell in-process, converting any raise into a failed outcome."""
    try:
        return runner(job)
    except Exception as exc:  # noqa: BLE001 -- isolation is the point
        outcome = _outcome_skeleton(job.cell, job.attempt)
        outcome.error = _one_line(f"{type(exc).__name__}: {exc}")
        if job.out_dir is not None:
            _write_cell_file(job.out_dir, outcome)
        return outcome


def _run_sequential(
    jobs: List[CellJob],
    retries: int,
    runner: Callable[[CellJob], CellOutcome],
    outcomes: Dict[int, CellOutcome],
    progress: Optional[Callable[[CellOutcome], None]],
) -> None:
    for job in jobs:
        for attempt in range(1, retries + 2):
            outcome = _safe_run(runner, replace(job, attempt=attempt))
            if outcome.status == "ok":
                break
        outcomes[job.cell.index] = outcome
        if progress is not None:
            progress(outcome)


def _run_pool(
    jobs: List[CellJob],
    workers: int,
    retries: int,
    runner: Callable[[CellJob], CellOutcome],
    outcomes: Dict[int, CellOutcome],
    progress: Optional[Callable[[CellOutcome], None]],
) -> None:
    """Fan cells out over a process pool, surviving hard worker deaths.

    At most ``workers`` cells are in flight at once, so a hard death can
    only implicate the in-flight cells -- queued cells are never charged an
    attempt.  Because a broken pool cannot say *which* worker died, every
    in-flight suspect is then re-run in its own single-worker quarantine
    pool: a dying cell breaks only its private pool (and burns its own
    retry budget), while innocent bystanders complete normally.
    """
    incomplete: Dict[int, CellJob] = {j.cell.index: j for j in jobs}
    attempts: Dict[int, int] = {idx: 0 for idx in incomplete}

    def finish(outcome: CellOutcome) -> None:
        outcomes[outcome.index] = outcome
        del incomplete[outcome.index]
        if progress is not None:
            progress(outcome)

    def handle(job: CellJob, outcome: CellOutcome) -> bool:
        """Record a completed attempt; True when the cell is done."""
        idx = job.cell.index
        outcome.attempts = attempts[idx]
        if outcome.status == "ok" or attempts[idx] > retries:
            finish(outcome)
            return True
        return False

    def quarantine(job: CellJob) -> None:
        """Re-run one crash suspect in a private single-worker pool."""
        idx = job.cell.index
        while idx in incomplete:
            if attempts[idx] > retries:
                outcome = _outcome_skeleton(job.cell, attempts[idx])
                outcome.error = "worker process died"
                finish(outcome)
                return
            attempts[idx] += 1
            solo = ProcessPoolExecutor(max_workers=1)
            try:
                fut = solo.submit(runner, replace(job, attempt=attempts[idx]))
                try:
                    outcome = fut.result()
                except BrokenProcessPool:
                    continue  # its own death; loop re-checks the budget
                except Exception as exc:  # noqa: BLE001
                    outcome = _outcome_skeleton(job.cell, attempts[idx])
                    outcome.error = _one_line(f"{type(exc).__name__}: {exc}")
                handle(job, outcome)
            finally:
                solo.shutdown(wait=False, cancel_futures=True)

    while incomplete:
        executor = ProcessPoolExecutor(max_workers=min(workers, len(incomplete)))
        futures: Dict[Any, CellJob] = {}
        suspects: List[CellJob] = []
        try:
            backlog = [incomplete[idx] for idx in sorted(incomplete)]
            backlog.reverse()  # pop() from the tail = cell-index order

            def submit_next() -> None:
                job = backlog.pop()
                attempts[job.cell.index] += 1
                fut = executor.submit(
                    runner, replace(job, attempt=attempts[job.cell.index])
                )
                futures[fut] = job

            while backlog and len(futures) < workers:
                submit_next()
            while futures:
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for fut in done:
                    job = futures[fut]
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        raise  # fut stays in ``futures`` -> a suspect
                    except Exception as exc:  # noqa: BLE001
                        # e.g. the outcome failed to unpickle; charge the
                        # attempt and treat like an in-worker failure.
                        outcome = _outcome_skeleton(job.cell, attempts[job.cell.index])
                        outcome.error = _one_line(f"{type(exc).__name__}: {exc}")
                    del futures[fut]
                    if not handle(job, outcome):
                        backlog.append(job)  # soft failure with budget left
                while backlog and len(futures) < workers:
                    submit_next()
        except BrokenProcessPool:
            # Salvage results that finished before the pool broke; every
            # future that cannot produce one is a crash suspect.
            for fut, job in list(futures.items()):
                try:
                    outcome = fut.result(timeout=0)
                except Exception:  # noqa: BLE001
                    suspects.append(job)
                else:
                    handle(job, outcome)  # unfinished retries rejoin below
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        for job in sorted(suspects, key=lambda j: j.cell.index):
            quarantine(job)
        # The outer loop rebuilds the pool for any remaining cells.


def build_sweep_report(
    result: SweepResult,
    spec: SweepSpec,
    out_dir: str,
    path: Optional[str] = None,
) -> str:
    """Render a sweep as one self-contained HTML file; returns its path.

    Reuses the PR-3 report machinery: a sweep summary table (per-label
    O/N/T/P means), a per-cell status table, and -- when the sweep ran with
    ``capture=True`` -- one per-resource utilization strip per cell, rebuilt
    from the worker-written Chrome traces under ``<out_dir>/cells/``.
    """
    from repro.obs.report import render_sweep_report, utilization_strip
    from repro.workload import make_uniform_cluster

    path = path or os.path.join(out_dir, "sweep.html")
    summary = result.summary()
    scheduler_of = {o.label: o.scheduler for o in result.outcomes}
    summary_rows = [
        {"label": label, "scheduler": scheduler_of.get(label, ""), **stats}
        for label, stats in summary.items()
    ]
    cell_rows = [o.row() for o in result.outcomes]

    strips: List[tuple] = []
    for cell in spec.cells():
        trace_path = cell_trace_path(out_dir, cell.index)
        try:
            with open(trace_path, "r", encoding="utf-8") as fh:
                events = json.load(fh).get("traceEvents", [])
        except (OSError, ValueError):
            continue
        outcome = result.outcomes[cell.index]
        span = float(outcome.counts.get("makespan", 0.0))
        resources = make_uniform_cluster(
            cell.config.system.num_resources,
            cell.config.system.map_slots,
            cell.config.system.reduce_slots,
        )
        label = (
            f"cell {cell.index}: {cell.label} "
            f"(rep {cell.replication}, seed {cell.seed})"
        )
        strips.append((label, utilization_strip(events, resources, span)))

    document = render_sweep_report(
        title=f"Sweep report: {result.name}",
        factor=result.factor,
        summary_rows=summary_rows,
        cell_rows=cell_rows,
        strips=strips,
    )
    atomic_write_text(path, document)
    return path


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    retries: int = 1,
    out_dir: Optional[str] = None,
    resume: bool = False,
    runner: Optional[Callable[[CellJob], CellOutcome]] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
) -> SweepResult:
    """Execute a sweep over ``workers`` processes and merge the results.

    ``workers=1`` runs every cell in-process (the sequential reference the
    parallel runs must match byte-for-byte).  ``retries`` bounds re-attempts
    of failed cells.  ``resume=True`` with an ``out_dir`` reuses finished
    cell files from a previous (partial) run.  ``runner`` overrides the
    per-cell entry point -- it must be a picklable module-level callable;
    tests use it to inject worker crashes.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if spec.capture and out_dir is None:
        raise ValueError("capture=True requires an out_dir for the traces")
    if spec.telemetry and out_dir is None:
        raise ValueError("telemetry=True requires an out_dir for the series")
    runner = runner or execute_cell
    cells = spec.cells()
    if out_dir is not None:
        os.makedirs(os.path.join(out_dir, "cells"), exist_ok=True)

    outcomes: Dict[int, CellOutcome] = {}
    if resume and out_dir is not None:
        for cell in cells:
            loaded = _load_resumable(out_dir, cell)
            if loaded is not None:
                outcomes[cell.index] = loaded

    jobs = [
        CellJob(
            cell=cell,
            out_dir=out_dir,
            capture=spec.capture,
            telemetry=spec.telemetry,
        )
        for cell in cells
        if cell.index not in outcomes
    ]
    t0 = time.perf_counter()
    if workers == 1 or len(jobs) <= 1:
        _run_sequential(jobs, retries, runner, outcomes, progress)
    else:
        _run_pool(jobs, workers, retries, runner, outcomes, progress)
    wall = time.perf_counter() - t0

    result = SweepResult(
        name=spec.name,
        factor=spec.factor,
        root_seed=spec.root_seed,
        replications=spec.replications,
        deterministic=spec.deterministic,
        outcomes=merge_outcomes(cells, outcomes),
        wall=wall,
        workers=workers,
    )
    if out_dir is not None:
        result.write(out_dir)
        if spec.telemetry:
            merge_cell_series(out_dir, cells)
    return result
