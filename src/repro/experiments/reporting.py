"""Plain-text reporting of figure series.

Formats the replicated metrics as the rows/series the paper's figures plot:
one row per (factor value, scheduler), columns O (ms), T (s), P (%) with
their confidence-interval half-widths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.configs import FigureSeries
from repro.experiments.runner import run_replicated
from repro.sim.stats import ReplicationResult

#: Display scaling and units per metric.
_METRIC_FORMAT = {
    "O": ("O (ms/job)", 1000.0),
    "T": ("T (s)", 1.0),
    "P": ("P (%)", 1.0),
    "N": ("N (jobs)", 1.0),
}


def run_series(
    series: FigureSeries,
    replications: int = 3,
    targets: Optional[Dict[str, float]] = None,
    verbose: bool = False,
) -> Dict[str, ReplicationResult]:
    """Execute every configuration of a figure; returns label -> result."""
    results: Dict[str, ReplicationResult] = {}
    for labeled in series.configs:
        if verbose:
            print(f"  running {labeled.label} ...", flush=True)
        results[labeled.label] = run_replicated(
            labeled.config, replications=replications, targets=targets
        )
    return results


def series_rows(
    series: FigureSeries,
    results: Dict[str, ReplicationResult],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Tabular data: one dict per configuration with mean +/- half-width."""
    metrics = list(metrics or series.metrics)
    rows: List[Dict[str, object]] = []
    for labeled in series.configs:
        result = results[labeled.label]
        row: Dict[str, object] = {
            "label": labeled.label,
            series.factor: labeled.factor_value,
            "scheduler": labeled.scheduler,
            "replications": result.replications,
        }
        for m in metrics:
            mean = result.mean(m)
            hw = result.half_width(m)
            row[m] = mean
            row[f"{m}_hw"] = hw
        rows.append(row)
    return rows


def ascii_chart(
    series: FigureSeries,
    results: Dict[str, ReplicationResult],
    metric: str = "P",
    width: int = 50,
) -> str:
    """A terminal bar chart of one metric across the figure's points.

    One bar per (factor value, scheduler), scaled to the series maximum --
    the quick visual counterpart of :func:`format_series`'s table.
    """
    title, scale = _METRIC_FORMAT.get(metric, (metric, 1.0))
    rows = []
    for labeled in series.configs:
        mean = results[labeled.label].mean(metric) * scale
        rows.append((labeled.label, mean))
    top = max((v for _, v in rows), default=0.0)
    lines = [f"{series.figure}: {title}"]
    for label, value in rows:
        bar = "#" * (int(round(value / top * width)) if top > 0 else 0)
        lines.append(f"{label:>24} |{bar:<{width}}| {value:.3g}")
    return "\n".join(lines)


def format_series(
    series: FigureSeries,
    results: Dict[str, ReplicationResult],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable table for one figure."""
    metrics = list(metrics or series.metrics)
    header_cells = [f"{series.factor:>16}", f"{'scheduler':>10}"]
    for m in metrics:
        title, _ = _METRIC_FORMAT.get(m, (m, 1.0))
        header_cells.append(f"{title:>22}")
    lines = [
        f"== {series.figure}: {series.title} ==",
    ]
    if series.notes:
        lines.append(f"   expected shape: {series.notes}")
    lines.append(" | ".join(header_cells))
    lines.append("-" * len(lines[-1]))
    for labeled in series.configs:
        result = results[labeled.label]
        cells = [
            f"{labeled.factor_value:>16g}",
            f"{labeled.scheduler:>10}",
        ]
        for m in metrics:
            _, scale = _METRIC_FORMAT.get(m, (m, 1.0))
            mean = result.mean(m) * scale
            hw = result.half_width(m) * scale
            hw_text = "inf" if hw == float("inf") else f"{hw:.3g}"
            cells.append(f"{mean:>12.4g} ± {hw_text:>7}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
