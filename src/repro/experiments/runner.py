"""Single-run and replicated experiment execution.

One :func:`run_once` call = one simulated open system: a workload stream is
generated, submitted to the chosen resource manager inside a fresh
discrete-event simulation, run to drain, and summarised as
:class:`~repro.metrics.collector.RunMetrics`.

Replication seeds derive deterministically from the base seed, and the
workload depends only on (workload params, seed) -- never on the scheduler
-- so competing schedulers face the *identical* job stream, as the paper's
MRCP-RM vs MinEDF-WC comparison requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.baselines import (
    EdfPolicy,
    FcfsPolicy,
    MinEdfWcPolicy,
    SlotScheduler,
)
from repro.core import MrcpRm, MrcpRmConfig
from repro.faults import FaultModel
from repro.metrics import MetricsCollector, RunMetrics
from repro.obs import ObsConfig
from repro.obs.slo import SloMonitor, default_slos
from repro.obs.timeseries import NULL_SAMPLER
from repro.obs.trace import NULL_TRACER
from repro.sim import RandomStreams, Simulator
from repro.sim.stats import ReplicationResult, run_replications
from repro.workload import (
    FacebookWorkloadParams,
    SyntheticWorkloadParams,
    WorkflowWorkloadParams,
    generate_facebook_workload,
    generate_synthetic_workload,
    generate_workflow_workload,
    make_uniform_cluster,
    validate_jobs,
    validate_workflows,
)

SCHEDULERS = ("mrcp-rm", "minedf-wc", "edf", "fcfs")
#: Every scheduler handles plain DAG workflows; transfer delays need the
#: plan-driven CP path (the slot-pull model has no "ready in d seconds").
WORKFLOW_SCHEDULERS = SCHEDULERS
WORKFLOW_DELAY_SCHEDULERS = ("mrcp-rm",)


@dataclass
class SystemConfig:
    """The paper's system component: m identical resources."""

    num_resources: int = 10
    map_slots: int = 2
    reduce_slots: int = 2

    @property
    def total_map_slots(self) -> int:
        return self.num_resources * self.map_slots

    @property
    def total_reduce_slots(self) -> int:
        return self.num_resources * self.reduce_slots


@dataclass
class RunConfig:
    """Everything needed to reproduce one simulation run."""

    scheduler: str = "mrcp-rm"
    workload: str = "synthetic"  # "synthetic" | "facebook" | "workflow"
    synthetic: Optional[SyntheticWorkloadParams] = None
    facebook: Optional[FacebookWorkloadParams] = None
    workflow: Optional[WorkflowWorkloadParams] = None
    system: SystemConfig = field(default_factory=SystemConfig)
    mrcp: MrcpRmConfig = field(default_factory=MrcpRmConfig)
    #: Fault scenario injected into the run (None = happy path).  The
    #: model's seed is re-derived per replication, like the workload's.
    faults: Optional[FaultModel] = None
    #: Observability: tracing, logging, solver profiling, injectable clock.
    #: All off by default -- the run is byte-identical to an unobserved one.
    obs: ObsConfig = field(default_factory=ObsConfig)
    seed: int = 0

    def validate(self) -> None:
        """Reject inconsistent scheduler/workload combinations early."""
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected {SCHEDULERS}"
            )
        if (
            self.faults is not None
            and self.faults.enabled
            and self.scheduler != "mrcp-rm"
        ):
            raise ValueError(
                f"fault injection is a plan-driven (mrcp-rm) feature; "
                f"scheduler {self.scheduler!r} does not support it"
            )
        if self.workload == "synthetic" and self.synthetic is None:
            raise ValueError("synthetic workload selected but no params")
        if self.workload == "facebook" and self.facebook is None:
            raise ValueError("facebook workload selected but no params")
        if self.workload == "workflow":
            if self.workflow is None:
                raise ValueError("workflow workload selected but no params")
            lo, hi = self.workflow.transfer_delay_range
            if hi > 0 and self.scheduler not in WORKFLOW_DELAY_SCHEDULERS:
                raise ValueError(
                    f"scheduler {self.scheduler!r} does not support workflow "
                    f"transfer delays; use one of {WORKFLOW_DELAY_SCHEDULERS}"
                )
        if self.workload not in ("synthetic", "facebook", "workflow"):
            raise ValueError(f"unknown workload {self.workload!r}")


def _generate_jobs(config: RunConfig, seed: int):
    streams = RandomStreams(seed)
    if config.workload == "synthetic":
        assert config.synthetic is not None
        params = replace(
            config.synthetic,
            total_map_slots=config.system.total_map_slots,
            total_reduce_slots=config.system.total_reduce_slots,
        )
        jobs = generate_synthetic_workload(params, streams=streams)
        problems = validate_jobs(jobs)
    elif config.workload == "facebook":
        assert config.facebook is not None
        params = replace(
            config.facebook,
            total_map_slots=config.system.total_map_slots,
            total_reduce_slots=config.system.total_reduce_slots,
        )
        jobs = generate_facebook_workload(params, streams=streams)
        problems = validate_jobs(jobs)
    else:
        assert config.workflow is not None
        params = replace(
            config.workflow,
            total_map_slots=config.system.total_map_slots,
            total_reduce_slots=config.system.total_reduce_slots,
        )
        jobs = generate_workflow_workload(params, streams=streams)
        problems = validate_workflows(jobs)
    if problems:
        raise ValueError("generated workload invalid:\n  " + "\n  ".join(problems))
    return jobs


@dataclass
class LiveRun:
    """A fully wired, not-yet-run simulation (one :func:`run_once` body).

    :func:`build_live_run` assembles it; callers either let
    :meth:`finish` drain the calendar in one go (what :func:`run_once`
    does) or drive ``sim.step()`` themselves -- the checkpoint loop in
    :mod:`repro.resilience.checkpoint` pauses at event boundaries to
    snapshot state, something a monolithic ``sim.run()`` cannot do.
    """

    config: RunConfig
    replication: int
    seed: int
    sim: Simulator
    metrics: MetricsCollector
    tracer: object
    jobs: list
    resources: list
    #: The MrcpRm instance (None for the slot-scheduler baselines).
    manager: Optional[MrcpRm]
    #: Telemetry sampler (the shared null sampler when telemetry is off).
    sampler: object = NULL_SAMPLER
    #: Burn-rate monitor, present only when telemetry is on.
    slo_monitor: Optional[SloMonitor] = None
    _quiescent: object = None

    def finish(self) -> RunMetrics:
        """Drain the calendar, check invariants, finalize the metrics."""
        self.sim.run()
        self._quiescent()
        self.sampler.finalize()
        result = self.metrics.finalize()
        # Under fault injection a job may legitimately end in the "failed"
        # state (retry budget exhausted); every job must still end
        # *somewhere*.
        if result.jobs_completed + result.jobs_failed != result.jobs_arrived:
            raise RuntimeError(
                f"{result.jobs_arrived - result.jobs_completed - result.jobs_failed}"
                f" jobs never completed (scheduler {self.config.scheduler})"
            )
        tracer = self.tracer
        if tracer.enabled and self.config.obs.trace_out is not None:
            tracer.write(
                _trace_path(self.config.obs.trace_out, self.replication)
            )
        telemetry = self.config.obs.telemetry
        if self.sampler.enabled and telemetry is not None:
            if telemetry.series_out is not None:
                self.sampler.write_series(
                    _trace_path(telemetry.series_out, self.replication)
                )
            if (
                telemetry.alerts_out is not None
                and self.slo_monitor is not None
            ):
                self.slo_monitor.write_alerts(
                    _trace_path(telemetry.alerts_out, self.replication)
                )
        return result


def build_live_run(config: RunConfig, replication: int = 0) -> LiveRun:
    """Wire up one replication without running it (see :class:`LiveRun`)."""
    config.validate()
    seed = config.seed * 10_007 + replication
    jobs = _generate_jobs(config, seed)
    resources = make_uniform_cluster(
        config.system.num_resources,
        config.system.map_slots,
        config.system.reduce_slots,
    )

    sim = Simulator()
    metrics = MetricsCollector()
    tracer = config.obs.make_tracer()
    if tracer is not NULL_TRACER:
        # Never mutate the shared null tracer; a private one (even a
        # disabled one carrying an injected wall clock) binds this run's
        # simulation clock so spans carry simulated timestamps.
        tracer.bind_sim_clock(lambda: sim.now)
    sim.attach_observability(tracer.registry)

    manager: Optional[MrcpRm] = None
    if config.scheduler == "mrcp-rm":
        mrcp = config.mrcp
        if config.faults is not None and config.faults.enabled:
            # Re-seed the fault model per replication (like the workload)
            # so replications see independent fault draws while staying
            # exactly reproducible.
            mrcp = replace(mrcp, faults=replace(config.faults, seed=seed))
        if config.obs.profile_solver and not mrcp.solver.profile:
            mrcp = replace(mrcp, solver=replace(mrcp.solver, profile=True))
        if config.obs.plan_history and not mrcp.record_plan_history:
            mrcp = replace(mrcp, record_plan_history=True)
        manager = MrcpRm(sim, resources, mrcp, metrics, tracer=tracer)
        submit = manager.submit
        quiescent = manager.executor.assert_quiescent
    else:
        policy = {
            "minedf-wc": MinEdfWcPolicy,
            "edf": EdfPolicy,
            "fcfs": FcfsPolicy,
        }[config.scheduler]()
        scheduler = SlotScheduler(sim, resources, policy, metrics)
        submit = scheduler.submit
        quiescent = scheduler.cluster.assert_quiescent

    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: submit(j))

    sampler = config.obs.make_sampler()
    slo_monitor: Optional[SloMonitor] = None
    if sampler.enabled:
        sampler.attach(sim, collector=metrics, registry=tracer.registry)
        if manager is not None:
            manager.attach_telemetry(sampler)
        specs = config.obs.slo if config.obs.slo is not None else default_slos()
        slo_monitor = SloMonitor(specs, tracer=tracer)
        slo_monitor.subscribe(sampler)
        # Start *after* jobs are scheduled so the sampler sees a non-empty
        # calendar and rides it to the drain.
        sampler.start()
    return LiveRun(
        config=config,
        replication=replication,
        seed=seed,
        sim=sim,
        metrics=metrics,
        tracer=tracer,
        jobs=jobs,
        resources=resources,
        manager=manager,
        sampler=sampler,
        slo_monitor=slo_monitor,
        _quiescent=quiescent,
    )


def run_once(config: RunConfig, replication: int = 0) -> RunMetrics:
    """Execute one replication of ``config`` and return its metrics."""
    return build_live_run(config, replication).finish()


def _trace_path(path: str, replication: int) -> str:
    """Replication-suffixed trace path: ``trace.json`` -> ``trace.rep2.json``.

    Replication 0 keeps the configured path unchanged, so single runs and
    the first replication write exactly where the user asked.
    """
    if replication == 0:
        return path
    root, dot, ext = path.rpartition(".")
    if dot:
        return f"{root}.rep{replication}.{ext}"
    return f"{path}.rep{replication}"


def run_replicated(
    config: RunConfig,
    replications: int = 5,
    min_replications: int = 3,
    targets: Optional[Dict[str, float]] = None,
    keep_runs: bool = False,
) -> ReplicationResult:
    """Run up to ``replications`` replications with CI-based stopping.

    Default target mirrors the paper: T within ±1% (here relaxed to ±5% for
    the scaled profile's shorter runs; override via ``targets``).
    """
    if targets is None:
        targets = {"T": 0.05}
    runs: List[RunMetrics] = []

    def one(rep: int) -> Dict[str, float]:
        metrics = run_once(config, rep)
        if keep_runs:
            runs.append(metrics)
        return metrics.as_dict()

    result = run_replications(
        one,
        targets=targets,
        min_replications=min(min_replications, replications),
        max_replications=replications,
    )
    if keep_runs:
        result.runs = runs  # type: ignore[attr-defined]
    return result


# Parallel fan-out lives in repro.experiments.pool; re-exported lazily (PEP
# 562) so callers keep one entry point for the single-run and sweep APIs
# while pool can import run_once from here without a cycle.
_POOL_EXPORTS = ("SweepCell", "SweepResult", "SweepSpec", "run_sweep")

__all__ = [
    "RunConfig",
    "SystemConfig",
    "SCHEDULERS",
    "LiveRun",
    "build_live_run",
    "run_once",
    "run_replicated",
    *_POOL_EXPORTS,
]


def __getattr__(name: str):
    if name in _POOL_EXPORTS:
        from repro.experiments import pool

        return getattr(pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
