"""API hygiene meta-tests.

Documentation is a deliverable: every public module, class and function in
``repro`` must carry a docstring, and every name exported through a package
``__all__`` must actually resolve.
"""

import importlib
import inspect
import pkgutil

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [
        m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
    ]
    assert missing == [], f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_public_methods_documented():
    """Public methods of public classes need docstrings, inherited docs
    count (protocol implementations like ``propagate`` document once on the
    base), and properties are exempt (self-describing accessors)."""
    missing = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") or not inspect.isfunction(member):
                    continue
                bound = getattr(cls, name, member)
                if not (inspect.getdoc(bound) or "").strip():
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert missing == [], f"undocumented public methods: {missing}"


def test_all_exports_resolve():
    for module in _walk_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"
