"""CSV export of per-job turnarounds and per-invocation overhead."""

from repro.metrics import MetricsCollector
from repro.metrics.analysis import (
    overhead_csv,
    turnarounds_csv,
    write_overhead_csv,
    write_turnarounds_csv,
)

from tests.conftest import make_job


def _two_job_metrics():
    c = MetricsCollector()
    j1 = make_job(1, earliest_start=0, deadline=50)
    j2 = make_job(2, earliest_start=10, deadline=30)
    c.job_arrived(j1)
    c.job_arrived(j2)
    c.job_completed(j2, 35)  # late (deadline 30), turnaround 25
    c.job_completed(j1, 40)  # on time, turnaround 40
    c.record_overhead(0.25, sim_time=12.0)
    c.record_overhead(0.5)  # no timeline: sim_time column stays empty
    return c.finalize()


def test_turnarounds_csv_rows_sorted_with_late_flag():
    csv = turnarounds_csv(_two_job_metrics())
    assert csv == "job_id,turnaround,late\n1,40,0\n2,25,1\n"


def test_overhead_csv_in_invocation_order_with_sim_time():
    csv = overhead_csv(_two_job_metrics())
    assert csv == (
        "invocation,sim_time,overhead_seconds\n0,12.0,0.25\n1,,0.5\n"
    )


def test_overhead_series_round_trips_exactly():
    # repr floats: parsing the column back must reproduce the series
    m = _two_job_metrics()
    rows = overhead_csv(m).splitlines()[1:]
    parsed = [float(r.split(",")[2]) for r in rows]
    assert parsed == m.overhead_series
    assert sum(parsed) == m.total_sched_overhead


def test_overhead_sim_times_align_with_series():
    m = _two_job_metrics()
    assert m.overhead_sim_times == [12.0, None]
    assert len(m.overhead_sim_times) == len(m.overhead_series)


def test_empty_run_exports_headers_only():
    m = MetricsCollector().finalize()
    assert turnarounds_csv(m) == "job_id,turnaround,late\n"
    assert overhead_csv(m) == "invocation,sim_time,overhead_seconds\n"


def test_write_functions_create_files(tmp_path):
    m = _two_job_metrics()
    t_path = str(tmp_path / "turnarounds.csv")
    o_path = str(tmp_path / "overhead.csv")
    assert write_turnarounds_csv(m, t_path) == t_path
    assert write_overhead_csv(m, o_path) == o_path
    assert open(t_path, encoding="utf-8").read() == turnarounds_csv(m)
    assert open(o_path, encoding="utf-8").read() == overhead_csv(m)
