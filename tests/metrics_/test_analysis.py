"""Post-run analysis helpers."""

import pytest

from repro.core.schedule import TaskAssignment
from repro.metrics import MetricsCollector
from repro.metrics.analysis import (
    offered_load,
    percentile,
    slot_utilization,
    tardiness_stats,
    turnaround_percentiles,
)
from repro.workload.entities import Resource

from tests.conftest import make_job


def test_slot_utilization():
    job = make_job(0, (10, 5), (4,), deadline=100)
    assignments = [
        TaskAssignment(job.map_tasks[0], 0, 0, 0),
        TaskAssignment(job.map_tasks[1], 0, 1, 0),
        TaskAssignment(job.reduce_tasks[0], 0, 0, 10),
    ]
    report = slot_utilization(assignments, [Resource(0, 2, 1)])
    assert report.span == 14
    assert report.map_busy_seconds == 15
    assert report.reduce_busy_seconds == 4
    assert report.map_utilization == pytest.approx(15 / 28)
    assert report.reduce_utilization == pytest.approx(4 / 14)
    assert 0 < report.overall_utilization < 1


def test_slot_utilization_explicit_span():
    job = make_job(0, (10,))
    report = slot_utilization(
        [TaskAssignment(job.map_tasks[0], 0, 0, 0)],
        [Resource(0, 1, 0)],
        span=100,
    )
    assert report.map_utilization == pytest.approx(0.1)


def test_utilization_empty():
    report = slot_utilization([], [Resource(0, 1, 1)])
    assert report.overall_utilization == 0.0


def test_offered_load():
    jobs = [
        make_job(0, (10, 10), arrival=0, earliest_start=0, deadline=100),
        make_job(1, (10, 10), arrival=100, earliest_start=100, deadline=300),
    ]
    rho = offered_load(jobs, [Resource(0, 1, 1)])
    # 40 work units over 100 s of arrivals, 2 slots -> 0.2
    assert rho == pytest.approx(0.2)
    assert offered_load([], [Resource(0, 1, 1)]) == 0.0
    assert offered_load([jobs[0]], [Resource(0, 1, 1)]) == float("inf")


def test_tardiness_stats():
    collector = MetricsCollector()
    on_time = make_job(0, (5,), deadline=50)
    late1 = make_job(1, (5,), deadline=20)
    late2 = make_job(2, (5,), deadline=20)
    for j in (on_time, late1, late2):
        collector.job_arrived(j)
    collector.job_completed(on_time, 30)
    collector.job_completed(late1, 25)  # tardiness 5
    collector.job_completed(late2, 40)  # tardiness 20
    stats = tardiness_stats(
        collector.finalize(), [on_time, late1, late2]
    )
    assert stats.late_jobs == 2
    assert stats.tardiness_by_job == {1: 5, 2: 20}
    assert stats.mean_tardiness == 12.5
    assert stats.max_tardiness == 20
    assert stats.total_tardiness == 25


def test_tardiness_no_late_jobs():
    collector = MetricsCollector()
    j = make_job(0, (5,), deadline=50)
    collector.job_arrived(j)
    collector.job_completed(j, 10)
    stats = tardiness_stats(collector.finalize(), [j])
    assert stats.late_jobs == 0
    assert stats.mean_tardiness == 0.0


def test_percentile_nearest_rank():
    data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    assert percentile(data, 50) == 5
    assert percentile(data, 90) == 9
    assert percentile(data, 100) == 10
    assert percentile(data, 0) == 1
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(data, 101)


def test_turnaround_percentiles():
    collector = MetricsCollector()
    for i, ct in enumerate([10, 20, 30, 40]):
        j = make_job(i, (5,), deadline=1000)
        collector.job_arrived(j)
        collector.job_completed(j, ct)
    metrics = collector.finalize()
    p = turnaround_percentiles(metrics, qs=(50, 100))
    assert p[50] == 20
    assert p[100] == 40


def test_turnaround_percentiles_empty():
    assert turnaround_percentiles(MetricsCollector().finalize()) == {
        50: 0.0, 90: 0.0, 99: 0.0,
    }
