"""Metrics collection: O / N / T / P semantics."""

import pytest

from repro.metrics import MetricsCollector

from tests.conftest import make_job


def test_empty_run():
    m = MetricsCollector().finalize()
    assert m.jobs_arrived == 0
    assert m.proportion_late == 0.0
    assert m.avg_sched_overhead == 0.0
    assert m.avg_turnaround == 0.0


def test_basic_metrics():
    c = MetricsCollector()
    j1 = make_job(1, earliest_start=0, deadline=50)
    j2 = make_job(2, earliest_start=10, deadline=30)
    c.job_arrived(j1)
    c.job_arrived(j2)
    c.job_completed(j1, 40)  # on time, turnaround 40
    c.job_completed(j2, 35)  # late, turnaround 25
    c.record_overhead(0.2)
    c.record_overhead(0.4)
    m = c.finalize()
    assert m.jobs_arrived == m.jobs_completed == 2
    assert m.late_jobs == 1
    assert m.late_job_ids == [2]
    assert m.proportion_late == 0.5
    assert m.percent_late == 50.0
    assert m.avg_turnaround == (40 + 25) / 2
    assert m.avg_sched_overhead == pytest.approx(0.6 / 2)
    assert m.total_sched_overhead == pytest.approx(0.6)
    assert m.scheduler_invocations == 2
    assert m.makespan == 40
    assert m.turnarounds == {1: 40, 2: 25}


def test_turnaround_measured_from_earliest_start():
    c = MetricsCollector()
    j = make_job(1, arrival=0, earliest_start=100, deadline=300)
    c.job_arrived(j)
    c.job_completed(j, 150)
    assert c.finalize().avg_turnaround == 50


def test_completion_exactly_at_deadline_is_on_time():
    c = MetricsCollector()
    j = make_job(1, deadline=50)
    c.job_arrived(j)
    c.job_completed(j, 50)
    assert c.finalize().late_jobs == 0


def test_incomplete_jobs_counted_in_p_denominator():
    c = MetricsCollector()
    j1 = make_job(1, deadline=50)
    j2 = make_job(2, deadline=50)
    c.job_arrived(j1)
    c.job_arrived(j2)
    c.job_completed(j1, 60)
    m = c.finalize()
    assert m.jobs_completed == 1
    assert m.proportion_late == 0.5  # 1 late of 2 arrived


def test_duplicate_events_rejected():
    c = MetricsCollector()
    j = make_job(1)
    c.job_arrived(j)
    with pytest.raises(ValueError):
        c.job_arrived(j)
    c.job_completed(j, 10)
    with pytest.raises(ValueError):
        c.job_completed(j, 12)


def test_as_dict_exports_paper_metrics():
    c = MetricsCollector()
    j = make_job(1, deadline=5)
    c.job_arrived(j)
    c.job_completed(j, 10)
    c.record_overhead(0.5)
    d = c.finalize().as_dict()
    assert set(d) == {"O", "N", "T", "P"}
    assert d["N"] == 1.0
    assert d["P"] == 100.0


def test_solver_stats_accumulate():
    c = MetricsCollector()
    c.record_solver_stats(10, 5, 2)
    c.record_solver_stats(3, 1, 0)
    m = c.finalize()
    assert m.solver_branches == 13
    assert m.solver_fails == 6
    assert m.solver_lns_iterations == 2


def test_tardiness_by_job_and_stats():
    """Late jobs get per-job tardiness and verbose summary statistics."""
    c = MetricsCollector()
    jobs = [make_job(i, earliest_start=0, deadline=100) for i in range(4)]
    for j in jobs:
        c.job_arrived(j)
    c.job_completed(jobs[0], 90)   # on time
    c.job_completed(jobs[1], 110)  # tardy 10
    c.job_completed(jobs[2], 130)  # tardy 30
    c.job_completed(jobs[3], 120)  # tardy 20
    m = c.finalize()
    assert m.tardiness_by_job == {1: 10, 2: 30, 3: 20}
    assert m.mean_tardiness == pytest.approx(20.0)
    assert m.max_tardiness == 30
    assert m.tardiness_percentile(50) == 20
    assert m.tardiness_percentile(95) == 30


def test_verbose_dict_includes_tardiness_stats():
    c = MetricsCollector()
    j = make_job(1, earliest_start=0, deadline=10)
    c.job_arrived(j)
    c.job_completed(j, 25)  # tardy 15
    m = c.finalize()
    # the happy-path export stays exactly the paper's four metrics
    assert set(m.as_dict()) == {"O", "N", "T", "P"}
    verbose = m.as_dict(verbose=True)
    assert verbose["tardiness_mean"] == pytest.approx(15.0)
    assert verbose["tardiness_p50"] == pytest.approx(15.0)
    assert verbose["tardiness_p95"] == pytest.approx(15.0)
    assert verbose["tardiness_max"] == pytest.approx(15.0)


def test_no_late_jobs_no_tardiness():
    c = MetricsCollector()
    j = make_job(1, earliest_start=0, deadline=100)
    c.job_arrived(j)
    c.job_completed(j, 50)
    m = c.finalize()
    assert m.tardiness_by_job == {}
    assert m.mean_tardiness == 0.0
    assert m.max_tardiness == 0
    assert m.tardiness_percentile(95) == 0
    verbose = m.as_dict(verbose=True)
    assert verbose.get("tardiness_mean", 0.0) == 0.0
