"""Monetary cost model (Section VII future-work extension)."""

import pytest

from repro.core.schedule import TaskAssignment
from repro.metrics import MetricsCollector
from repro.metrics.cost import (
    CostBreakdown,
    PricingModel,
    execution_cost,
    track_execution,
)
from repro.workload.entities import Resource

from tests.conftest import make_job


def _assignments():
    job = make_job(0, (10, 5), (4,), deadline=100)
    return [
        TaskAssignment(job.map_tasks[0], 0, 0, 0),
        TaskAssignment(job.map_tasks[1], 0, 1, 0),
        TaskAssignment(job.reduce_tasks[0], 0, 0, 10),
    ], job


def test_usage_cost_by_kind():
    assignments, _ = _assignments()
    pricing = PricingModel(
        map_slot_price=1.0,
        reduce_slot_price=2.0,
        resource_base_price=0.0,
        late_penalty=0.0,
    )
    cost = execution_cost(assignments, [Resource(0, 2, 1)], pricing)
    assert cost.map_usage_seconds == 15
    assert cost.reduce_usage_seconds == 4
    assert cost.usage_cost == 15 * 1.0 + 4 * 2.0
    assert cost.total == cost.usage_cost


def test_provisioning_cost_uses_span():
    assignments, _ = _assignments()
    pricing = PricingModel(
        map_slot_price=0.0, reduce_slot_price=0.0,
        resource_base_price=1.0, late_penalty=0.0,
    )
    # default span = makespan = 14
    cost = execution_cost(assignments, [Resource(0, 2, 1), Resource(1, 2, 1)], pricing)
    assert cost.provisioning_cost == 2 * 14
    explicit = execution_cost(
        assignments, [Resource(0, 2, 1)], pricing, span=100
    )
    assert explicit.provisioning_cost == 100


def test_penalty_from_metrics():
    assignments, job = _assignments()
    collector = MetricsCollector()
    collector.job_arrived(job)
    collector.job_completed(job, 200)  # past the deadline of 100
    metrics = collector.finalize()
    pricing = PricingModel(
        map_slot_price=0.0, reduce_slot_price=0.0,
        resource_base_price=0.0, late_penalty=7.5,
    )
    cost = execution_cost(assignments, [], pricing, metrics=metrics)
    assert cost.late_jobs == 1
    assert cost.penalty_cost == 7.5
    assert cost.total == 7.5


def test_per_job_usage_attribution():
    assignments, job = _assignments()
    pricing = PricingModel(1.0, 1.0, 0.0, 0.0)
    cost = execution_cost(assignments, [], pricing)
    assert cost.per_job_usage == {0: 19.0}


def test_cost_per_on_time_job():
    b = CostBreakdown(usage_cost=30.0, late_jobs=1)
    assert b.cost_per_on_time_job(jobs_completed=4) == 10.0
    assert b.cost_per_on_time_job(jobs_completed=1) == float("inf")


def test_negative_prices_rejected():
    with pytest.raises(ValueError):
        execution_cost([], [], PricingModel(map_slot_price=-1))


def test_track_execution_records_started_tasks():
    from repro.core.executor import ScheduledExecutor
    from repro.sim import Simulator

    sim = Simulator()
    ex = ScheduledExecutor(sim, [Resource(0, 2, 1)])
    assignments, job = _assignments()
    ex.register_job(job)
    executed = track_execution(ex)
    ex.install(assignments)
    sim.run(until=5)
    assert len(executed) == 2  # the two maps started, the reduce has not
    sim.run()
    assert len(executed) == 3
    cost = execution_cost(executed, [Resource(0, 2, 1)])
    assert cost.map_usage_seconds == 15
