"""Series execution and text reporting."""

from dataclasses import replace

from repro.experiments.configs import SCALED, figure_series
from repro.experiments.reporting import format_series, run_series, series_rows


def _small_series():
    """fig7 shrunk to 2 points and a handful of jobs for test speed."""
    series = figure_series("fig7", SCALED)
    series.configs = series.configs[:2]
    for labeled in series.configs:
        labeled.config.synthetic = replace(
            labeled.config.synthetic, num_jobs=5, map_tasks_range=(1, 4),
            reduce_tasks_range=(1, 2), arrival_rate=0.05,
        )
        labeled.config.mrcp.solver.time_limit = 0.1
    return series


def test_run_series_and_rows():
    series = _small_series()
    results = run_series(series, replications=2)
    rows = series_rows(series, results)
    assert len(rows) == 2
    for row in rows:
        assert row["scheduler"] == "mrcp-rm"
        assert "P" in row and "P_hw" in row
        assert row["replications"] >= 1
        assert row["T"] > 0


def test_ascii_chart_renders_bars():
    from repro.experiments.reporting import ascii_chart

    series = _small_series()
    results = run_series(series, replications=2)
    chart = ascii_chart(series, results, metric="T", width=30)
    lines = chart.splitlines()
    assert len(lines) == 1 + len(series.configs)
    assert "T (s)" in lines[0]
    assert any("#" in line for line in lines[1:])  # some non-zero bar
    # the largest bar reaches full width
    assert any(line.count("#") == 30 for line in lines[1:])


def test_ascii_chart_all_zero_metric():
    from repro.experiments.reporting import ascii_chart

    series = _small_series()
    results = run_series(series, replications=1)
    chart = ascii_chart(series, results, metric="N", width=20)
    assert chart  # renders without dividing by zero


def test_format_series_renders_table():
    series = _small_series()
    results = run_series(series, replications=2)
    text = format_series(series, results)
    assert "fig7" in text
    assert "O (ms/job)" in text
    assert "P (%)" in text
    assert "mrcp-rm" in text
    # one line per configuration plus headers
    assert len(text.splitlines()) >= 2 + len(series.configs)
