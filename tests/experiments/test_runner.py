"""Experiment runner: configs, replication, scheduler parity."""

import pytest

from repro.experiments.runner import (
    RunConfig,
    SystemConfig,
    _generate_jobs,
    run_once,
    run_replicated,
)
from repro.workload import SyntheticWorkloadParams


def _tiny_synthetic(**kw):
    params = dict(
        num_jobs=6,
        map_tasks_range=(1, 4),
        reduce_tasks_range=(1, 2),
        e_max=8,
        ar_probability=0.2,
        s_max=50,
        deadline_multiplier_max=3.0,
        arrival_rate=0.05,
    )
    params.update(kw)
    return SyntheticWorkloadParams(**params)


def _config(scheduler="mrcp-rm", **kw):
    cfg = RunConfig(
        scheduler=scheduler,
        workload="synthetic",
        synthetic=_tiny_synthetic(),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    cfg.mrcp.solver.time_limit = 0.2
    for k, v in kw.items():
        setattr(cfg, k, v)
    return cfg


def test_validation_rejects_bad_configs():
    with pytest.raises(ValueError):
        _config(scheduler="bogus").validate()
    cfg = _config()
    cfg.synthetic = None
    with pytest.raises(ValueError):
        cfg.validate()
    cfg2 = _config()
    cfg2.workload = "facebook"
    with pytest.raises(ValueError):
        cfg2.validate()


@pytest.mark.parametrize("scheduler", ["mrcp-rm", "minedf-wc", "edf", "fcfs"])
def test_run_once_all_schedulers(scheduler):
    metrics = run_once(_config(scheduler), replication=0)
    assert metrics.jobs_arrived == 6
    assert metrics.jobs_completed == 6
    assert 0.0 <= metrics.proportion_late <= 1.0


def test_workload_identical_across_schedulers():
    """Competing schedulers must face the same job stream."""
    a = _generate_jobs(_config("mrcp-rm"), seed=5)
    b = _generate_jobs(_config("fcfs"), seed=5)
    assert [j.deadline for j in a] == [j.deadline for j in b]
    assert [t.duration for j in a for t in j.tasks] == [
        t.duration for j in b for t in j.tasks
    ]


def test_replications_differ():
    m0 = run_once(_config("fcfs"), replication=0)
    m1 = run_once(_config("fcfs"), replication=1)
    assert m0.avg_turnaround != m1.avg_turnaround


def test_run_once_deterministic():
    m0 = run_once(_config("fcfs"), replication=0)
    m1 = run_once(_config("fcfs"), replication=0)
    assert m0.avg_turnaround == m1.avg_turnaround
    assert m0.late_jobs == m1.late_jobs


def test_run_replicated_aggregates():
    result = run_replicated(
        _config("fcfs"), replications=3, min_replications=2,
        targets={"T": 0.9}, keep_runs=True
    )
    assert 2 <= result.replications <= 3
    assert "T" in result.samples and "P" in result.samples
    assert len(result.runs) == result.replications


def test_workflow_workload_through_runner():
    from repro.workload import WorkflowWorkloadParams

    cfg = RunConfig(
        scheduler="mrcp-rm",
        workload="workflow",
        workflow=WorkflowWorkloadParams(
            num_jobs=4, stages_range=(2, 3), tasks_per_stage_range=(1, 3),
            e_max=8, arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    cfg.mrcp.solver.time_limit = 0.2
    metrics = run_once(cfg, replication=0)
    assert metrics.jobs_completed == 4


@pytest.mark.parametrize("scheduler", ["minedf-wc", "edf", "fcfs"])
def test_workflow_through_slot_baselines(scheduler):
    from repro.workload import WorkflowWorkloadParams

    cfg = RunConfig(
        scheduler=scheduler,
        workload="workflow",
        workflow=WorkflowWorkloadParams(
            num_jobs=4, stages_range=(2, 3), tasks_per_stage_range=(1, 3),
            e_max=8, arrival_rate=0.05,
        ),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )
    metrics = run_once(cfg, replication=0)
    assert metrics.jobs_completed == 4


def test_workflow_transfer_delays_require_mrcp():
    from repro.workload import WorkflowWorkloadParams

    cfg = RunConfig(
        scheduler="minedf-wc",
        workload="workflow",
        workflow=WorkflowWorkloadParams(
            num_jobs=2, transfer_delay_range=(1, 5)
        ),
    )
    with pytest.raises(ValueError, match="transfer delays"):
        cfg.validate()


def test_te_uses_configured_system_size():
    cfg = _config("fcfs")
    jobs_small = _generate_jobs(cfg, seed=1)
    cfg_big = _config("fcfs")
    cfg_big.system = SystemConfig(num_resources=50, map_slots=2, reduce_slots=2)
    jobs_big = _generate_jobs(cfg_big, seed=1)
    # bigger cluster -> smaller TE -> tighter absolute deadlines
    assert sum(j.deadline for j in jobs_big) <= sum(j.deadline for j in jobs_small)
