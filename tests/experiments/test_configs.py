"""Figure/ablation configuration definitions."""

import pytest

from repro.core.formulation import FormulationMode
from repro.experiments.configs import (
    PAPER,
    SCALED,
    default_facebook_params,
    default_synthetic_params,
    figure_series,
    list_figures,
)


def test_all_figures_listed():
    figures = list_figures()
    for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
        assert fig in figures
    assert any(f.startswith("ablation-") for f in figures)


@pytest.mark.parametrize("figure", list_figures())
@pytest.mark.parametrize("profile", [SCALED, PAPER])
def test_every_series_builds_valid_configs(figure, profile):
    series = figure_series(figure, profile)
    assert series.configs
    for labeled in series.configs:
        labeled.config.validate()


def test_unknown_figure_rejected():
    with pytest.raises(ValueError):
        figure_series("fig99")
    with pytest.raises(ValueError):
        figure_series("fig2", profile="huge")


def test_fig2_pairs_both_schedulers_per_lambda():
    series = figure_series("fig2", SCALED)
    lambdas = {c.factor_value for c in series.configs}
    assert len(lambdas) == 5
    for lam in lambdas:
        scheds = {
            c.scheduler for c in series.configs if c.factor_value == lam
        }
        assert scheds == {"mrcp-rm", "minedf-wc"}


def test_fig4_varies_only_emax():
    series = figure_series("fig4", SCALED)
    e_values = [c.config.synthetic.e_max for c in series.configs]
    assert e_values == [10, 50, 100]
    rates = {c.config.synthetic.arrival_rate for c in series.configs}
    assert len(rates) == 1  # factor-at-a-time: everything else fixed


def test_fig9_scales_resource_counts_per_profile():
    scaled = figure_series("fig9", SCALED)
    paper = figure_series("fig9", PAPER)
    assert [c.config.system.num_resources for c in scaled.configs] == [5, 10, 20]
    assert [c.config.system.num_resources for c in paper.configs] == [25, 50, 100]


def test_paper_profile_uses_table3_ranges():
    params = default_synthetic_params(PAPER)
    assert params.map_tasks_range == (1, 100)
    assert params.reduce_tasks_range == (1, 100)
    scaled = default_synthetic_params(SCALED)
    assert scaled.map_tasks_range[1] < 100


def test_facebook_paper_profile_full_scale():
    params = default_facebook_params(PAPER)
    assert params.num_jobs == 1000
    assert params.scale == 1.0
    assert params.deadline_multiplier_max == 2.0


def test_ablation_separation_modes():
    series = figure_series("ablation-separation", SCALED)
    modes = [c.config.mrcp.mode for c in series.configs]
    assert FormulationMode.COMBINED in modes
    assert FormulationMode.JOINT in modes


def test_ablation_lns_toggles_solver_flag():
    series = figure_series("ablation-lns", SCALED)
    flags = {c.config.mrcp.solver.use_lns for c in series.configs}
    assert flags == {True, False}


def test_ablation_replanning_toggles():
    series = figure_series("ablation-replanning", SCALED)
    flags = {c.config.mrcp.replan for c in series.configs}
    assert flags == {True, False}


def test_ablation_hints_toggles():
    series = figure_series("ablation-hints", SCALED)
    flags = {c.config.mrcp.use_hints for c in series.configs}
    assert flags == {True, False}


def test_workflow_extension_series():
    depth = figure_series("ext-workflow-depth", SCALED)
    assert all(c.config.workload == "workflow" for c in depth.configs)
    assert [c.factor_value for c in depth.configs] == [2.0, 4.0, 6.0]
    density = figure_series("ext-workflow-density", SCALED)
    probs = [c.config.workflow.extra_edge_probability for c in density.configs]
    assert probs == [0.0, 0.4, 0.8]


def test_series_have_fresh_param_objects():
    """Mutating one point's params must not leak into another point."""
    series = figure_series("fig4", SCALED)
    a, b = series.configs[0].config, series.configs[1].config
    assert a.synthetic is not b.synthetic
    assert a.system is not b.system or a.system == b.system
