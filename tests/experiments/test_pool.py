"""Parallel sweep engine: seeding, merging, retries, resume (unit level).

Process-pool integration (workers=4 byte-identity, worker crashes) lives in
``tests/integration/test_sweep_parallel.py``; everything here runs
in-process via ``workers=1`` or calls the pure helpers directly.
"""

import json
import os
import random

import pytest

from repro.experiments.configs import LabeledConfig
from repro.experiments.pool import (
    CellJob,
    CellOutcome,
    PinnedClock,
    SweepSpec,
    cell_seed,
    deterministic_solver_params,
    execute_cell,
    merge_outcomes,
    run_sweep,
    stable_hash,
    workload_key,
)
from repro.experiments.runner import RunConfig, SystemConfig
from repro.workload import SyntheticWorkloadParams


def _tiny_synthetic(**kw):
    params = dict(
        num_jobs=4,
        map_tasks_range=(1, 3),
        reduce_tasks_range=(1, 2),
        e_max=8,
        ar_probability=0.2,
        s_max=50,
        deadline_multiplier_max=3.0,
        arrival_rate=0.05,
    )
    params.update(kw)
    return SyntheticWorkloadParams(**params)


def _config(scheduler="mrcp-rm", **wl):
    return RunConfig(
        scheduler=scheduler,
        workload="synthetic",
        synthetic=_tiny_synthetic(**wl),
        system=SystemConfig(num_resources=2, map_slots=2, reduce_slots=2),
    )


def _spec(name="unit", labels=("a", "b"), replications=2, root_seed=0, **kw):
    configs = [
        LabeledConfig(
            label=label,
            factor_value=float(i),
            scheduler="mrcp-rm",
            config=_config(arrival_rate=0.05 + 0.01 * i),
        )
        for i, label in enumerate(labels)
    ]
    return SweepSpec(
        name=name,
        configs=configs,
        factor="arrival_rate",
        replications=replications,
        root_seed=root_seed,
        **kw,
    )


# ------------------------------------------------------------------ seeding


def test_stable_hash_is_process_independent():
    # sha256-backed: these values must never change across runs/machines.
    assert stable_hash("") == 7183457195969485844
    assert stable_hash("0|synthetic:x|0") == stable_hash("0|synthetic:x|0")
    assert stable_hash("a") != stable_hash("b")


def test_cell_seed_depends_on_coordinates_only():
    cfg = _config()
    assert cell_seed(0, cfg, 0) == cell_seed(0, cfg, 0)
    assert cell_seed(0, cfg, 0) != cell_seed(0, cfg, 1)
    assert cell_seed(0, cfg, 0) != cell_seed(1, cfg, 0)
    different_wl = _config(arrival_rate=0.9)
    assert cell_seed(0, cfg, 0) != cell_seed(0, different_wl, 0)


def test_cell_seed_ignores_scheduler_and_solver_knobs():
    # Paired comparisons (mrcp-rm vs minedf-wc over one workload) must face
    # the identical job stream, so the seed ignores non-workload knobs.
    a, b = _config("mrcp-rm"), _config("minedf-wc")
    b.mrcp.solver.time_limit = 99.0
    assert workload_key(a) == workload_key(b)
    assert cell_seed(7, a, 1) == cell_seed(7, b, 1)


def test_workload_key_substitutes_system_slots():
    small = _config()
    big = _config()
    big.system = SystemConfig(num_resources=8, map_slots=2, reduce_slots=2)
    assert workload_key(small) != workload_key(big)


def test_spec_cells_are_deterministic_and_indexed():
    spec = _spec()
    cells_a, cells_b = spec.cells(), spec.cells()
    assert [c.seed for c in cells_a] == [c.seed for c in cells_b]
    assert [c.index for c in cells_a] == list(range(4))
    assert len({(c.label, c.replication) for c in cells_a}) == 4


def test_spec_rejects_duplicate_labels_and_bad_counts():
    spec = _spec(labels=("same", "same"))
    with pytest.raises(ValueError):
        spec.cells()
    with pytest.raises(ValueError):
        _spec(replications=0).cells()
    with pytest.raises(ValueError):
        SweepSpec(name="empty", configs=[]).cells()


def test_deterministic_solver_params_never_time_bound():
    params = deterministic_solver_params(_config().mrcp.solver)
    assert params.time_limit >= 1e6
    assert params.tree_fail_limit
    assert not params.use_lns


def test_pinned_clock_is_deterministic_and_picklable():
    import pickle

    clock = PinnedClock(tick=0.5)
    assert [clock() for _ in range(3)] == [0.5, 1.0, 1.5]
    clone = pickle.loads(pickle.dumps(PinnedClock(tick=0.5)))
    assert clone() == 0.5


# ------------------------------------------------------------------ merging


def _fake_outcome(cell):
    return CellOutcome(
        index=cell.index,
        figure=cell.figure,
        label=cell.label,
        scheduler=cell.scheduler,
        factor_value=cell.factor_value,
        replication=cell.replication,
        seed=cell.seed,
        status="ok",
        attempts=1,
        metrics={"O": 0.001, "N": float(cell.index)},
    )


def test_merge_is_order_independent():
    cells = _spec().cells()
    outcomes = {c.index: _fake_outcome(c) for c in cells}
    shuffled = list(outcomes.items())
    random.Random(123).shuffle(shuffled)
    merged = merge_outcomes(cells, dict(shuffled))
    assert [o.index for o in merged] == [c.index for c in cells]
    assert merged == merge_outcomes(cells, outcomes)


def test_merge_rejects_incomplete_sweeps():
    cells = _spec().cells()
    outcomes = {c.index: _fake_outcome(c) for c in cells[:-1]}
    with pytest.raises(ValueError, match="incomplete"):
        merge_outcomes(cells, outcomes)


def test_csv_and_json_do_not_contain_wall_times(tmp_path):
    result = run_sweep(_spec(replications=1), workers=1, out_dir=str(tmp_path))
    assert result.wall > 0
    assert "wall" not in result.to_csv()
    assert "wall" not in json.dumps(result.to_json_dict())
    timing = json.load(open(tmp_path / "sweep.timing.json"))
    assert timing["wall"] > 0


# -------------------------------------------------------- execution & retry


def test_execute_cell_restarts_pinned_clock_per_attempt():
    spec = _spec(labels=("a",), replications=1)
    cell = spec.cells()[0]
    first = execute_cell(CellJob(cell=cell))
    second = execute_cell(CellJob(cell=cell, attempt=2))
    assert first.status == second.status == "ok"
    assert first.metrics == second.metrics


def test_failed_cell_marks_only_itself_and_exhausts_retries():
    spec = _spec(labels=("good", "bad"), replications=1)
    # An invalid config raises inside run_once (crash isolation path):
    # minedf-wc cannot run fault injection.
    from repro.faults import FaultModel

    bad = spec.configs[1].config
    bad.scheduler = "minedf-wc"
    bad.faults = FaultModel(task_failure_prob=0.5, seed=1)
    spec.configs[1] = LabeledConfig(
        label="bad", factor_value=1.0, scheduler="minedf-wc", config=bad
    )
    result = run_sweep(spec, workers=1, retries=2)
    assert len(result.ok_cells) == 1
    (failed,) = result.failed_cells
    assert failed.label == "bad"
    assert failed.attempts == 3  # retries + 1
    assert "ValueError" in failed.error


def test_sequential_retry_preserves_determinism_of_ok_cells():
    spec = _spec(labels=("a",), replications=1)
    baseline = run_sweep(spec, workers=1).to_csv()
    again = run_sweep(spec, workers=1, retries=3).to_csv()
    assert baseline == again


# ----------------------------------------------------------------- resume


def test_resume_reuses_finished_cells(tmp_path):
    spec = _spec(replications=1)
    first = run_sweep(spec, workers=1, out_dir=str(tmp_path))
    assert all(o.status == "ok" for o in first.outcomes)

    calls = []

    def counting_runner(job):
        calls.append(job.cell.index)
        return execute_cell(job)

    resumed = run_sweep(
        spec,
        workers=1,
        out_dir=str(tmp_path),
        resume=True,
        runner=counting_runner,
    )
    assert calls == []  # every cell came from disk
    assert resumed.to_csv() == first.to_csv()
    assert resumed.to_json() == first.to_json()


def test_resume_ignores_foreign_or_failed_cell_files(tmp_path):
    spec = _spec(replications=1)
    run_sweep(spec, workers=1, out_dir=str(tmp_path))
    # Corrupt cell 0 (different seed = foreign sweep) and fail cell 1.
    p0 = tmp_path / "cells" / "cell-0000.json"
    payload = json.load(open(p0))
    payload["seed"] = payload["seed"] + 1
    json.dump(payload, open(p0, "w"))
    p1 = tmp_path / "cells" / "cell-0001.json"
    payload = json.load(open(p1))
    payload["status"] = "failed"
    json.dump(payload, open(p1, "w"))

    calls = []

    def counting_runner(job):
        calls.append(job.cell.index)
        return execute_cell(job)

    run_sweep(
        spec,
        workers=1,
        out_dir=str(tmp_path),
        resume=True,
        runner=counting_runner,
    )
    assert sorted(calls) == [0, 1]  # only the poisoned cells re-ran


def test_capture_requires_out_dir():
    with pytest.raises(ValueError, match="out_dir"):
        run_sweep(_spec(capture=True), workers=1)


def test_capture_writes_per_cell_traces(tmp_path):
    spec = _spec(labels=("a",), replications=1, capture=True)
    run_sweep(spec, workers=1, out_dir=str(tmp_path))
    trace = json.load(open(tmp_path / "cells" / "cell-0000.trace.json"))
    assert trace["traceEvents"]


def test_run_sweep_validates_arguments():
    with pytest.raises(ValueError):
        run_sweep(_spec(), workers=0)
    with pytest.raises(ValueError):
        run_sweep(_spec(), retries=-1)


# ----------------------------------------------------------------- report


def test_build_sweep_report_renders_summary_and_strips(tmp_path):
    from repro.experiments.pool import build_sweep_report

    spec = _spec(replications=1, capture=True)
    result = run_sweep(spec, workers=1, out_dir=str(tmp_path))
    path = build_sweep_report(result, spec, str(tmp_path))
    html = open(path, encoding="utf-8").read()
    assert html.startswith("<!DOCTYPE html>")
    assert "Sweep summary" in html
    assert "Per-cell utilization" in html
    assert "<script" not in html  # self-contained, no JS
    assert os.path.basename(path) == "sweep.html"
