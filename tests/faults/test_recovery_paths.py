"""PR 1 recovery paths, asserted through the metrics surface.

Each test drives one recovery mechanism -- EDF fallback under a forced
solver timeout, retry-budget exhaustion, outage-window replanning -- and
checks that the fault counters land in ``as_dict(verbose=True)`` where
sweeps and reports read them.
"""

from repro.core import MrcpRm, MrcpRmConfig
from repro.cp.solver import SolverParams
from repro.faults import FaultModel, OutageWindow
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import make_uniform_cluster

from tests.conftest import make_job


def _run(jobs, config):
    sim = Simulator()
    metrics = MetricsCollector()
    rm = MrcpRm(sim, make_uniform_cluster(2, 2, 2), config, metrics)
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: rm.submit(j))
    sim.run()
    rm.executor.assert_quiescent()
    return metrics.finalize(), rm


def test_edf_fallback_counters_surface_in_verbose_dict():
    """A zero-budget solver forces every invocation onto the EDF fallback;
    the count must appear both on the metrics object and in the verbose
    dict consumed by sweeps and reports."""
    jobs = [
        make_job(i, (4, 4), (6,), arrival=i * 5, earliest_start=i * 5,
                 deadline=i * 5 + 500)
        for i in range(3)
    ]
    metrics, _ = _run(
        jobs, MrcpRmConfig(solver=SolverParams(time_limit=0.0))
    )
    assert metrics.jobs_completed == 3
    assert metrics.fallback_solves > 0
    verbose = metrics.as_dict(verbose=True)
    assert verbose["fallback_solves"] == float(metrics.fallback_solves)
    # The fallback produced every plan, so no job may be lost to it.
    assert verbose["jobs_failed"] == 0.0
    assert metrics.jobs_completed == metrics.jobs_arrived


def test_retry_exhaustion_counters_surface_in_verbose_dict():
    job = make_job(0, (5,), deadline=500)
    config = MrcpRmConfig(
        solver=SolverParams(time_limit=0.5),
        faults=FaultModel(task_failure_prob=1.0, seed=3),
        max_task_retries=2,
    )
    metrics, rm = _run([job], config)
    assert metrics.jobs_failed == 1
    assert rm.failed_jobs == [0]
    verbose = metrics.as_dict(verbose=True)
    assert verbose["jobs_failed"] == 1.0
    assert verbose["failures_injected"] == 3.0  # initial try + 2 retries
    assert verbose["retries"] == 2.0
    # Accounting invariant: nothing lost, nothing double-counted.
    assert metrics.jobs_completed + metrics.jobs_failed == metrics.jobs_arrived


def test_outage_replan_counters_surface_in_verbose_dict():
    job = make_job(0, (10, 10, 10, 10), deadline=500)
    config = MrcpRmConfig(
        solver=SolverParams(time_limit=0.5),
        faults=FaultModel(outages=(OutageWindow(0, 3.0, 20.0),)),
    )
    metrics, _ = _run([job], config)
    assert metrics.jobs_completed == 1
    verbose = metrics.as_dict(verbose=True)
    assert verbose["outages"] == 1.0
    assert verbose["tasks_killed"] >= 1.0
    assert verbose["retries"] == verbose["tasks_killed"]
