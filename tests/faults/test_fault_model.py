"""Unit tests for FaultModel / OutageWindow / FaultInjector."""

import pytest

from repro.faults import AttemptOutcome, FaultInjector, FaultModel, OutageWindow
from repro.workload.entities import Resource

from tests.conftest import make_task


# ------------------------------------------------------------- validation
def test_default_model_is_inert():
    m = FaultModel()
    assert not m.enabled
    assert not m.perturbs_durations


@pytest.mark.parametrize(
    "kwargs",
    [
        {"task_failure_prob": 0.1},
        {"straggler_prob": 0.2},
        {"jitter_sigma": 0.1},
        {"outages": (OutageWindow(0, 10.0, 5.0),)},
        {"outage_rate": 0.01, "outage_duration_range": (1.0, 5.0),
         "outage_horizon": 100.0},
    ],
)
def test_any_knob_enables_the_model(kwargs):
    assert FaultModel(**kwargs).enabled


@pytest.mark.parametrize(
    "kwargs",
    [
        {"task_failure_prob": -0.1},
        {"task_failure_prob": 1.5},
        {"straggler_prob": 2.0},
        {"straggler_factor": 0.0},
        {"jitter_sigma": -1.0},
        {"outage_rate": -0.5},
        {"outage_rate": 0.1},  # missing duration range + horizon
        {"outage_rate": 0.1, "outage_duration_range": (5.0, 1.0),
         "outage_horizon": 10.0},
    ],
)
def test_invalid_models_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultModel(**kwargs)


def test_outage_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(0, -1.0, 5.0)
    with pytest.raises(ValueError):
        OutageWindow(0, 1.0, 0.0)
    assert OutageWindow(3, 10.0, 5.0).end == 15.0


# --------------------------------------------------------------- injector
def _injector(model, n_resources=2):
    return FaultInjector(model, [Resource(i, 2, 2) for i in range(n_resources)])


def test_inert_model_never_perturbs():
    inj = _injector(FaultModel())
    task = make_task("t0_m0", duration=7)
    for _ in range(50):
        out = inj.attempt_outcome(task)
        assert out == AttemptOutcome(duration=7, fails_after=None)
        assert not out.fails
    assert inj.outage_windows() == []


def test_failure_point_strictly_inside_attempt():
    inj = _injector(FaultModel(task_failure_prob=1.0))
    task = make_task("t0_m0", duration=9)
    for _ in range(50):
        out = inj.attempt_outcome(task)
        assert out.fails
        assert 0.0 <= out.fails_after < out.duration


def test_straggler_scales_nominal_not_previous_attempt():
    """Perturbation draws against the nominal duration, so retries never
    compound the straggler factor."""
    inj = _injector(FaultModel(straggler_prob=1.0, straggler_factor=2.0))
    task = make_task("t0_m0", duration=6)
    first = inj.attempt_outcome(task)
    assert first.duration == 12
    # Simulate the executor mutating the task after the straggler draw.
    task.nominal_duration = 6
    task.duration = first.duration
    second = inj.attempt_outcome(task)
    assert second.duration == 12  # 2 * nominal, not 2 * 12


def test_injector_draws_reproducible_across_instances():
    model = FaultModel(task_failure_prob=0.3, straggler_prob=0.3, seed=42)
    a, b = _injector(model), _injector(model)
    tasks = [make_task(f"t0_m{i}", duration=5 + i) for i in range(20)]
    assert [a.attempt_outcome(t) for t in tasks] == [
        b.attempt_outcome(t) for t in tasks
    ]


def test_explicit_outages_pass_through_sorted():
    w1, w2 = OutageWindow(1, 50.0, 5.0), OutageWindow(0, 10.0, 5.0)
    inj = _injector(FaultModel(outages=(w1, w2)))
    assert inj.outage_windows() == [w2, w1]


def test_random_outages_deterministic_and_non_overlapping_per_resource():
    model = FaultModel(
        outage_rate=0.05,
        outage_duration_range=(2.0, 10.0),
        outage_horizon=200.0,
        seed=7,
    )
    windows = _injector(model, n_resources=3).outage_windows()
    assert windows == _injector(model, n_resources=3).outage_windows()
    assert windows, "rate 0.05 over 200s x 3 resources should draw something"
    by_resource = {}
    for w in windows:
        by_resource.setdefault(w.resource_id, []).append(w)
        assert 0.0 <= w.start < 200.0
        assert 2.0 <= w.duration <= 10.0
    for ws in by_resource.values():
        for earlier, later in zip(ws, ws[1:]):
            assert later.start >= earlier.end  # recovery-gap semantics
