"""Slot cluster mechanics and the scheduler event loop."""

import pytest

from repro.baselines.slot_cluster import SlotCluster, SlotPolicy, SlotScheduler
from repro.core.schedule import SchedulingError, SlotKind
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import Resource

from tests.conftest import make_job


def test_start_task_occupies_and_releases():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 1, 1)])
    job = make_job(0, (5,))
    cluster.start_task(job.map_tasks[0], 0)
    assert cluster.free_count(SlotKind.MAP) == 0
    assert cluster.running_count() == 1
    sim.run()
    assert cluster.free_count(SlotKind.MAP) == 1
    assert job.map_tasks[0].is_completed
    cluster.assert_quiescent()


def test_start_without_free_slot_rejected():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 1, 0)])
    job = make_job(0, (5, 5))
    cluster.start_task(job.map_tasks[0], 0)
    with pytest.raises(SchedulingError):
        cluster.start_task(job.map_tasks[1], 0)


def test_start_on_unknown_resource_rejected():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 1, 1)])
    job = make_job(0, (5,))
    with pytest.raises(SchedulingError):
        cluster.start_task(job.map_tasks[0], 3)


def test_double_start_rejected():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 2, 0)])
    job = make_job(0, (5,))
    cluster.start_task(job.map_tasks[0], 0)
    with pytest.raises(SchedulingError):
        cluster.start_task(job.map_tasks[0], 0)


def test_eligible_tasks_barrier():
    job = make_job(0, (5, 5), (3,))
    eligible = SlotPolicy.eligible_tasks(job)
    assert all(t.is_map for t in eligible)
    # dispatch both maps -> nothing eligible while they run
    for t in job.map_tasks:
        t.is_prev_scheduled = True
    assert SlotPolicy.eligible_tasks(job) == []
    # complete them -> reduces eligible
    for t in job.map_tasks:
        t.is_completed = True
    eligible = SlotPolicy.eligible_tasks(job)
    assert all(t.is_reduce for t in eligible)


def test_place_tasks_spreads_least_loaded():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 2, 0), Resource(1, 2, 0)])
    job = make_job(0, (5, 5, 5, 5))
    free = SlotPolicy.free_snapshot(cluster)
    placements = SlotPolicy.place_tasks(free, job.map_tasks)
    assert len(placements) == 4
    rids = [rid for _, rid in placements]
    assert rids.count(0) == 2 and rids.count(1) == 2


def test_place_tasks_limit():
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 4, 0)])
    job = make_job(0, (5, 5, 5))
    free = SlotPolicy.free_snapshot(cluster)
    placements = SlotPolicy.place_tasks(free, job.map_tasks, limit=2)
    assert len(placements) == 2


class _GreedyPolicy(SlotPolicy):
    name = "greedy"

    def select(self, cluster, jobs, now):
        free = self.free_snapshot(cluster)
        out = []
        for job in jobs:
            out.extend(self.place_tasks(free, self.eligible_tasks(job)))
        return out


def test_scheduler_end_to_end_with_barrier():
    sim = Simulator()
    metrics = MetricsCollector()
    sched = SlotScheduler(sim, [Resource(0, 2, 1)], _GreedyPolicy(), metrics)
    job = make_job(0, (5, 7), (3,), deadline=100)
    sim.schedule_at(0, lambda: sched.submit(job))
    sim.run()
    sched.cluster.assert_quiescent()
    result = metrics.finalize()
    assert result.jobs_completed == 1
    # maps in parallel: done at 7; reduce 3 more -> 10
    assert result.makespan == 10


def test_scheduler_honours_earliest_start():
    sim = Simulator()
    metrics = MetricsCollector()
    sched = SlotScheduler(sim, [Resource(0, 1, 1)], _GreedyPolicy(), metrics)
    job = make_job(0, (5,), arrival=0, earliest_start=20, deadline=100)
    sim.schedule_at(0, lambda: sched.submit(job))
    sim.run(until=10)
    assert sched.cluster.running_count() == 0
    sim.run()
    assert metrics.finalize().makespan == 25


def test_scheduler_queues_when_saturated():
    sim = Simulator()
    metrics = MetricsCollector()
    sched = SlotScheduler(sim, [Resource(0, 1, 0)], _GreedyPolicy(), metrics)
    j1 = make_job(0, (10,), deadline=100)
    j2 = make_job(1, (10,), deadline=100)
    sim.schedule_at(0, lambda: sched.submit(j1))
    sim.schedule_at(0, lambda: sched.submit(j2))
    sim.run()
    result = metrics.finalize()
    assert result.jobs_completed == 2
    assert result.makespan == 20  # strictly sequential on one slot
