"""Baseline policies: MinEDF-WC, EDF, FCFS."""

from repro.baselines import EdfPolicy, FcfsPolicy, MinEdfWcPolicy, SlotScheduler
from repro.metrics import MetricsCollector
from repro.sim import Simulator
from repro.workload.entities import Resource, make_uniform_cluster

from tests.conftest import make_job


def _run(policy, jobs, resources=None):
    sim = Simulator()
    metrics = MetricsCollector()
    sched = SlotScheduler(
        sim, resources or make_uniform_cluster(2, 1, 1), policy, metrics
    )
    for job in jobs:
        sim.schedule_at(job.arrival_time, lambda j=job: sched.submit(j))
    sim.run()
    sched.cluster.assert_quiescent()
    return metrics.finalize()


def _contention_jobs():
    """A blocker occupies the only slot until t=10 while two jobs queue:
    the relaxed one arrives first, the urgent one second.  At t=10 an
    EDF policy must pick the urgent job; FCFS must pick the relaxed one."""
    blocker = make_job(0, (10,), deadline=1000)
    relaxed = make_job(1, (10,), arrival=1, earliest_start=1, deadline=1000)
    urgent = make_job(2, (10,), arrival=2, earliest_start=2, deadline=25)
    return [blocker, relaxed, urgent]


def test_edf_prefers_earliest_deadline():
    result = _run(EdfPolicy(), _contention_jobs(), [Resource(0, 1, 0)])
    assert result.late_jobs == 0
    assert result.turnarounds[2] == 18  # ran at [10, 20)


def test_fcfs_ignores_deadlines():
    result = _run(FcfsPolicy(), _contention_jobs(), [Resource(0, 1, 0)])
    assert result.late_job_ids == [2]  # urgent waited behind relaxed


def test_minedf_wc_picks_urgent_from_queue():
    result = _run(MinEdfWcPolicy(), _contention_jobs(), [Resource(0, 1, 0)])
    assert result.late_jobs == 0


def test_minedf_wc_allocates_minimum_then_shares():
    """Decision-level check of the two-pass allocation: the earliest-
    deadline job receives its ARIA *minimum* (2 slots here), not maximum
    parallelism, leaving a slot for the next job -- where plain EDF would
    hand all three slots to the first job."""
    from repro.baselines.slot_cluster import SlotCluster
    from repro.sim import Simulator

    # A: 4 maps x 10 s, budget 23 -> estimate(2) = 22.5 fits, estimate(1)=40
    # does not => minimum 2 slots.  B: same shape, slack deadline => min 1.
    a = make_job(0, (10, 10, 10, 10), deadline=23)
    b = make_job(1, (10, 10, 10, 10), deadline=1000)
    sim = Simulator()
    cluster = SlotCluster(sim, [Resource(0, 3, 0)])

    minedf = MinEdfWcPolicy().select(cluster, [a, b], now=0)
    by_job = {}
    for task, _ in minedf:
        by_job[task.job_id] = by_job.get(task.job_id, 0) + 1
    assert by_job == {0: 2, 1: 1}

    edf = EdfPolicy().select(cluster, [a, b], now=0)
    by_job = {}
    for task, _ in edf:
        by_job[task.job_id] = by_job.get(task.job_id, 0) + 1
    assert by_job == {0: 3}  # max parallelism starves B


def test_minedf_wc_work_conserving_uses_spare_slots():
    """With nothing else active, even a slack job gets all the slots."""
    slack = make_job(0, (10, 10, 10, 10), deadline=1000)
    resources = [Resource(0, 4, 0)]
    result = _run(MinEdfWcPolicy(), [slack], resources)
    assert result.makespan == 10  # ran fully parallel despite min alloc of 1


def test_minedf_wc_respects_barrier():
    job = make_job(0, (5, 5), (4,), deadline=100)
    result = _run(MinEdfWcPolicy(), [job], [Resource(0, 2, 1)])
    assert result.makespan == 9
    assert result.late_jobs == 0


def test_minedf_wc_open_stream():
    jobs = [
        make_job(i, (6, 6), (4,), arrival=i * 4, earliest_start=i * 4,
                 deadline=i * 4 + 120)
        for i in range(5)
    ]
    result = _run(MinEdfWcPolicy(), jobs, make_uniform_cluster(2, 2, 2))
    assert result.jobs_completed == 5
    assert result.late_jobs == 0


def test_policies_handle_map_only_jobs():
    jobs = [make_job(i, (4, 4), deadline=200, arrival=i, earliest_start=i)
            for i in range(3)]
    for policy in (MinEdfWcPolicy(), EdfPolicy(), FcfsPolicy()):
        result = _run(policy, [j.copy() for j in jobs])
        assert result.jobs_completed == 3, policy.name
