"""ARIA makespan model and minimum-slot computation."""

import pytest

from repro.baselines.perf_model import (
    min_slots_for_deadline,
    phase_time_estimate,
)


def test_phase_estimate_bounds():
    durs = [10, 10, 10, 10]
    # 1 slot: exactly the total work (lb == ub == 40 when max covers itself)
    t1 = phase_time_estimate(durs, 1)
    assert t1 == pytest.approx((40 - 5) / 1 + 5)  # (W - max/2)/n + max/2
    # n slots >= k: estimate approaches max-ish
    t4 = phase_time_estimate(durs, 4)
    assert t4 == pytest.approx((40 - 5) / 4 + 5)
    assert t4 < t1


def test_phase_estimate_between_lb_and_ub():
    durs = [3, 7, 11, 2]
    for n in (1, 2, 3, 4):
        est = phase_time_estimate(durs, n)
        lb = sum(durs) / n
        ub = (sum(durs) - max(durs)) / n + max(durs)
        assert lb <= est <= ub + 1e-9


def test_phase_estimate_empty():
    assert phase_time_estimate([], 3) == 0.0


def test_phase_estimate_zero_slots_rejected():
    with pytest.raises(ValueError):
        phase_time_estimate([1], 0)


def test_min_slots_single_phase_loose_deadline():
    n_m, n_r = min_slots_for_deadline([10] * 8, [], time_budget=100.0)
    assert n_r == 0
    assert 1 <= n_m <= 8
    assert phase_time_estimate([10] * 8, n_m) <= 100.0
    # minimality
    if n_m > 1:
        assert phase_time_estimate([10] * 8, n_m - 1) > 100.0


def test_min_slots_tight_deadline_maxes_out():
    n_m, n_r = min_slots_for_deadline([10] * 8, [5] * 4, time_budget=1.0)
    assert (n_m, n_r) == (8, 4)


def test_min_slots_two_phase_meets_budget():
    maps = [10] * 10
    reds = [20] * 5
    budget = 80.0
    n_m, n_r = min_slots_for_deadline(maps, reds, budget)
    assert 1 <= n_m <= 10 and 1 <= n_r <= 5
    assert (
        phase_time_estimate(maps, n_m) + phase_time_estimate(reds, n_r)
        <= budget
    )


def test_min_slots_minimal_total():
    """No (n_m - 1, n_r) or (n_m, n_r - 1) neighbour also fits."""
    maps = [8, 12, 4, 10, 6]
    reds = [15, 9]
    budget = 40.0
    n_m, n_r = min_slots_for_deadline(maps, reds, budget)

    def fits(a, b):
        return (
            phase_time_estimate(maps, a) + phase_time_estimate(reds, b)
            <= budget
        )

    assert fits(n_m, n_r)
    if n_m > 1:
        assert not fits(n_m - 1, n_r)
    if n_r > 1:
        assert not fits(n_m, n_r - 1)


def test_min_slots_empty_job():
    assert min_slots_for_deadline([], [], 10.0) == (0, 0)


def test_min_slots_reduce_only():
    n_m, n_r = min_slots_for_deadline([], [5, 5], time_budget=6.0)
    assert n_m == 0
    assert n_r == 2
