"""TimetableProfile: step-function bookkeeping and fit queries."""

from repro.cp.profile import (
    TimetableProfile,
    earliest_fit_in_segments,
    latest_fit_in_segments,
)


def test_empty_profile():
    p = TimetableProfile()
    assert p.segments() == []
    assert p.max_height() == 0
    assert p.height_at(5) == 0


def test_single_interval():
    p = TimetableProfile()
    p.add(2, 7, 3)
    assert p.segments() == [(2, 7, 3)]
    assert p.height_at(2) == 3
    assert p.height_at(6) == 3
    assert p.height_at(7) == 0
    assert p.max_height() == 3


def test_overlapping_intervals_stack():
    p = TimetableProfile()
    p.add(0, 10, 1)
    p.add(5, 15, 2)
    assert p.segments() == [(0, 5, 1), (5, 10, 3), (10, 15, 2)]
    assert p.max_height() == 3


def test_adjacent_intervals_merge_heights():
    p = TimetableProfile()
    p.add(0, 5, 2)
    p.add(5, 10, 2)
    # equal-height adjacent pieces coalesce (cancelling deltas at t=5)
    assert p.segments() == [(0, 10, 2)]
    assert p.height_at(5) == 2


def test_zero_demand_and_zero_length_ignored():
    p = TimetableProfile()
    p.add(0, 5, 0)
    p.add(3, 3, 4)
    assert p.segments() == []


def test_cancelling_deltas_cleanup():
    p = TimetableProfile()
    p.add(0, 10, 2)
    p.add(10, 20, 2)  # +2 at 10 cancels -2 at 10
    assert p.height_at(10) == 2


def test_earliest_fit_empty_profile():
    p = TimetableProfile()
    assert p.earliest_fit(est=3, lst=10, length=5, demand=1, capacity=1) == 3


def test_earliest_fit_pushes_past_full_region():
    p = TimetableProfile()
    p.add(0, 10, 1)
    assert p.earliest_fit(0, 20, 5, 1, 1) == 10
    # capacity 2: fits immediately on top
    assert p.earliest_fit(0, 20, 5, 1, 2) == 0


def test_earliest_fit_lands_in_gap():
    p = TimetableProfile()
    p.add(0, 4, 1)
    p.add(10, 14, 1)
    assert p.earliest_fit(0, 20, 5, 1, 1) == 4
    # too long for the gap [4, 10) -> pushed past the second block
    assert p.earliest_fit(0, 20, 7, 1, 1) == 14


def test_earliest_fit_none_when_window_too_tight():
    p = TimetableProfile()
    p.add(0, 10, 1)
    assert p.earliest_fit(0, 4, 5, 1, 1) is None


def test_latest_fit_mirrors_earliest():
    p = TimetableProfile()
    p.add(5, 10, 1)
    # window allows up to start 20; [20, 25) is free
    assert p.latest_fit(0, 20, 5, 1, 1) == 20
    # window capped at 8 -> must end by 13; block [5,10) forces start 0
    assert p.latest_fit(0, 8, 5, 1, 1) == 0
    # impossible window
    assert p.latest_fit(3, 8, 5, 1, 1) is None


def test_fit_zero_length_always_fits():
    p = TimetableProfile()
    p.add(0, 10, 5)
    assert p.earliest_fit(2, 8, 0, 1, 1) == 2
    assert p.latest_fit(2, 8, 0, 1, 1) == 8


def test_fit_in_segments_start_inside_block():
    segs = [(0, 10, 1)]
    assert earliest_fit_in_segments(segs, 5, 20, 3, 1, 1) == 10
    assert latest_fit_in_segments(segs, 0, 5, 3, 1, 1) is None


def test_multi_level_fit():
    p = TimetableProfile()
    p.add(0, 10, 2)
    p.add(3, 6, 1)  # height 3 over [3, 6)
    assert p.earliest_fit(0, 20, 2, 1, 3) == 0  # fits before the bump
    assert p.earliest_fit(2, 20, 2, 1, 3) == 6  # bump at [3,6) blocks
