"""Luby-restarted search."""

import pytest

from repro.cp import CpModel, CpSolver
from repro.cp.checker import check_solution
from repro.cp.search import SetTimesBrancher, luby, restarted_tree_search
from repro.cp.solver import SolverParams

from tests.conftest import two_job_single_machine_model


def test_luby_sequence():
    expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
    assert [luby(i) for i in range(1, 16)] == expected
    with pytest.raises(ValueError):
        luby(0)


def _contended_model(n=4, length=5, deadline=20):
    m = CpModel(horizon=200)
    bools = []
    for j in range(n):
        iv = m.interval_var(length=length, name=f"t{j}")
        bools.append(m.add_deadline_indicator([iv], deadline=deadline))
        m.add_group(f"j{j}", [iv], deadline=deadline)
    m.add_cumulative(m.intervals, capacity=1)
    m.minimize_sum(bools)
    return m


def test_restarted_search_finds_optimum():
    m = _contended_model()
    engine = m.engine()
    brancher = SetTimesBrancher(m, jump=True)
    result = restarted_tree_search(
        m, engine, brancher, time_budget=5.0, base_fail_limit=50
    )
    assert result.best is not None
    assert result.best.objective == 0  # all four fit back-to-back
    assert check_solution(m, result.best) == []


def test_restarted_search_carries_incumbent():
    m = two_job_single_machine_model()
    engine = m.engine()
    brancher = SetTimesBrancher(m, jump=False)
    result = restarted_tree_search(
        m, engine, brancher, time_budget=5.0, base_fail_limit=20
    )
    assert result.best.objective == 1
    # complete-mode episode exhausting within its fail budget = proof
    assert result.exhausted


def test_solver_with_restarts_enabled():
    m = two_job_single_machine_model()
    params = SolverParams(
        time_limit=3.0, restart_base_fail_limit=30, use_lns=False
    )
    result = CpSolver(params).solve(m)
    assert result.objective == 1
    assert check_solution(m, result.solution) == []


def test_restart_episodes_accumulate_stats():
    m = _contended_model(n=5, length=10, deadline=20)  # 2 fit, 3 late
    engine = m.engine()
    brancher = SetTimesBrancher(m, jump=True)
    result = restarted_tree_search(
        m, engine, brancher, time_budget=1.0, base_fail_limit=5
    )
    # several tiny episodes ran: accumulated fails exceed one episode's cap
    assert result.stats.fails >= 5
