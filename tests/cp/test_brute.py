"""Brute-force reference solver."""

from repro.cp import CpModel, brute_force_min_late
from repro.cp.checker import check_solution


def test_trivially_on_time():
    m = CpModel(horizon=10)
    a = m.interval_var(length=3, lst=7, name="a")
    late = m.add_deadline_indicator([a], deadline=10)
    m.add_cumulative([a], capacity=1)
    m.minimize_sum([late])
    result = brute_force_min_late(m)
    assert result is not None
    assert result[0] == 0


def test_forced_late():
    m = CpModel(horizon=30)
    a = m.interval_var(length=10, lst=10, name="a")
    b = m.interval_var(length=10, lst=10, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=10)
    lb = m.add_deadline_indicator([b], deadline=10)
    m.minimize_sum([la, lb])
    result = brute_force_min_late(m)
    assert result[0] == 1


def test_barrier_respected():
    m = CpModel(horizon=12)
    mp = m.interval_var(length=4, lst=8, name="m")
    rd = m.interval_var(length=4, lst=8, name="r")
    m.add_barrier([mp], [rd])
    m.add_cumulative([mp], capacity=1)
    m.add_cumulative([rd], capacity=1)
    late = m.add_deadline_indicator([rd], deadline=8)
    m.minimize_sum([late])
    late_count, sol = brute_force_min_late(m)
    assert late_count == 0
    assert sol.starts[rd] >= sol.starts[mp] + 4


def test_infeasible_returns_none():
    m = CpModel(horizon=15)
    a = m.fixed_interval(start=0, length=10, name="a")
    b = m.interval_var(length=10, est=0, lst=5, name="b")
    m.add_cumulative([a, b], capacity=1)
    m.minimize_sum([m.add_deadline_indicator([b], deadline=15)])
    assert brute_force_min_late(m) is None


def test_alternatives_enumerated():
    m = CpModel(horizon=8)
    t1 = m.interval_var(length=4, lst=4, name="t1")
    t2 = m.interval_var(length=4, lst=4, name="t2")
    pools = {0: [], 1: []}
    for t in (t1, t2):
        opts = []
        for rid in (0, 1):
            o = m.interval_var(length=4, lst=4, name=f"{t.name}@r{rid}", optional=True)
            pools[rid].append(o)
            opts.append(o)
        m.add_alternative(t, opts)
    m.add_cumulative(pools[0], capacity=1)
    m.add_cumulative(pools[1], capacity=1)
    l1 = m.add_deadline_indicator([t1], deadline=4)
    l2 = m.add_deadline_indicator([t2], deadline=4)
    m.minimize_sum([l1, l2])
    late_count, sol = brute_force_min_late(m)
    assert late_count == 0
    assert sol.choices[t1] is not sol.choices[t2] or (
        sol.choices[t1].name.split("@")[1] != sol.choices[t2].name.split("@")[1]
    )


def test_brute_solution_validates():
    m = CpModel(horizon=14)
    a = m.interval_var(length=5, lst=9, name="a")
    b = m.interval_var(length=5, lst=9, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=9)
    lb = m.add_deadline_indicator([b], deadline=12)
    m.minimize_sum([la, lb])
    late_count, sol = brute_force_min_late(m)
    m.engine()
    assert check_solution(m, sol) == []
    assert late_count == sol.objective == 0
