"""Segment-cache coherence of TimetableProfile (property-based).

The cache turned warm starts ~30% faster; these tests pin that it can never
serve stale segments after a mutation.
"""

from hypothesis import given, settings, strategies as st

from repro.cp.profile import TimetableProfile


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(1, 10), st.integers(1, 3)),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=120, deadline=None)
def test_interleaved_adds_and_queries_stay_coherent(ops):
    """Query after every add; compare against a fresh uncached rebuild."""
    cached = TimetableProfile()
    for i, (start, length, demand) in enumerate(ops):
        cached.add(start, start + length, demand)
        # a pristine profile built from scratch has no cache to go stale
        fresh = TimetableProfile()
        for s, l, d in ops[: i + 1]:
            fresh.add(s, s + l, d)
        assert cached.segments() == fresh.segments()
        # repeated query (cache hit) must equal the first
        assert cached.segments() == cached.segments()
        assert cached.max_height() == fresh.max_height()


def test_cache_hit_returns_same_object_until_mutation():
    p = TimetableProfile()
    p.add(0, 5, 1)
    first = p.segments()
    assert p.segments() is first  # memoised
    p.add(5, 9, 1)
    assert p.segments() is not first  # invalidated
