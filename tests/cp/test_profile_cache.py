"""Segment-cache coherence of TimetableProfile (property-based).

The cache turned warm starts ~30% faster; these tests pin that it can never
serve stale segments after a mutation.
"""

from hypothesis import given, settings, strategies as st

from repro.cp.profile import TimetableProfile


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(1, 10), st.integers(1, 3)),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=120, deadline=None)
def test_interleaved_adds_and_queries_stay_coherent(ops):
    """Query after every add; compare against a fresh uncached rebuild."""
    cached = TimetableProfile()
    for i, (start, length, demand) in enumerate(ops):
        cached.add(start, start + length, demand)
        # a pristine profile built from scratch has no cache to go stale
        fresh = TimetableProfile()
        for s, l, d in ops[: i + 1]:
            fresh.add(s, s + l, d)
        assert cached.segments() == fresh.segments()
        # repeated query (cache hit) must equal the first
        assert cached.segments() == cached.segments()
        assert cached.max_height() == fresh.max_height()


def test_cache_hit_returns_same_object_until_mutation():
    p = TimetableProfile()
    p.add(0, 5, 1)
    first = p.segments()
    assert p.segments() is first  # memoised
    p.add(5, 9, 1)
    assert p.segments() is not first  # invalidated


_OPS = st.one_of(
    st.tuples(
        st.just("add"),
        st.integers(0, 40),
        st.integers(1, 10),
        st.integers(1, 3),
    ),
    st.tuples(
        st.just("earliest"),
        st.integers(0, 40),
        st.integers(0, 8),
        st.integers(1, 4),
    ),
    st.tuples(
        st.just("latest"),
        st.integers(0, 40),
        st.integers(0, 8),
        st.integers(1, 4),
    ),
)


@given(st.lists(_OPS, min_size=1, max_size=30))
@settings(max_examples=120, deadline=None)
def test_add_fit_interleavings_never_serve_stale_segments(ops):
    """Interleave add() with fit queries; every answer must match a rebuild.

    The fit queries call ``segments()`` internally and thus populate the
    cache; the next ``add`` must invalidate it.  A missing invalidation
    shows up as a fit answer computed against the pre-mutation profile.
    """
    capacity = 4
    cached = TimetableProfile()
    applied = []
    for op in ops:
        if op[0] == "add":
            _, start, length, demand = op
            cached.add(start, start + length, demand)
            applied.append((start, start + length, demand))
            continue
        kind, est, length, demand = op
        lst = est + 60
        fresh = TimetableProfile()
        for s, e, d in applied:
            fresh.add(s, e, d)
        if kind == "earliest":
            got = cached.earliest_fit(est, lst, length, demand, capacity)
            want = fresh.earliest_fit(est, lst, length, demand, capacity)
        else:
            got = cached.latest_fit(est, lst, length, demand, capacity)
            want = fresh.latest_fit(est, lst, length, demand, capacity)
        assert got == want
        assert cached.segments() == fresh.segments()
