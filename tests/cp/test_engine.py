"""Engine: queueing, fixpoint, seal/reset lifecycle."""

import pytest

from repro.cp.domain import IntDomain
from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.base import Propagator


class _Ge(Propagator):
    """Enforces a.min >= b.min + offset (toy propagator)."""

    __slots__ = ("a", "b", "offset")

    def __init__(self, a, b, offset):
        super().__init__(f"ge({a.name},{b.name})")
        self.a, self.b, self.offset = a, b, offset

    def watched_domains(self):
        yield self.b

    def propagate(self, engine):
        self.a.set_min(self.b.min + self.offset, engine)


def test_fixpoint_chains_propagators():
    eng = Engine()
    a = IntDomain(0, 100, "a")
    b = IntDomain(0, 100, "b")
    c = IntDomain(0, 100, "c")
    eng.register(_Ge(b, a, 5))
    eng.register(_Ge(c, b, 7))
    eng.seal()
    a.set_min(10, eng)
    eng.propagate()
    assert b.min == 15
    assert c.min == 22


def test_propagation_failure_clears_queue():
    eng = Engine()
    a = IntDomain(0, 10, "a")
    b = IntDomain(0, 3, "b")
    eng.register(_Ge(b, a, 1))
    eng.seal()
    a.set_min(5, eng)  # forces b.min = 6 > b.max
    with pytest.raises(Infeasible):
        eng.propagate()
    # queue must be clean afterwards
    eng.propagate()  # no-op, no exception


def test_reset_restores_pristine_domains():
    eng = Engine()
    a = IntDomain(0, 100, "a")
    b = IntDomain(0, 100, "b")
    eng.register(_Ge(b, a, 5))
    eng.seal()
    a.set_min(30, eng)
    eng.propagate()
    assert b.min == 35
    eng.reset()
    assert a.min == 0 and b.min == 0
    # and the engine still works after reset
    a.set_min(10, eng)
    eng.propagate()
    assert b.min == 15


def test_register_after_seal_rejected():
    eng = Engine()
    eng.seal()
    with pytest.raises(RuntimeError):
        eng.register(_Ge(IntDomain(0, 1), IntDomain(0, 1), 0))


def test_reset_before_seal_rejected():
    eng = Engine()
    with pytest.raises(RuntimeError):
        eng.reset()


def test_propagator_not_double_queued():
    eng = Engine()
    a = IntDomain(0, 100, "a")
    b = IntDomain(0, 100, "b")
    prop = _Ge(b, a, 1)
    eng.register(prop)
    eng.seal()
    eng.propagate()
    count0 = eng.propagation_count
    a.set_min(5, eng)
    a.set_min(6, eng)  # second wake while already queued
    eng.propagate()
    assert eng.propagation_count == count0 + 1


def test_objective_bound_monotone():
    eng = Engine()
    eng.seal()
    eng.on_bound_tightened(5)
    eng.on_bound_tightened(8)  # looser: ignored
    assert eng.objective_bound == 5
    eng.on_bound_tightened(2)
    assert eng.objective_bound == 2
