"""Energetic reasoning: catches overloads that time-tabling misses."""

import pytest

from repro.cp import CpModel, CpSolver, SolveStatus
from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.cumulative import CumulativePropagator
from repro.cp.propagators.energetic import (
    EnergeticReasoningPropagator,
    minimal_intersection_energy,
)
from repro.cp.variables import IntervalVar


def test_minimal_intersection_energy_cases():
    iv = IntervalVar(0, 10, 4, "t")  # window [0, 10], len 4
    # window fully to the left of any possible execution
    assert minimal_intersection_energy(iv, 1, -5, 0) == 0
    # huge window: task fully inside -> its whole length
    assert minimal_intersection_energy(iv, 1, -10, 30) == 4
    # left-shift tail: task can be pushed mostly out to the right
    # window [0, 2): right-shift head = 2 - 10 < 0 -> no forced energy
    assert minimal_intersection_energy(iv, 1, 0, 2) == 0
    # fixed task: full overlap with its own window
    fixed = IntervalVar(3, 3, 4, "f")
    assert minimal_intersection_energy(fixed, 2, 0, 10) == 8
    assert minimal_intersection_energy(fixed, 2, 4, 6) == 4  # clipped


def _engine(props):
    eng = Engine()
    for p in props:
        eng.register(p)
    eng.seal()
    return eng


def test_detects_energy_overload_timetabling_misses():
    """Three 2s tasks, capacity 1, all windows [0, 5]: total energy 6 > 5.

    No task has a compulsory part, so time-tabling is silent; the energetic
    check must fail at the root.
    """
    ivs = [IntervalVar(0, 3, 2, f"t{i}") for i in range(3)]
    tt = _engine([CumulativePropagator(ivs, [1, 1, 1], 1)])
    tt.propagate()  # time-tabling alone: no failure

    en = _engine([
        CumulativePropagator(ivs, [1, 1, 1], 1),
        EnergeticReasoningPropagator(ivs, [1, 1, 1], 1),
    ])
    with pytest.raises(Infeasible):
        en.propagate()


def test_no_false_positives_on_feasible_instances():
    # 3 tasks of 2s, capacity 1, horizon 6: exactly fits
    ivs = [IntervalVar(0, 4, 2, f"t{i}") for i in range(3)]
    eng = _engine([EnergeticReasoningPropagator(ivs, [1, 1, 1], 1)])
    eng.propagate()  # must not raise


def test_demand_weighted_energy():
    # two tasks demand 2 on capacity 3, windows [0,3], len 3:
    # window [0, 6): energy 12 > 3*6=18 ok; window [0,3]..: lct=6
    # tight: windows force overlap -> [0,6) energy = 2*3+2*3=12 <= 18: fine
    ivs = [IntervalVar(0, 3, 3, f"t{i}") for i in range(2)]
    eng = _engine([EnergeticReasoningPropagator(ivs, [2, 2], 3)])
    eng.propagate()  # feasible? at any instant both would need 4 > 3...
    # time-table view: windows allow [0,3) and [3,6) -> feasible. OK.

    # now shrink windows so they *must* overlap: both in [0, 1]
    tight = [IntervalVar(0, 1, 3, f"s{i}") for i in range(2)]
    eng2 = _engine([EnergeticReasoningPropagator(tight, [2, 2], 3)])
    with pytest.raises(Infeasible):
        eng2.propagate()


def test_absent_optionals_contribute_nothing():
    eng = Engine()
    a = IntervalVar(0, 3, 2, "a", optional=True)
    b = IntervalVar(0, 3, 2, "b")
    c = IntervalVar(0, 3, 2, "c")
    prop = EnergeticReasoningPropagator([a, b, c], [1, 1, 1], 1)
    eng.register(prop)
    eng.seal()
    a.set_absent(eng)
    eng.propagate()  # only 8 units of energy over [0, 5]: fine


def test_task_cap_disables_check():
    ivs = [IntervalVar(0, 3, 2, f"t{i}") for i in range(3)]
    prop = EnergeticReasoningPropagator(ivs, [1, 1, 1], 1, task_cap=2)
    eng = _engine([prop])
    eng.propagate()  # skipped: 3 tasks > cap 2


def test_model_level_flag():
    def build(energetic):
        m = CpModel(horizon=6, energetic_reasoning=energetic)
        ivs = [m.interval_var(length=2, lst=3, name=f"t{i}") for i in range(3)]
        m.add_cumulative(ivs, capacity=1)
        late = [m.add_deadline_indicator([iv], deadline=5) for iv in ivs]
        for i, iv in enumerate(ivs):
            m.add_group(f"j{i}", [iv], deadline=5)
        m.minimize_sum(late)
        return m

    # with lst=3 the instance is infeasible (energy 6 in [0, 5])
    strong = CpSolver().solve(build(True), time_limit=2.0)
    assert strong.status is SolveStatus.INFEASIBLE
    # without energetic reasoning the search still proves it, just later
    weak = CpSolver().solve(build(False), time_limit=2.0, jump_branching=False)
    assert not weak.status.has_solution


def test_solver_unaffected_on_feasible_models():
    m = CpModel(horizon=50, energetic_reasoning=True)
    a = m.interval_var(length=5, name="a")
    b = m.interval_var(length=5, name="b")
    m.add_cumulative([a, b], capacity=1)
    la = m.add_deadline_indicator([a], deadline=10)
    lb = m.add_deadline_indicator([b], deadline=10)
    m.add_group("ja", [a], deadline=10)
    m.add_group("jb", [b], deadline=10)
    m.minimize_sum([la, lb])
    result = CpSolver().solve(m, time_limit=2.0)
    assert result.objective == 0
