"""Cumulative time-table propagation."""

import pytest

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.cumulative import CumulativePropagator
from repro.cp.variables import IntervalVar


def _setup(intervals, demands, capacity):
    eng = Engine()
    prop = CumulativePropagator(intervals, demands, capacity)
    eng.register(prop)
    eng.seal()
    return eng, prop


def test_no_propagation_when_slack():
    a = IntervalVar(0, 100, 10, "a")
    b = IntervalVar(0, 100, 10, "b")
    eng, _ = _setup([a, b], [1, 1], 2)
    eng.propagate()
    assert a.est == 0 and b.est == 0


def test_overload_of_compulsory_parts_fails():
    a = IntervalVar(0, 0, 10, "a")  # fixed [0, 10)
    b = IntervalVar(5, 5, 10, "b")  # fixed [5, 15)
    eng, _ = _setup([a, b], [1, 1], 1)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_movable_pushed_past_fixed_block():
    a = IntervalVar(0, 0, 10, "a")  # occupies [0, 10)
    b = IntervalVar(0, 100, 5, "b")
    eng, _ = _setup([a, b], [1, 1], 1)
    eng.propagate()
    assert b.est == 10


def test_movable_pulled_back_from_fixed_block():
    a = IntervalVar(20, 20, 10, "a")  # occupies [20, 30)
    b = IntervalVar(0, 25, 5, "b")  # must not overlap -> start <= 15
    eng, _ = _setup([a, b], [1, 1], 1)
    eng.propagate()
    assert b.lst == 15


def test_demand_aware_filtering():
    a = IntervalVar(0, 0, 10, "a")  # demand 2 of capacity 3
    b = IntervalVar(0, 100, 5, "b")  # demand 2 cannot fit alongside
    c = IntervalVar(0, 100, 5, "c")  # demand 1 can
    eng, _ = _setup([a, b, c], [2, 2, 1], 3)
    eng.propagate()
    assert b.est == 10
    assert c.est == 0


def test_present_task_with_no_room_fails():
    a = IntervalVar(0, 0, 10, "a")
    b = IntervalVar(0, 3, 5, "b")  # window forces overlap with a
    eng, _ = _setup([a, b], [1, 1], 1)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_optional_task_with_no_room_becomes_absent():
    a = IntervalVar(0, 0, 10, "a")
    b = IntervalVar(0, 3, 5, "b", optional=True)
    eng, _ = _setup([a, b], [1, 1], 1)
    eng.propagate()
    assert b.is_absent


def test_absent_optionals_do_not_consume_capacity():
    eng = Engine()
    a = IntervalVar(0, 0, 10, "a", optional=True)
    b = IntervalVar(0, 100, 5, "b")
    prop = CumulativePropagator([a, b], [1, 1], 1)
    eng.register(prop)
    eng.seal()
    a.set_absent(eng)
    eng.propagate()
    assert b.est == 0


def test_undecided_optional_does_not_push_others():
    # An undecided optional has no compulsory part contribution.
    a = IntervalVar(0, 0, 10, "a", optional=True)  # undecided
    b = IntervalVar(0, 100, 5, "b")
    eng, _ = _setup([a, b], [1, 1], 1)
    eng.propagate()
    assert b.est == 0


def test_gap_filling():
    a = IntervalVar(0, 0, 4, "a")  # [0, 4)
    b = IntervalVar(10, 10, 4, "b")  # [10, 14)
    c = IntervalVar(0, 100, 7, "c")  # gap [4, 10) too short for 7
    d = IntervalVar(0, 100, 6, "d")  # exactly fits the gap
    eng, _ = _setup([a, b, c, d], [1, 1, 1, 1], 1)
    eng.propagate()
    assert d.est == 4  # bounds filtering vs the *fixed* profile only
    assert c.est == 14


def test_self_notification_when_compulsory_part_appears():
    # Pushing b past a gives b a compulsory part in a tight window, which in
    # turn must push c.
    a = IntervalVar(0, 0, 10, "a")  # [0, 10)
    b = IntervalVar(0, 12, 8, "b")  # pushed to [10, 12] -> compulsory [12, 18)
    c = IntervalVar(0, 100, 4, "c")
    eng, _ = _setup([a, b, c], [1, 1, 1], 1)
    eng.propagate()
    assert b.est == 10
    assert b.has_compulsory_part
    assert c.est == 18


def test_check_assignment_helper():
    a = IntervalVar(0, 100, 10, "a")
    b = IntervalVar(0, 100, 10, "b")
    _, prop = _setup([a, b], [1, 1], 1)
    assert prop.check_assignment({a: 0, b: 10}) is None
    assert prop.check_assignment({a: 0, b: 5}) is not None


def test_capacity_zero_with_tasks_fails():
    a = IntervalVar(0, 0, 5, "a")
    eng, _ = _setup([a], [1], 0)
    with pytest.raises(Infeasible):
        eng.propagate()


def test_mismatched_demands_rejected():
    a = IntervalVar(0, 10, 5, "a")
    with pytest.raises(ValueError):
        CumulativePropagator([a], [1, 2], 1)


def test_inverted_fit_window_raises_explicit_infeasible(monkeypatch):
    """A latest fit before the earliest fit is an internal inconsistency.

    The guard must be a real raise, not an assert: under ``python -O`` an
    assert is stripped and the inverted window would reach ``set_start_max``
    and corrupt the search silently.
    """
    from repro.cp.profile import TimetableProfile

    a = IntervalVar(0, 100, 10, "a")
    eng, _ = _setup([a], [1], 1)
    monkeypatch.setattr(
        TimetableProfile, "fit_bounds", lambda self, *args: (8, 3)
    )
    with pytest.raises(Infeasible, match="inconsistency"):
        eng.propagate()


def test_infeasibility_still_raised_under_dash_O():
    """Smoke test: the failure paths survive assert-stripping (-O)."""
    import os
    import subprocess
    import sys

    script = """
from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.profile import TimetableProfile
from repro.cp.propagators.cumulative import CumulativePropagator
from repro.cp.variables import IntervalVar

assert True is False or True, "asserts must be stripped"  # noqa: PT018
if __debug__:
    raise SystemExit("expected -O mode")

# 1. A genuine wipe-out: two fixed tasks overlap on capacity 1.
a = IntervalVar(0, 0, 10, "a")
b = IntervalVar(5, 5, 10, "b")
eng = Engine()
eng.register(CumulativePropagator([a, b], [1, 1], 1))
eng.seal()
try:
    eng.propagate()
except Infeasible:
    pass
else:
    raise SystemExit("overload not detected under -O")

# 2. The defensive inverted-window guard specifically.
c = IntervalVar(0, 100, 10, "c")
eng2 = Engine()
eng2.register(CumulativePropagator([c], [1], 1))
eng2.seal()
TimetableProfile.fit_bounds = lambda self, *args: (8, 3)
try:
    eng2.propagate()
except Infeasible as exc:
    if "inconsistency" not in str(exc):
        raise SystemExit(f"wrong failure: {exc}")
else:
    raise SystemExit("inverted fit window not detected under -O")
"""
    proc = subprocess.run(
        [sys.executable, "-O", "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
