"""Large-neighbourhood search improvement."""

import time

from repro.cp import CpModel
from repro.cp.checker import check_solution
from repro.cp.heuristics import list_schedule
from repro.cp.lns import LnsParams, lns_improve
from repro.cp.solution import Solution


def _contended_model(n_jobs=4, length=5, deadline=20, capacity=1):
    """n jobs of one task each on one slot; deadline fits all but barely."""
    m = CpModel(horizon=200)
    bools = []
    for j in range(n_jobs):
        iv = m.interval_var(length=length, name=f"t{j}")
        b = m.add_deadline_indicator([iv], deadline=deadline)
        m.add_group(f"j{j}", [iv], deadline=deadline)
        bools.append(b)
    m.add_cumulative(m.intervals, capacity=capacity)
    m.minimize_sum(bools)
    m.engine()
    return m


def _bad_incumbent(m: CpModel) -> Solution:
    """A deliberately poor schedule: all tasks stacked sequentially in
    input order *backwards* (late jobs first)."""
    starts = {}
    t = 100  # start everything absurdly late
    for iv in m.intervals:
        starts[iv] = t
        t += iv.length
    sol = Solution(starts=starts)
    sol.objective = sol.evaluate_objective(m)
    return sol


def test_lns_improves_bad_incumbent():
    m = _contended_model(n_jobs=4, deadline=20)
    engine = m.engine()
    engine.reset()
    engine.propagate()
    bad = _bad_incumbent(m)
    assert bad.objective == 4
    best, stats = lns_improve(
        m,
        engine,
        bad,
        deadline=time.perf_counter() + 5.0,
        params=LnsParams(fail_limit=200, seed=1),
    )
    assert best.objective == 0  # all four fit: 4 x 5 = 20
    assert check_solution(m, best) == []
    assert stats.lns_iterations >= 1


def test_lns_noop_on_optimal_incumbent():
    m = _contended_model()
    engine = m.engine()
    engine.reset()
    engine.propagate()
    good = list_schedule(m, "edf")
    assert good.objective == 0
    best, stats = lns_improve(
        m, engine, good, deadline=time.perf_counter() + 1.0
    )
    assert best is good
    assert stats.lns_iterations == 0


def test_lns_respects_target_bound():
    # Three jobs, only two can make the deadline: target lb = 1.
    m = _contended_model(n_jobs=3, length=10, deadline=20)
    engine = m.engine()
    engine.reset()
    engine.propagate()
    bad = _bad_incumbent(m)
    best, _ = lns_improve(
        m,
        engine,
        bad,
        deadline=time.perf_counter() + 5.0,
        params=LnsParams(fail_limit=300, seed=2),
        target=1,
    )
    assert best.objective == 1
    assert check_solution(m, best) == []


def test_lns_single_group_is_noop():
    m = CpModel(horizon=50)
    iv = m.interval_var(length=5, name="t")
    b = m.add_deadline_indicator([iv], deadline=3)  # unavoidably late
    m.add_group("j", [iv], deadline=3)
    m.add_cumulative([iv], capacity=1)
    m.minimize_sum([b])
    engine = m.engine()
    engine.reset()
    engine.propagate()
    sol = list_schedule(m, "edf")
    best, stats = lns_improve(
        m, engine, sol, deadline=time.perf_counter() + 1.0
    )
    assert stats.lns_iterations == 0
    assert best.objective == 1
