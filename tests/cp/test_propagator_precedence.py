"""Barrier and pairwise precedence propagation."""

import pytest

from repro.cp.engine import Engine
from repro.cp.errors import Infeasible
from repro.cp.propagators.precedence import (
    BarrierPropagator,
    EndBeforeStartPropagator,
)
from repro.cp.variables import IntervalVar


def _setup(props):
    eng = Engine()
    for p in props:
        eng.register(p)
    eng.seal()
    eng.propagate()
    return eng


def test_barrier_forward_propagation():
    m1 = IntervalVar(0, 50, 10, "m1")
    m2 = IntervalVar(5, 50, 3, "m2")
    r1 = IntervalVar(0, 50, 4, "r1")
    _setup([BarrierPropagator([m1, m2], [r1])])
    # latest finishing map ect = max(0+10, 5+3) = 10
    assert r1.est == 10


def test_barrier_backward_propagation():
    m1 = IntervalVar(0, 50, 10, "m1")
    r1 = IntervalVar(0, 20, 4, "r1")
    _setup([BarrierPropagator([m1], [r1])])
    # r1 must start by 20 -> m1 must end by 20 -> m1.lst = 10
    assert m1.lst == 10


def test_barrier_iterates_to_fixpoint():
    eng = Engine()
    m1 = IntervalVar(0, 100, 10, "m1")
    r1 = IntervalVar(0, 100, 5, "r1")
    r2 = IntervalVar(0, 100, 5, "r2")
    eng.register(BarrierPropagator([m1], [r1]))
    eng.register(EndBeforeStartPropagator(r1, r2))
    eng.seal()
    m1.set_start_min(20, eng)
    eng.propagate()
    assert r1.est == 30
    assert r2.est == 35


def test_barrier_infeasible():
    m1 = IntervalVar(10, 10, 10, "m1")  # ends at 20
    r1 = IntervalVar(0, 15, 4, "r1")  # must start by 15 < 20
    with pytest.raises(Infeasible):
        _setup([BarrierPropagator([m1], [r1])])


def test_empty_sides_are_noops():
    m1 = IntervalVar(0, 50, 10, "m1")
    _setup([BarrierPropagator([m1], [])])
    _setup([BarrierPropagator([], [m1])])
    assert m1.est == 0 and m1.lst == 50


def test_end_before_start_with_delay():
    a = IntervalVar(0, 50, 10, "a")
    b = IntervalVar(0, 50, 5, "b")
    _setup([EndBeforeStartPropagator(a, b, delay=3)])
    assert b.est == 13
    assert a.lst == 37  # a.end <= b.lst - delay = 50 - 3 = 47 -> lst = 37
